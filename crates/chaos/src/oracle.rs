//! Invariant oracles: what must hold through and after every chaos run.
//!
//! Each oracle encodes one paper-level guarantee. Sampled oracles are
//! evaluated every scheduler chunk while the run executes; terminal
//! oracles are evaluated once the run stops. A run *passes* iff no
//! oracle records a [`Violation`].
//!
//! The per-node checks ([`check_seq_agreement`],
//! [`check_single_server`]) are pure functions over sampled state, and
//! deliberately take *node sets* rather than a primary/backup pair:
//! the same code judges the classic two-node runs and the N-backup
//! cluster campaigns. The two-node harness passes singleton sets and
//! gets byte-identical reports to the pre-cluster implementation (see
//! the regression tests below).

use netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use tcpstack::{Quad, SeqNum};

/// The invariant a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// The client's received byte stream is exactly the expected
    /// content (paper's transparency claim — no loss, no corruption,
    /// no duplication visible to the application).
    ClientIntegrity,
    /// A survivable schedule must let the workload finish within the
    /// run budget.
    Completion,
    /// After a takeover, at most one server transmits from the VIP —
    /// fencing must have silenced the old primary (§4.4).
    SingleServer,
    /// While the primary lives, the backup's shadow never runs ahead
    /// of the primary in the client's sequence space (§4.1: the backup
    /// mirrors, it does not invent).
    SeqAgreement,
    /// The primary's retention buffer occupancy never exceeds its
    /// configured capacity (§4.2: retention is bounded, backed by the
    /// backup-ack release protocol).
    RetentionBound,
    /// Takeover happens within the detection bound:
    /// `hb_interval × (missed_hb_threshold + 2) + sync_time` plus any
    /// slack the schedule itself adds to the detector channel.
    TakeoverLatency,
    /// A schedule that never incapacitates the primary and stays under
    /// the heartbeat-loss threshold must not trigger a takeover.
    FalseSuspicion,
    /// A completed closing workload must actually tear the connection
    /// down (no half-open leftovers — the crash-during-FIN corner).
    EventualClose,
}

impl OracleKind {
    /// Stable string tag (artifacts, CLI output).
    pub fn tag(self) -> &'static str {
        match self {
            OracleKind::ClientIntegrity => "client-integrity",
            OracleKind::Completion => "completion",
            OracleKind::SingleServer => "single-server",
            OracleKind::SeqAgreement => "seq-agreement",
            OracleKind::RetentionBound => "retention-bound",
            OracleKind::TakeoverLatency => "takeover-latency",
            OracleKind::FalseSuspicion => "false-suspicion",
            OracleKind::EventualClose => "eventual-close",
        }
    }

    /// Parses a [`OracleKind::tag`] string.
    pub fn from_tag(s: &str) -> Option<Self> {
        [
            OracleKind::ClientIntegrity,
            OracleKind::Completion,
            OracleKind::SingleServer,
            OracleKind::SeqAgreement,
            OracleKind::RetentionBound,
            OracleKind::TakeoverLatency,
            OracleKind::FalseSuspicion,
            OracleKind::EventualClose,
        ]
        .into_iter()
        .find(|k| k.tag() == s)
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub oracle: OracleKind,
    /// Virtual instant the violation was observed.
    pub at: SimTime,
    /// Human-readable specifics (sequence numbers, node, counts).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={} {}", self.oracle.tag(), self.at, self.detail)
    }
}

// ---------------------------------------------------------------------
// Generalized per-node checks.

/// `a ≤ b` in 32-bit TCP sequence space (wraparound-aware).
pub fn seq_le(a: SeqNum, b: SeqNum) -> bool {
    (b.0.wrapping_sub(a.0) as i32) >= 0
}

/// One sampled shadow↔authority pair for [`check_seq_agreement`]: a
/// synchronized shadow connection on some backup, matched with the
/// same quad on the node currently authoritative for the VIP.
#[derive(Debug, Clone, Copy)]
pub struct ShadowSample {
    /// The connection, as seen from the server side.
    pub quad: Quad,
    /// The shadow's `rcv_nxt` on the sampled backup.
    pub shadow_rcv_nxt: SeqNum,
    /// The authoritative server's `rcv_nxt` for the same quad.
    pub primary_rcv_nxt: SeqNum,
}

/// §4.1 sequence agreement over an arbitrary shadow set: no shadow may
/// run ahead of the authoritative server in the client's sequence
/// space. Pushes one violation per offending sample; returns whether
/// any fired (callers typically stop sampling after the first).
pub fn check_seq_agreement(
    now: SimTime,
    samples: &[ShadowSample],
    violations: &mut Vec<Violation>,
) -> bool {
    let mut any = false;
    for s in samples {
        if !seq_le(s.shadow_rcv_nxt, s.primary_rcv_nxt) {
            violations.push(Violation {
                oracle: OracleKind::SeqAgreement,
                at: now,
                detail: format!(
                    "backup shadow rcv_nxt {} ahead of primary {} on {:?}",
                    s.shadow_rcv_nxt, s.primary_rcv_nxt, s.quad
                ),
            });
            any = true;
        }
    }
    any
}

/// §4.4 single-server property over an arbitrary node set: after
/// `takeover_at` plus an in-flight `grace`, only nodes in `allowed`
/// (simulator node indices — the current server and any node yet to be
/// excluded) may source VIP traffic. `vip_last_sent` maps node index →
/// latest VIP-sourced departure, as collected by the run's frame probe.
pub fn check_single_server(
    takeover_at: SimTime,
    grace: SimDuration,
    allowed: &[usize],
    vip_last_sent: &BTreeMap<usize, SimTime>,
    violations: &mut Vec<Violation>,
) {
    for (&node, &last) in vip_last_sent {
        if !allowed.contains(&node) && last > takeover_at + grace {
            violations.push(Violation {
                oracle: OracleKind::SingleServer,
                at: last,
                detail: format!(
                    "node {node} still sourcing VIP traffic at {last}, {} after takeover",
                    last.duration_since(takeover_at)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn tags_roundtrip() {
        for k in [
            OracleKind::ClientIntegrity,
            OracleKind::Completion,
            OracleKind::SingleServer,
            OracleKind::SeqAgreement,
            OracleKind::RetentionBound,
            OracleKind::TakeoverLatency,
            OracleKind::FalseSuspicion,
            OracleKind::EventualClose,
        ] {
            assert_eq!(OracleKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(OracleKind::from_tag("nope"), None);
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn seq_le_handles_wraparound() {
        assert!(seq_le(SeqNum(5), SeqNum(5)));
        assert!(seq_le(SeqNum(5), SeqNum(6)));
        assert!(!seq_le(SeqNum(6), SeqNum(5)));
        assert!(seq_le(SeqNum(u32::MAX), SeqNum(3)), "wrap: MAX < 3");
        assert!(!seq_le(SeqNum(3), SeqNum(u32::MAX)));
    }

    /// The generalized check must reproduce the pre-cluster two-node
    /// implementation byte for byte, so existing artifacts, shrink
    /// fingerprints, and report goldens stay comparable.
    #[test]
    fn two_node_seq_agreement_detail_is_byte_identical() {
        let quad = Quad::new(Ipv4Addr::new(10, 0, 0, 100), 80, Ipv4Addr::new(10, 1, 0, 1), 40000);
        let sample =
            ShadowSample { quad, shadow_rcv_nxt: SeqNum(900), primary_rcv_nxt: SeqNum(500) };
        let mut got = Vec::new();
        assert!(check_seq_agreement(t(250), &[sample], &mut got));
        // The legacy string, formatted exactly as crates/chaos/src/run.rs
        // did before the oracle was generalized.
        let legacy = format!(
            "backup shadow rcv_nxt {} ahead of primary {} on {:?}",
            SeqNum(900),
            SeqNum(500),
            quad
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].oracle, OracleKind::SeqAgreement);
        assert_eq!(got[0].at, t(250));
        assert_eq!(got[0].detail, legacy);

        // An agreeing (or equal) shadow stays silent.
        let ok = ShadowSample { quad, shadow_rcv_nxt: SeqNum(500), primary_rcv_nxt: SeqNum(500) };
        let mut none = Vec::new();
        assert!(!check_seq_agreement(t(251), &[ok], &mut none));
        assert!(none.is_empty());
    }

    #[test]
    fn two_node_single_server_detail_is_byte_identical() {
        let takeover = t(300);
        let grace = SimDuration::from_millis(5);
        let mut last_sent = BTreeMap::new();
        last_sent.insert(1usize, t(200)); // old primary, before takeover: fine
        last_sent.insert(2usize, t(400)); // the promoted backup: allowed
        let mut got = Vec::new();
        check_single_server(takeover, grace, &[2], &last_sent, &mut got);
        assert!(got.is_empty(), "quiet old primary and busy successor are both legal");

        last_sent.insert(1usize, t(400)); // old primary still talking
        check_single_server(takeover, grace, &[2], &last_sent, &mut got);
        let legacy = format!(
            "node {} still sourcing VIP traffic at {}, {} after takeover",
            1,
            t(400),
            t(400).duration_since(takeover)
        );
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].oracle, OracleKind::SingleServer);
        assert_eq!(got[0].at, t(400));
        assert_eq!(got[0].detail, legacy);
    }

    #[test]
    fn single_server_accepts_multiple_allowed_nodes() {
        // Cluster flavour: after a cascade, the retired-but-draining
        // member and the current primary may both appear in `allowed`.
        let mut last_sent = BTreeMap::new();
        last_sent.insert(3usize, t(500));
        last_sent.insert(4usize, t(500));
        last_sent.insert(5usize, t(500));
        let mut got = Vec::new();
        check_single_server(t(100), SimDuration::from_millis(5), &[3, 4], &last_sent, &mut got);
        assert_eq!(got.len(), 1, "only the node outside the allowed set fires");
        assert!(got[0].detail.starts_with("node 5 "));
    }
}
