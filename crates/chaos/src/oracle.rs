//! Invariant oracles: what must hold through and after every chaos run.
//!
//! Each oracle encodes one paper-level guarantee. Sampled oracles are
//! evaluated every scheduler chunk while the run executes; terminal
//! oracles are evaluated once the run stops. A run *passes* iff no
//! oracle records a [`Violation`].

use netsim::SimTime;

/// The invariant a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// The client's received byte stream is exactly the expected
    /// content (paper's transparency claim — no loss, no corruption,
    /// no duplication visible to the application).
    ClientIntegrity,
    /// A survivable schedule must let the workload finish within the
    /// run budget.
    Completion,
    /// After a takeover, at most one server transmits from the VIP —
    /// fencing must have silenced the old primary (§4.4).
    SingleServer,
    /// While the primary lives, the backup's shadow never runs ahead
    /// of the primary in the client's sequence space (§4.1: the backup
    /// mirrors, it does not invent).
    SeqAgreement,
    /// The primary's retention buffer occupancy never exceeds its
    /// configured capacity (§4.2: retention is bounded, backed by the
    /// backup-ack release protocol).
    RetentionBound,
    /// Takeover happens within the detection bound:
    /// `hb_interval × (missed_hb_threshold + 2) + sync_time` plus any
    /// slack the schedule itself adds to the detector channel.
    TakeoverLatency,
    /// A schedule that never incapacitates the primary and stays under
    /// the heartbeat-loss threshold must not trigger a takeover.
    FalseSuspicion,
    /// A completed closing workload must actually tear the connection
    /// down (no half-open leftovers — the crash-during-FIN corner).
    EventualClose,
}

impl OracleKind {
    /// Stable string tag (artifacts, CLI output).
    pub fn tag(self) -> &'static str {
        match self {
            OracleKind::ClientIntegrity => "client-integrity",
            OracleKind::Completion => "completion",
            OracleKind::SingleServer => "single-server",
            OracleKind::SeqAgreement => "seq-agreement",
            OracleKind::RetentionBound => "retention-bound",
            OracleKind::TakeoverLatency => "takeover-latency",
            OracleKind::FalseSuspicion => "false-suspicion",
            OracleKind::EventualClose => "eventual-close",
        }
    }

    /// Parses a [`OracleKind::tag`] string.
    pub fn from_tag(s: &str) -> Option<Self> {
        [
            OracleKind::ClientIntegrity,
            OracleKind::Completion,
            OracleKind::SingleServer,
            OracleKind::SeqAgreement,
            OracleKind::RetentionBound,
            OracleKind::TakeoverLatency,
            OracleKind::FalseSuspicion,
            OracleKind::EventualClose,
        ]
        .into_iter()
        .find(|k| k.tag() == s)
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub oracle: OracleKind,
    /// Virtual instant the violation was observed.
    pub at: SimTime,
    /// Human-readable specifics (sequence numbers, node, counts).
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={} {}", self.oracle.tag(), self.at, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for k in [
            OracleKind::ClientIntegrity,
            OracleKind::Completion,
            OracleKind::SingleServer,
            OracleKind::SeqAgreement,
            OracleKind::RetentionBound,
            OracleKind::TakeoverLatency,
            OracleKind::FalseSuspicion,
            OracleKind::EventualClose,
        ] {
            assert_eq!(OracleKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(OracleKind::from_tag("nope"), None);
    }
}
