//! Campaign enumeration and parallel execution.
//!
//! A campaign crosses fault schedules with workloads and seeds into a
//! run matrix, executes every run on a thread pool (each run owns an
//! independent deterministic [`netsim::Simulator`]), and aggregates the
//! verdicts. Probe passes are shared: every run with the same
//! (workload, seed, fencing) reuses one measured [`Profile`].

use crate::plan::{FaultOp, FaultPlan, SideTarget};
use crate::run::{execute_with_profile, measure_profile, Profile, RunReport, RunSpec};
use apps::Workload;
use netsim::LinkProfile;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tcpstack::CongestionAlgo;

/// A named run matrix.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (reports, CI logs).
    pub name: String,
    /// Every run to execute.
    pub runs: Vec<RunSpec>,
}

/// Aggregated campaign outcome.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-run reports, in run order.
    pub reports: Vec<RunReport>,
}

impl CampaignResult {
    /// Indices of runs with at least one violation.
    pub fn failed_runs(&self) -> Vec<usize> {
        self.reports.iter().enumerate().filter(|(_, r)| !r.passed()).map(|(i, _)| i).collect()
    }

    /// True when every oracle stayed green across every run.
    pub fn all_green(&self) -> bool {
        self.reports.iter().all(RunReport::passed)
    }
}

fn profile_key(spec: &RunSpec) -> String {
    // Everything that changes fault-free timing must key the profile:
    // the same workload and seed complete at very different instants on
    // a lossy WAN than on the paper's LAN.
    format!(
        "{:?}|{}|{}|{}|{}|{}",
        spec.workload,
        spec.seed,
        spec.fencing,
        spec.link.name(),
        spec.congestion.name(),
        spec.sack
    )
}

/// Executes every run of `campaign` across `threads` worker threads and
/// returns the reports in run order. Fully deterministic per run: the
/// thread schedule only affects wall-clock time, never a verdict.
pub fn run_campaign(campaign: &Campaign, threads: usize) -> CampaignResult {
    let threads = threads.max(1);
    let runs = &campaign.runs;

    // Phase 1: measure one profile per (workload, seed, fencing) that
    // any probe-needing plan references.
    let mut probe_specs: Vec<RunSpec> = Vec::new();
    let mut seen = BTreeSet::new();
    for spec in runs {
        if spec.plan.needs_probe() && seen.insert(profile_key(spec)) {
            probe_specs.push(RunSpec { plan: FaultPlan::none(), ..spec.clone() });
        }
    }
    let profiles: BTreeMap<String, Result<Profile, Box<RunReport>>> = {
        let slots: Mutex<BTreeMap<String, Result<Profile, Box<RunReport>>>> =
            Mutex::new(BTreeMap::new());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(probe_specs.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = probe_specs.get(i) else { break };
                    let profile = measure_profile(spec);
                    slots.lock().expect("probe lock").insert(profile_key(spec), profile);
                });
            }
        });
        slots.into_inner().expect("probe lock")
    };

    // Phase 2: execute the matrix.
    let slots: Vec<Mutex<Option<RunReport>>> = runs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(runs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = runs.get(i) else { break };
                let report = if spec.plan.needs_probe() {
                    match profiles.get(&profile_key(spec)).expect("profile measured") {
                        Ok(profile) => execute_with_profile(spec, profile),
                        Err(failed_probe) => (**failed_probe).clone(),
                    }
                } else {
                    execute_with_profile(spec, &Profile::default())
                };
                *slots[i].lock().expect("slot lock") = Some(report);
            });
        }
    });
    CampaignResult {
        reports: slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot lock").expect("run executed"))
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Stock campaigns.

fn crash_matrix_plans(quantiles: &[u8]) -> Vec<FaultPlan> {
    let tap_variants: [Option<FaultOp>; 3] = [
        None,
        Some(FaultOp::TapDrop { skip: 0, count: 1 }),
        Some(FaultOp::TapDrop { skip: 5, count: 3 }),
    ];
    let side_variants: [Option<FaultOp>; 4] = [
        None,
        Some(FaultOp::SideDrop { target: SideTarget::Backup, skip: 0, count: 2 }),
        Some(FaultOp::SideDelay { target: SideTarget::Backup, delay_ms: 60 }),
        Some(FaultOp::SideDuplicate { target: SideTarget::Backup, offset_ms: 5 }),
    ];
    let mut plans = Vec::new();
    for &q in quantiles {
        for tap in tap_variants.iter() {
            for side in side_variants.iter() {
                let mut ops = vec![FaultOp::CrashPrimary { quantile_pct: q }];
                ops.extend(*tap);
                ops.extend(*side);
                plans.push(FaultPlan::new(ops));
            }
        }
    }
    plans
}

/// Fault schedules that never kill the primary — the oracles assert the
/// workload completes with *no* takeover (detection must tolerate them).
fn innocent_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::new([FaultOp::TapDrop { skip: 0, count: 1 }]),
        FaultPlan::new([FaultOp::TapDrop { skip: 3, count: 4 }]),
        FaultPlan::new([FaultOp::SideDrop { target: SideTarget::Backup, skip: 0, count: 2 }]),
        FaultPlan::new([FaultOp::SideDrop { target: SideTarget::Primary, skip: 0, count: 3 }]),
        FaultPlan::new([FaultOp::SideDelay { target: SideTarget::Backup, delay_ms: 60 }]),
        FaultPlan::new([FaultOp::SideDelay { target: SideTarget::Primary, delay_ms: 40 }]),
        FaultPlan::new([FaultOp::SideDuplicate { target: SideTarget::Backup, offset_ms: 5 }]),
        FaultPlan::new([FaultOp::SideDuplicate { target: SideTarget::Primary, offset_ms: 7 }]),
    ]
}

/// Teardown and partition corners added on top of the crash matrix.
fn corner_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::new([FaultOp::CrashPrimaryNearFin]),
        FaultPlan::new([FaultOp::CrashPrimaryNearFin, FaultOp::TapDrop { skip: 0, count: 1 }]),
        FaultPlan::new([FaultOp::TapPartition { from_pct: 30, dur_ms: 200 }]),
        FaultPlan::new([
            FaultOp::CrashPrimary { quantile_pct: 60 },
            FaultOp::TapPartition { from_pct: 20, dur_ms: 150 },
        ]),
        FaultPlan::new([FaultOp::PausePrimary { at_pct: 30, dur_ms: 500 }]),
    ]
}

fn cross(name: &str, workloads: &[Workload], seeds: &[u64], plans: &[FaultPlan]) -> Campaign {
    let mut runs = Vec::new();
    for &workload in workloads {
        for &seed in seeds {
            for plan in plans {
                runs.push(RunSpec::new(workload, seed, plan.clone()));
            }
        }
    }
    Campaign { name: name.to_string(), runs }
}

/// The full demo campaign: ≥200 runs crossing crash quantiles ×
/// tap omissions × side-channel faults × workloads × seeds, plus the
/// teardown/partition corners and the innocent (no-takeover) set.
pub fn demo_campaign() -> Campaign {
    let workloads = [Workload::Echo { requests: 60 }, Workload::Bulk { file_size: 256 * 1024 }];
    let seeds = [1, 2];
    let mut plans = crash_matrix_plans(&[10, 30, 50, 70, 85]);
    plans.extend(corner_plans());
    plans.extend(innocent_plans());
    cross("demo", &workloads, &seeds, &plans)
}

/// A bounded smoke campaign for CI: one workload, one seed, a reduced
/// matrix — finishes in well under a minute in release builds.
pub fn smoke_campaign() -> Campaign {
    let workloads = [Workload::Echo { requests: 40 }];
    let seeds = [1];
    let mut plans = crash_matrix_plans(&[30, 70]);
    plans.push(FaultPlan::new([FaultOp::CrashPrimaryNearFin]));
    plans.push(FaultPlan::new([FaultOp::TapPartition { from_pct: 30, dur_ms: 200 }]));
    plans.push(FaultPlan::new([FaultOp::PausePrimary { at_pct: 30, dur_ms: 500 }]));
    plans.extend(innocent_plans().into_iter().take(4));
    let mut campaign = cross("smoke", &workloads, &seeds, &plans);
    // One burst-loss WAN failover per controller: the cheap canary for
    // the full [`wan_burst_loss_campaign`] matrix.
    for algo in CongestionAlgo::ALL {
        campaign.runs.push(
            RunSpec::new(
                Workload::Echo { requests: 40 },
                1,
                FaultPlan::new([FaultOp::CrashPrimary { quantile_pct: 50 }]),
            )
            .on_link(LinkProfile::WanBurstLoss)
            .with_congestion(algo)
            .with_sack(),
        );
    }
    campaign
}

/// Failover far from the paper's clean LAN: crash the primary
/// mid-workload on the Gilbert–Elliott burst-loss WAN profile, crossing
/// seeds × congestion controllers with SACK negotiated. Every oracle
/// must hold while recovery itself is fighting bursty loss.
pub fn wan_burst_loss_campaign() -> Campaign {
    let mut runs = Vec::new();
    for seed in [1, 2, 3] {
        for algo in CongestionAlgo::ALL {
            for q in [30, 70] {
                runs.push(
                    RunSpec::new(
                        Workload::Echo { requests: 40 },
                        seed,
                        FaultPlan::new([FaultOp::CrashPrimary { quantile_pct: q }]),
                    )
                    .on_link(LinkProfile::WanBurstLoss)
                    .with_congestion(algo)
                    .with_sack(),
                );
            }
        }
    }
    Campaign { name: "wan_burst_loss".to_string(), runs }
}

/// The intentionally-broken configuration: fencing disabled, primary
/// paused past the detection threshold. The resumed primary speaks for
/// the VIP alongside the backup — the [`crate::oracle::OracleKind::SingleServer`]
/// oracle must catch it.
pub fn broken_config_canary() -> RunSpec {
    RunSpec::new(
        Workload::Echo { requests: 100 },
        7,
        FaultPlan::new([FaultOp::PausePrimary { at_pct: 30, dur_ms: 500 }]),
    )
    .without_fencing()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_campaign_is_big_enough() {
        let c = demo_campaign();
        assert!(c.runs.len() >= 200, "demo campaign has only {} runs", c.runs.len());
        // The matrix really crosses the axes: crash × tap × side.
        let with_crash_tap_side = c
            .runs
            .iter()
            .filter(|r| {
                let ops = &r.plan.ops;
                ops.iter().any(|o| matches!(o, FaultOp::CrashPrimary { .. }))
                    && ops.iter().any(|o| matches!(o, FaultOp::TapDrop { .. }))
                    && ops.iter().any(|o| {
                        matches!(
                            o,
                            FaultOp::SideDrop { .. }
                                | FaultOp::SideDelay { .. }
                                | FaultOp::SideDuplicate { .. }
                        )
                    })
            })
            .count();
        assert!(with_crash_tap_side >= 50, "only {with_crash_tap_side} fully-crossed runs");
    }

    #[test]
    fn smoke_campaign_is_bounded() {
        let c = smoke_campaign();
        assert!(!c.runs.is_empty());
        assert!(c.runs.len() <= 40, "smoke campaign too large: {}", c.runs.len());
    }

    #[test]
    fn smoke_campaign_covers_burst_loss_wan() {
        let c = smoke_campaign();
        let wan: Vec<_> = c.runs.iter().filter(|r| r.link == LinkProfile::WanBurstLoss).collect();
        assert_eq!(wan.len(), CongestionAlgo::ALL.len());
        assert!(wan.iter().all(|r| r.sack && r.plan.incapacitates_primary()));
    }

    #[test]
    fn wan_burst_loss_campaign_crosses_seeds_and_controllers() {
        let c = wan_burst_loss_campaign();
        assert_eq!(c.runs.len(), 3 * CongestionAlgo::ALL.len() * 2);
        assert!(c.runs.iter().all(|r| r.link == LinkProfile::WanBurstLoss && r.sack));
        for algo in CongestionAlgo::ALL {
            let seeds: std::collections::BTreeSet<u64> =
                c.runs.iter().filter(|r| r.congestion == algo).map(|r| r.seed).collect();
            assert_eq!(seeds.len(), 3, "{algo:?} must run on three seeds");
        }
    }

    #[test]
    fn canary_disables_fencing() {
        let c = broken_config_canary();
        assert!(!c.fencing);
        assert!(c.plan.incapacitates_primary());
    }
}
