//! Chaos runs over the N-backup replication chain.
//!
//! The classic [`crate::run`] pipeline drives the paper's one-primary /
//! one-backup scenario. This module drives the
//! [`sttcp::cluster`] fleet instead — a primary plus N chained
//! backups behind a mirroring switch — through *cascading* failure
//! schedules (crash the primary, then crash its successor mid-takeover)
//! and judges the same eight invariants. Node-specific checks reuse the
//! generalized node-set oracles in [`crate::oracle`]; fleet-level ones
//! (integrity, completion, eventual close) aggregate over every client.
//!
//! Runs are deterministic: the same [`ClusterRunSpec`] produces the
//! same frame digest, so a failing spec embedded in an artifact is a
//! bit-exact reproducer.

use crate::json::Value;
use crate::oracle::{
    check_seq_agreement, check_single_server, OracleKind, ShadowSample, Violation,
};
use crate::run::{fnv1a, FNV_OFFSET};
use netsim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use sttcp::cluster::promotion::detection_deadline;
use sttcp::cluster::{build_cluster, ClusterFleet, ClusterFleetSpec, ClusterRole};
use sttcp::node::{ClientNode, ServerNode};
use sttcp::scenario::StopReason;
use tcpstack::TcpState;
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};

/// One cluster chaos run: fleet shape plus a cascading crash schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterRunSpec {
    /// Workload clients in the fleet.
    pub clients: usize,
    /// Chain length N (backups behind the primary).
    pub backups: usize,
    /// Master seed (workload mix, stagger, ISNs).
    pub seed: u64,
    /// Crash schedule in milliseconds: `(rank, at_ms)`. A cascade
    /// crashes rank 0 first, then rank 1 mid-takeover, and so on.
    pub crashes_ms: Vec<(usize, u64)>,
    /// Virtual-time budget.
    pub limit: SimDuration,
}

impl ClusterRunSpec {
    /// A spec with the default 120-second budget.
    pub fn new(clients: usize, backups: usize, seed: u64) -> Self {
        ClusterRunSpec {
            clients,
            backups,
            seed,
            crashes_ms: Vec::new(),
            limit: SimDuration::from_secs(120),
        }
    }

    /// Appends a crash (builder style).
    #[must_use]
    pub fn crash(mut self, rank: usize, at_ms: u64) -> Self {
        self.crashes_ms.push((rank, at_ms));
        self
    }

    /// The rank expected to serve once the schedule has run: the lowest
    /// rank the schedule never crashes.
    pub fn expected_primary(&self) -> usize {
        (0..=self.backups)
            .find(|r| !self.crashes_ms.iter().any(|&(cr, _)| cr == *r))
            .expect("a schedule must leave one survivor")
    }

    /// This spec as a JSON value (artifact embedding).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("clients".into(), Value::Num(self.clients as f64)),
            ("backups".into(), Value::Num(self.backups as f64)),
            ("seed".into(), Value::Num(self.seed as f64)),
            (
                "crashes_ms".into(),
                Value::Arr(
                    self.crashes_ms
                        .iter()
                        .map(|&(r, ms)| {
                            Value::Arr(vec![Value::Num(r as f64), Value::Num(ms as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The judged result of one cluster chaos run.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Invariant violations, in observation order. Empty ⇒ pass.
    pub violations: Vec<Violation>,
    /// FNV-1a digest over every frame transmission — the replay
    /// fingerprint.
    pub digest: u64,
    /// Final takeover instant (the surviving rank's promotion), if any.
    pub final_takeover_at: Option<SimTime>,
    /// Epoch the surviving rank serves under at the end.
    pub final_epoch: u32,
    /// Aggregate client progress `(received, expected)`.
    pub progress: (u64, u64),
}

impl ClusterRunReport {
    /// True when every oracle stayed green.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A replayable JSON artifact: spec + digest + violations.
    pub fn artifact(&self, spec: &ClusterRunSpec) -> String {
        Value::Obj(vec![
            ("format".into(), Value::Str("sttcp-cluster-chaos-v1".into())),
            ("spec".into(), spec.to_value()),
            ("digest".into(), Value::Str(format!("{:016x}", self.digest))),
            ("reason".into(), Value::Str(format!("{:?}", self.reason))),
            ("final_epoch".into(), Value::Num(f64::from(self.final_epoch))),
            (
                "violations".into(),
                Value::Arr(self.violations.iter().map(|v| Value::Str(v.to_string())).collect()),
            ),
        ])
        .to_json()
    }
}

struct ClusterProbe {
    digest: u64,
    /// node index → latest VIP-sourced departure (origin sends only).
    vip_last_sent: std::collections::BTreeMap<usize, SimTime>,
}

fn vip_sourced(frame: &bytes::Bytes, vip: std::net::Ipv4Addr) -> bool {
    let Ok(eth) = EthernetFrame::parse(frame.clone()) else {
        return false;
    };
    if eth.ethertype != EtherType::Ipv4 {
        return false;
    }
    let Ok(ip) = Ipv4Packet::parse(eth.payload) else {
        return false;
    };
    ip.protocol == IpProtocol::Tcp && ip.src == vip
}

/// Executes one cluster chaos run and judges it against every oracle.
pub fn execute_cluster(spec: &ClusterRunSpec) -> ClusterRunReport {
    let mut fspec = ClusterFleetSpec::new(spec.clients, spec.backups).seed(spec.seed);
    fspec = fspec.recording();
    for &(rank, ms) in &spec.crashes_ms {
        fspec = fspec.crash(rank, SimTime::ZERO + SimDuration::from_millis(ms));
    }
    let cfg = fspec.st_tcp.clone();
    let mut fleet = build_cluster(&fspec);
    let server_ids: Vec<usize> = fleet.servers.iter().map(|n| n.0).collect();
    let vip = cfg.vip;

    let probe = Rc::new(RefCell::new(ClusterProbe {
        digest: FNV_OFFSET,
        vip_last_sent: std::collections::BTreeMap::new(),
    }));
    let handle = Rc::clone(&probe);
    fleet.sim.set_probe(move |ev| {
        let mut st = handle.borrow_mut();
        let mut h = st.digest;
        h = fnv1a(h, &ev.time.as_nanos().to_le_bytes());
        h = fnv1a(h, &(ev.from.0 as u64).to_le_bytes());
        h = fnv1a(h, &(ev.to.0 as u64).to_le_bytes());
        h = fnv1a(h, ev.frame);
        st.digest = h;
        if server_ids.contains(&ev.from.0) && vip_sourced(ev.frame, vip) {
            st.vip_last_sent.insert(ev.from.0, ev.time);
        }
    });

    let first_crash =
        spec.crashes_ms.iter().map(|&(_, ms)| SimTime::ZERO + SimDuration::from_millis(ms)).min();
    let mut violations = Vec::new();
    let mut seq_tripped = false;
    let deadline = SimTime::ZERO + spec.limit;
    let chunk = SimDuration::from_millis(50);
    let reason = loop {
        if fleet.all_done() {
            break StopReason::Completed;
        }
        if fleet.sim.now() >= deadline {
            break StopReason::TimeLimit;
        }
        if fleet.sim.pending_events() == 0 {
            break StopReason::WedgedClient;
        }
        fleet.sim.run_for(chunk);
        sample_cluster_seq_agreement(&fleet, first_crash, &mut violations, &mut seq_tripped);
    };
    let stopped_at = fleet.sim.now();

    // ---- terminal oracles -------------------------------------------

    // Client integrity + completion, aggregated over the fleet.
    let progress = fleet.progress();
    for i in 0..spec.clients {
        let m = &fleet.client_app(i).metrics;
        if m.content_errors > 0 {
            violations.push(Violation {
                oracle: OracleKind::ClientIntegrity,
                at: stopped_at,
                detail: format!(
                    "client {i}: {} content errors, first at byte offset {:?}",
                    m.content_errors, m.first_error_pos
                ),
            });
        }
    }
    if reason != StopReason::Completed {
        violations.push(Violation {
            oracle: OracleKind::Completion,
            at: stopped_at,
            detail: format!("run stopped: {:?} after {}/{} bytes", reason, progress.0, progress.1),
        });
    }

    // Retention bound (§4.2): every chain member retains within its own
    // structural cap; the shared gauge records the global peak.
    let snap = fleet.obs.as_ref().expect("cluster chaos runs record obs").snapshot();
    let tcp = &fleet.sim.node_ref::<ServerNode>(fleet.servers[0]).stack().config().tcp;
    let bound = (tcp.retention_buf + tcp.recv_buf) as u64;
    let high_water = snap.get("retention_high_water");
    if high_water > bound {
        violations.push(Violation {
            oracle: OracleKind::RetentionBound,
            at: stopped_at,
            detail: format!("retained {high_water} bytes > §4.2 bound {bound}"),
        });
    }

    // Promotion bookkeeping for the remaining node-set oracles.
    let survivor = spec.expected_primary();
    let final_takeover_at = if survivor == 0 { None } else { fleet.engine(survivor).takeover_at() };
    let final_epoch = fleet.engine(survivor).topology().epoch();
    let last_crash =
        spec.crashes_ms.iter().map(|&(_, ms)| SimTime::ZERO + SimDuration::from_millis(ms)).max();

    // Takeover latency: the survivor must promote within its staggered
    // detection bound of the crash that handed it the chain. A crash
    // landing after the workload drained needs no takeover.
    if let Some(crash_at) = last_crash {
        match final_takeover_at {
            Some(tk) => {
                let bound = detection_deadline(&cfg, survivor as u8)
                    + cfg.effective_sync_time()
                    + SimDuration::from_millis(100);
                match tk.checked_duration_since(crash_at) {
                    Some(latency) if latency > bound => violations.push(Violation {
                        oracle: OracleKind::TakeoverLatency,
                        at: tk,
                        detail: format!(
                            "rank {survivor} takeover {latency} after the final crash \
                             exceeds bound {bound}"
                        ),
                    }),
                    _ => {}
                }
            }
            None => {
                if reason != StopReason::Completed && crash_at < stopped_at {
                    violations.push(Violation {
                        oracle: OracleKind::TakeoverLatency,
                        at: stopped_at,
                        detail: format!(
                            "primary chain crashed through rank {}, rank {survivor} never \
                             took over",
                            survivor.saturating_sub(1)
                        ),
                    });
                }
            }
        }
    }

    // False suspicion: ranks deeper than the survivor must still be
    // backups, and a fault-free schedule must promote nobody.
    for rank in 0..=spec.backups {
        let e = fleet.engine(rank);
        let crashed = spec.crashes_ms.iter().any(|&(r, _)| r == rank);
        if !crashed && rank > survivor && e.has_taken_over() {
            violations.push(Violation {
                oracle: OracleKind::FalseSuspicion,
                at: e.takeover_at().unwrap_or(stopped_at),
                detail: format!(
                    "rank {rank} took over though rank {survivor} survived the schedule"
                ),
            });
        }
        if spec.crashes_ms.is_empty() && e.role() != ClusterRole::Backup && rank > 0 {
            violations.push(Violation {
                oracle: OracleKind::FalseSuspicion,
                at: stopped_at,
                detail: format!("rank {rank} left the backup role in a fault-free run"),
            });
        }
    }

    // Single server: after the final takeover, only the survivor may
    // source VIP traffic (crashed members fell silent at their crash
    // instants, which precede it).
    if let Some(tk) = final_takeover_at {
        let allowed = [fleet.servers[survivor].0];
        let st = probe.borrow();
        check_single_server(
            tk,
            SimDuration::from_millis(5),
            &allowed,
            &st.vip_last_sent,
            &mut violations,
        );
    }

    // Eventual close: a completed closing workload must fully tear down
    // on every client.
    if reason == StopReason::Completed {
        fleet.sim.run_for(SimDuration::from_secs(3));
        for (i, &id) in fleet.clients.iter().enumerate() {
            let client = fleet.sim.node_ref::<ClientNode>(id);
            let state = client.sock().and_then(|s| client.stack().state(s));
            let closed = matches!(state, None | Some(TcpState::Closed) | Some(TcpState::TimeWait));
            if !closed {
                violations.push(Violation {
                    oracle: OracleKind::EventualClose,
                    at: fleet.sim.now(),
                    detail: format!("client {i} connection stuck in {state:?} after completion"),
                });
            }
        }
    }

    let digest = probe.borrow().digest;
    ClusterRunReport { reason, violations, digest, final_takeover_at, final_epoch, progress }
}

fn sample_cluster_seq_agreement(
    fleet: &ClusterFleet,
    first_crash: Option<SimTime>,
    violations: &mut Vec<Violation>,
    tripped: &mut bool,
) {
    let now = fleet.sim.now();
    // Valid only while rank 0 is alive and authoritative: after a crash
    // the shadows legitimately overtake the dead primary's last state.
    if *tripped || first_crash.is_some_and(|t| now >= t) {
        return;
    }
    let primary = fleet.sim.node_ref::<ServerNode>(fleet.servers[0]);
    let mut samples = Vec::new();
    for &id in &fleet.servers[1..] {
        let backup = fleet.sim.node_ref::<ServerNode>(id);
        let engine = backup.cluster_engine().expect("cluster fleet servers run the engine");
        if engine.role() != ClusterRole::Backup {
            continue;
        }
        for sock in backup.stack().socks() {
            let Some(btcb) = backup.stack().tcb(sock) else { continue };
            if !btcb.state().is_synchronized() {
                continue;
            }
            let Some(psock) = primary.stack().sock_by_quad(btcb.quad()) else { continue };
            let Some(ptcb) = primary.stack().tcb(psock) else { continue };
            if !ptcb.state().is_synchronized() {
                continue;
            }
            samples.push(ShadowSample {
                quad: btcb.quad(),
                shadow_rcv_nxt: btcb.rcv_nxt(),
                primary_rcv_nxt: ptcb.rcv_nxt(),
            });
        }
    }
    if check_seq_agreement(now, &samples, violations) {
        *tripped = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_primary_is_the_lowest_uncrashed_rank() {
        let spec = ClusterRunSpec::new(4, 3, 1).crash(0, 100).crash(1, 260);
        assert_eq!(spec.expected_primary(), 2);
        assert_eq!(ClusterRunSpec::new(4, 3, 1).expected_primary(), 0);
    }

    #[test]
    fn artifact_embeds_spec_and_digest() {
        let spec = ClusterRunSpec::new(2, 2, 42).crash(0, 100);
        let report = ClusterRunReport {
            reason: StopReason::Completed,
            violations: Vec::new(),
            digest: 0xABCD,
            final_takeover_at: None,
            final_epoch: 1,
            progress: (10, 10),
        };
        let json = report.artifact(&spec);
        assert!(json.contains("sttcp-cluster-chaos-v1"));
        assert!(json.contains("000000000000abcd"));
        assert!(json.contains("\"seed\":42"));
    }

    #[test]
    fn small_cascade_is_green_and_deterministic() {
        let spec = ClusterRunSpec::new(6, 2, 0xCA5CADE).crash(0, 120).crash(1, 300);
        let a = execute_cluster(&spec);
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.final_epoch, 2, "rank 2 serves under epoch 2 after the cascade");
        let b = execute_cluster(&spec);
        assert_eq!(a.digest, b.digest, "same spec ⇒ same frame digest");
    }
}
