//! Replayable failure artifacts.
//!
//! When a campaign run violates an oracle, the engine emits a JSON
//! artifact carrying everything needed to reproduce the failure
//! byte-for-byte: the seed, the (possibly shrunk) fault schedule, the
//! run knobs, and the frame-trace digest the replay must match.

use crate::json::{self, Value};
use crate::oracle::OracleKind;
use crate::plan::{workload_from_value, workload_to_value, FaultPlan};
use crate::run::{execute, RunReport, RunSpec};
use netsim::{LinkProfile, SimDuration};
use tcpstack::CongestionAlgo;

/// A self-contained failure reproducer.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureArtifact {
    /// The run to replay.
    pub spec: RunSpec,
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Human-readable violation details at capture time.
    pub details: Vec<String>,
    /// The frame-trace digest a faithful replay must reproduce.
    pub digest: u64,
    /// Observability counter snapshot of the failing run, when the run
    /// recorded one (absent in artifacts from older engines).
    pub obs: Option<Value>,
    /// Flight-recorder trace tail (`sttcp-trace-v1`) of the failing
    /// run, when the run traced one (absent in artifacts from older
    /// engines).
    pub trace: Option<Value>,
}

impl FailureArtifact {
    /// Captures an artifact from a failing run.
    pub fn capture(spec: &RunSpec, report: &RunReport, oracle: OracleKind) -> Self {
        FailureArtifact {
            spec: spec.clone(),
            oracle,
            details: report
                .violations
                .iter()
                .filter(|v| v.oracle == oracle)
                .map(|v| v.to_string())
                .collect(),
            digest: report.digest,
            obs: report.obs.clone(),
            trace: report.trace.clone(),
        }
    }

    /// Serializes to JSON text.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("format", Value::Str("sttcp-chaos-artifact-v1".into())),
            ("workload", workload_to_value(self.spec.workload)),
            ("seed", json::hex(self.spec.seed)),
            ("fencing", Value::Bool(self.spec.fencing)),
            ("limit_ms", json::num(self.spec.limit.as_millis())),
            ("max_events", json::num(self.spec.max_events)),
            ("link", Value::Str(self.spec.link.name().into())),
            ("congestion", Value::Str(self.spec.congestion.name().into())),
            ("sack", Value::Bool(self.spec.sack)),
            ("plan", self.spec.plan.to_value()),
            ("oracle", Value::Str(self.oracle.tag().into())),
            ("details", Value::Arr(self.details.iter().map(|d| Value::Str(d.clone())).collect())),
            ("digest", json::hex(self.digest)),
        ];
        if let Some(obs) = &self.obs {
            fields.push(("obs", obs.clone()));
        }
        if let Some(trace) = &self.trace {
            fields.push(("trace", trace.clone()));
        }
        json::obj(fields).to_json()
    }

    /// Parses an artifact serialized by [`FailureArtifact::to_json`].
    pub fn from_json(text: &str) -> Option<Self> {
        let v = Value::parse(text)?;
        if v.get("format")?.as_str()? != "sttcp-chaos-artifact-v1" {
            return None;
        }
        let spec = RunSpec {
            workload: workload_from_value(v.get("workload")?)?,
            seed: json::from_hex(v.get("seed")?)?,
            fencing: v.get("fencing")?.as_bool()?,
            plan: FaultPlan::from_value(v.get("plan")?)?,
            limit: SimDuration::from_millis(v.get("limit_ms")?.as_u64()?),
            max_events: v.get("max_events")?.as_u64()?,
            // Absent in artifacts from older engines: paper-era defaults.
            link: match v.get("link") {
                Some(l) => LinkProfile::from_name(l.as_str()?)?,
                None => LinkProfile::Lan,
            },
            congestion: match v.get("congestion") {
                Some(c) => CongestionAlgo::from_name(c.as_str()?)?,
                None => CongestionAlgo::Reno,
            },
            sack: match v.get("sack") {
                Some(s) => s.as_bool()?,
                None => false,
            },
        };
        let details = v
            .get("details")?
            .as_arr()?
            .iter()
            .map(|d| d.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        Some(FailureArtifact {
            spec,
            oracle: OracleKind::from_tag(v.get("oracle")?.as_str()?)?,
            details,
            digest: json::from_hex(v.get("digest")?)?,
            obs: v.get("obs").cloned(),
            trace: v.get("trace").cloned(),
        })
    }

    /// Re-executes the artifact's run and checks that it reproduces:
    /// the same oracle fires and the frame-trace digest matches
    /// exactly. Returns the replay report alongside the verdict.
    pub fn replay(&self) -> (bool, RunReport) {
        let report = execute(&self.spec);
        let same_oracle = report.violations.iter().any(|v| v.oracle == self.oracle);
        let same_digest = report.digest == self.digest;
        (same_oracle && same_digest, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultOp, SideTarget};
    use apps::Workload;

    #[test]
    fn artifact_json_roundtrip() {
        let spec = RunSpec::new(
            Workload::Echo { requests: 100 },
            0xDEAD_BEEF_0000_0007,
            FaultPlan::new([
                FaultOp::PausePrimary { at_pct: 30, dur_ms: 500 },
                FaultOp::SideDelay { target: SideTarget::Backup, delay_ms: 60 },
            ]),
        )
        .without_fencing();
        let artifact = FailureArtifact {
            spec,
            oracle: OracleKind::SingleServer,
            details: vec!["node 1 still sourcing VIP traffic".into()],
            digest: 0xFFFF_0000_1234_5678,
            obs: Some(json::obj([("counters", json::obj([("segs_suppressed", json::num(7))]))])),
            trace: Some(json::obj([
                ("format", Value::Str("sttcp-trace-v1".into())),
                ("dropped", json::num(3)),
                ("events", Value::Arr(vec![])),
            ])),
        };
        let text = artifact.to_json();
        let back = FailureArtifact::from_json(&text).expect("parses");
        assert_eq!(back, artifact);
    }

    #[test]
    fn artifact_without_obs_roundtrips() {
        let spec = RunSpec::new(Workload::Echo { requests: 1 }, 1, FaultPlan::new([]));
        let artifact = FailureArtifact {
            spec,
            oracle: OracleKind::Completion,
            details: Vec::new(),
            digest: 0,
            obs: None,
            trace: None,
        };
        let text = artifact.to_json();
        assert!(!text.contains("\"obs\""), "absent snapshot must stay absent");
        assert!(!text.contains("\"trace\""), "absent trace must stay absent");
        let back = FailureArtifact::from_json(&text).expect("parses");
        assert_eq!(back, artifact);
    }

    #[test]
    fn artifact_roundtrips_wan_congestion_knobs() {
        let spec = RunSpec::new(Workload::Echo { requests: 3 }, 9, FaultPlan::new([]))
            .on_link(LinkProfile::WanBurstLoss)
            .with_congestion(CongestionAlgo::Cubic)
            .with_sack();
        let artifact = FailureArtifact {
            spec,
            oracle: OracleKind::Completion,
            details: Vec::new(),
            digest: 1,
            obs: None,
            trace: None,
        };
        let back = FailureArtifact::from_json(&artifact.to_json()).expect("parses");
        assert_eq!(back, artifact);
        assert_eq!(back.spec.link, LinkProfile::WanBurstLoss);
        assert_eq!(back.spec.congestion, CongestionAlgo::Cubic);
        assert!(back.spec.sack);
    }

    #[test]
    fn artifact_from_an_older_engine_defaults_the_new_knobs() {
        // Build a current artifact, then strip the new fields to mimic
        // pre-WAN engines: parsing must fall back to paper-era defaults.
        let spec = RunSpec::new(Workload::Echo { requests: 1 }, 2, FaultPlan::new([]));
        let artifact = FailureArtifact {
            spec,
            oracle: OracleKind::Completion,
            details: Vec::new(),
            digest: 0,
            obs: None,
            trace: None,
        };
        let text = artifact
            .to_json()
            .replace("\"link\":\"lan\",", "")
            .replace("\"congestion\":\"reno\",", "")
            .replace("\"sack\":false,", "");
        assert!(!text.contains("\"link\""), "field must really be gone: {text}");
        let back = FailureArtifact::from_json(&text).expect("tolerant parse");
        assert_eq!(back.spec.link, LinkProfile::Lan);
        assert_eq!(back.spec.congestion, CongestionAlgo::Reno);
        assert!(!back.spec.sack);
    }

    #[test]
    fn artifact_rejects_wrong_format() {
        assert_eq!(FailureArtifact::from_json("{\"format\":\"other\"}"), None);
        assert_eq!(FailureArtifact::from_json("not json"), None);
    }
}
