//! Campaign CLI: run chaos campaigns, verify the oracles catch a
//! deliberately broken configuration, and emit replayable artifacts.
//!
//! ```text
//! chaos-hunt [--smoke | --demo | --wan] [--skip-canary] [--threads N]
//!            [--replay FILE] [--artifacts DIR]
//! ```
//!
//! * `--smoke`     bounded campaign for CI (default).
//! * `--demo`      the full ≥200-run campaign.
//! * `--wan`       burst-loss WAN failover matrix (seeds × controllers).
//! * `--replay`    replay a failure artifact JSON file and verify it
//!                 reproduces (same oracle, same frame digest).
//! * `--artifacts` write each failure's reproducer to DIR: the JSON
//!                 artifact (with embedded obs snapshot and trace tail)
//!                 plus a `.pcap` capture of the failing pass.
//!
//! Exit code 0 iff the campaign is all green AND the broken-config
//! canary is caught, shrunk, and replays deterministically.

use chaos::{
    broken_config_canary, demo_campaign, execute_with_pcap, measure_profile, run_campaign, shrink,
    smoke_campaign, wan_burst_loss_campaign, Campaign, FailureArtifact, OracleKind, Profile,
};
use netsim::pcap::SharedPcap;
use std::process::ExitCode;
use std::time::Instant;

enum Matrix {
    Smoke,
    Demo,
    Wan,
}

struct Args {
    matrix: Matrix,
    skip_canary: bool,
    threads: usize,
    replay: Option<String>,
    artifacts: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        matrix: Matrix::Smoke,
        skip_canary: false,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        replay: None,
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.matrix = Matrix::Smoke,
            "--demo" => args.matrix = Matrix::Demo,
            "--wan" => args.matrix = Matrix::Wan,
            "--skip-canary" => args.skip_canary = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--replay" => {
                args.replay = Some(it.next().ok_or("--replay needs a file")?);
            }
            "--artifacts" => {
                args.artifacts = Some(it.next().ok_or("--artifacts needs a directory")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: chaos-hunt [--smoke | --demo | --wan] [--skip-canary] \
                     [--threads N] [--replay FILE] [--artifacts DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// Writes `name.json` (the artifact) and `name.pcap` (a frame capture of
/// the failing pass, re-executed deterministically) into `dir`.
fn export_artifact(dir: &str, name: &str, artifact: &FailureArtifact) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        println!("      cannot create {dir}: {e}");
        return;
    }
    let json_path = format!("{dir}/{name}.json");
    if let Err(e) = std::fs::write(&json_path, artifact.to_json()) {
        println!("      cannot write {json_path}: {e}");
        return;
    }
    let profile = if artifact.spec.plan.needs_probe() {
        measure_profile(&artifact.spec).unwrap_or_default()
    } else {
        Profile::default()
    };
    let pcap = SharedPcap::new();
    let _ = execute_with_pcap(&artifact.spec, &profile, pcap.clone());
    let pcap_path = format!("{dir}/{name}.pcap");
    match pcap.save(&pcap_path) {
        Ok(()) => println!("      artifact files: {json_path}, {pcap_path}"),
        Err(e) => println!("      cannot write {pcap_path}: {e}"),
    }
}

fn run_matrix(campaign: &Campaign, threads: usize, artifacts: Option<&str>) -> bool {
    let started = Instant::now();
    println!(
        "== campaign `{}`: {} runs on {} threads",
        campaign.name,
        campaign.runs.len(),
        threads
    );
    let result = run_campaign(campaign, threads);
    let failed = result.failed_runs();
    let elapsed = started.elapsed();
    let takeovers = result.reports.iter().filter(|r| r.takeover_latency.is_some()).count();
    println!(
        "   {} passed, {} failed, {} takeovers observed, {:.1}s wall",
        result.reports.len() - failed.len(),
        failed.len(),
        takeovers,
        elapsed.as_secs_f64()
    );
    for &i in &failed {
        let spec = &campaign.runs[i];
        let report = &result.reports[i];
        println!(
            "   FAIL run {i}: {} seed={} plan=[{}]",
            spec.workload.label(),
            spec.seed,
            spec.plan.describe()
        );
        for v in &report.violations {
            println!("      {v}");
        }
        if let Some(oracle) = report.first_oracle() {
            let artifact = FailureArtifact::capture(spec, report, oracle);
            println!("      artifact: {}", artifact.to_json());
            if let Some(dir) = artifacts {
                export_artifact(
                    dir,
                    &format!("{}-run{i}-{}", campaign.name, oracle.tag()),
                    &artifact,
                );
            }
        }
    }
    failed.is_empty()
}

/// Proves the oracles have teeth: a fencing-disabled configuration must
/// be caught by the single-server oracle, shrink to a minimal schedule,
/// and replay deterministically.
fn run_canary(artifacts: Option<&str>) -> bool {
    println!("== broken-config canary (fencing disabled, paused primary)");
    let spec = broken_config_canary();
    let report = chaos::execute(&spec);
    let caught = report.violations.iter().any(|v| v.oracle == OracleKind::SingleServer);
    if !caught {
        println!("   FAIL: split brain was NOT caught; violations: {:?}", report.violations);
        return false;
    }
    println!("   caught: {}", report.violations[0]);

    let Some(result) = shrink(&spec, OracleKind::SingleServer, 32) else {
        println!("   FAIL: shrink could not reproduce the original failure");
        return false;
    };
    println!(
        "   shrunk in {} trials ({} ops removed): [{}]",
        result.trials,
        result.ops_removed,
        result.minimal.plan.describe()
    );
    if result.minimal.plan.ops.is_empty() {
        println!("   FAIL: shrink emptied the schedule yet still fails — oracle is vacuous");
        return false;
    }

    let artifact =
        FailureArtifact::capture(&result.minimal, &result.report, OracleKind::SingleServer);
    let text = artifact.to_json();
    let parsed = match FailureArtifact::from_json(&text) {
        Some(a) => a,
        None => {
            println!("   FAIL: artifact did not round-trip through JSON");
            return false;
        }
    };
    let (reproduced, replay_report) = parsed.replay();
    if !reproduced {
        println!(
            "   FAIL: replay diverged (digest {:016x} vs {:016x})",
            replay_report.digest, artifact.digest
        );
        return false;
    }
    println!("   artifact replays deterministically (digest {:016x})", artifact.digest);
    println!("   artifact: {text}");
    if let Some(dir) = artifacts {
        export_artifact(dir, "canary-single-server", &artifact);
    }
    true
}

fn run_replay(path: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("cannot read {path}");
        return false;
    };
    let Some(artifact) = FailureArtifact::from_json(&text) else {
        println!("{path} is not a chaos artifact");
        return false;
    };
    println!(
        "replaying {} seed={:#x} plan=[{}]",
        artifact.spec.workload.label(),
        artifact.spec.seed,
        artifact.spec.plan.describe()
    );
    let (reproduced, report) = artifact.replay();
    for v in &report.violations {
        println!("   {v}");
    }
    if reproduced {
        println!("reproduced: oracle [{}] fired, digest matches", artifact.oracle.tag());
    } else {
        println!(
            "did NOT reproduce (digest {:016x}, expected {:016x})",
            report.digest, artifact.digest
        );
    }
    reproduced
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos-hunt: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return if run_replay(path) { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    let campaign = match args.matrix {
        Matrix::Smoke => smoke_campaign(),
        Matrix::Demo => demo_campaign(),
        Matrix::Wan => wan_burst_loss_campaign(),
    };
    let mut ok = run_matrix(&campaign, args.threads, args.artifacts.as_deref());
    if !args.skip_canary {
        ok &= run_canary(args.artifacts.as_deref());
    }
    if ok {
        println!("chaos-hunt: all green");
        ExitCode::SUCCESS
    } else {
        println!("chaos-hunt: FAILURES");
        ExitCode::FAILURE
    }
}
