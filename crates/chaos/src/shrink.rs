//! Failure shrinking: reduce a violating schedule to a minimal
//! reproducer.
//!
//! Delta-debugging in two phases, each trial a full deterministic
//! re-execution:
//!
//! 1. **Op removal** — greedily drop schedule ops one at a time,
//!    keeping a removal whenever the run still violates the *same*
//!    oracle as the original failure.
//! 2. **Parameter simplification** — walk each surviving op's numeric
//!    parameters toward their simplest value (counts toward 1, delays
//!    and windows halved) while the violation persists.
//!
//! Because every run is bit-deterministic, "still fails" is an exact
//! predicate, not a statistical one — a shrunk schedule is guaranteed
//! to reproduce.

use crate::oracle::OracleKind;
use crate::plan::FaultOp;
use crate::run::{execute, RunReport, RunSpec};

/// The outcome of shrinking one failing run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal spec that still reproduces the violation.
    pub minimal: RunSpec,
    /// The report of the minimal spec's run.
    pub report: RunReport,
    /// Which oracle the shrink preserved.
    pub oracle: OracleKind,
    /// Re-executions spent shrinking.
    pub trials: u32,
    /// Ops removed from the original schedule.
    pub ops_removed: usize,
}

fn fails_same_way(spec: &RunSpec, oracle: OracleKind) -> Option<RunReport> {
    let report = execute(spec);
    if report.violations.iter().any(|v| v.oracle == oracle) {
        Some(report)
    } else {
        None
    }
}

/// Candidate simplifications for one op, most aggressive first.
fn simpler_ops(op: FaultOp) -> Vec<FaultOp> {
    match op {
        FaultOp::CrashPrimary { quantile_pct } if quantile_pct > 50 => {
            vec![FaultOp::CrashPrimary { quantile_pct: 50 }]
        }
        FaultOp::PausePrimary { at_pct, dur_ms } => {
            let mut out = Vec::new();
            if dur_ms > 300 {
                // Keep the pause past the 3×50 ms detection threshold,
                // otherwise the fault disappears rather than shrinks.
                out.push(FaultOp::PausePrimary { at_pct, dur_ms: 300 });
            }
            if at_pct > 10 {
                out.push(FaultOp::PausePrimary { at_pct: 10, dur_ms });
            }
            out
        }
        FaultOp::TapDrop { skip, count } => {
            let mut out = Vec::new();
            if count > 1 {
                out.push(FaultOp::TapDrop { skip, count: 1 });
            }
            if skip > 0 {
                out.push(FaultOp::TapDrop { skip: 0, count });
            }
            out
        }
        FaultOp::TapPartition { from_pct, dur_ms } if dur_ms > 100 => {
            vec![FaultOp::TapPartition { from_pct, dur_ms: dur_ms / 2 }]
        }
        FaultOp::SideDrop { target, skip, count } => {
            let mut out = Vec::new();
            if count > 1 {
                out.push(FaultOp::SideDrop { target, skip, count: count / 2 });
            }
            if skip > 0 {
                out.push(FaultOp::SideDrop { target, skip: 0, count });
            }
            out
        }
        FaultOp::SideDelay { target, delay_ms } if delay_ms > 10 => {
            vec![FaultOp::SideDelay { target, delay_ms: delay_ms / 2 }]
        }
        FaultOp::SideDuplicate { target, offset_ms } if offset_ms > 1 => {
            vec![FaultOp::SideDuplicate { target, offset_ms: offset_ms / 2 }]
        }
        _ => Vec::new(),
    }
}

/// Shrinks `failing` (whose run violated `oracle`) to a minimal
/// reproducer, spending at most `max_trials` re-executions.
///
/// Returns `None` if the original spec does not actually reproduce the
/// violation (a non-deterministic caller bug this engine rules out, but
/// stay total).
pub fn shrink(failing: &RunSpec, oracle: OracleKind, max_trials: u32) -> Option<ShrinkResult> {
    let mut trials: u32 = 1;
    let mut best = failing.clone();
    let mut best_report = fails_same_way(&best, oracle)?;
    let original_ops = best.plan.ops.len();

    // Phase 1: greedy op removal. Restart the scan after every
    // successful removal so later ops get re-tried in the new context.
    'removal: loop {
        for i in 0..best.plan.ops.len() {
            if trials >= max_trials {
                break 'removal;
            }
            let mut candidate = best.clone();
            candidate.plan.ops.remove(i);
            trials += 1;
            if let Some(report) = fails_same_way(&candidate, oracle) {
                best = candidate;
                best_report = report;
                continue 'removal;
            }
        }
        break;
    }

    // Phase 2: per-op parameter simplification to a fixpoint.
    'simplify: loop {
        for i in 0..best.plan.ops.len() {
            for simpler in simpler_ops(best.plan.ops[i]) {
                if trials >= max_trials {
                    break 'simplify;
                }
                let mut candidate = best.clone();
                candidate.plan.ops[i] = simpler;
                trials += 1;
                if let Some(report) = fails_same_way(&candidate, oracle) {
                    best = candidate;
                    best_report = report;
                    continue 'simplify;
                }
            }
        }
        break;
    }

    let ops_removed = original_ops - best.plan.ops.len();
    Some(ShrinkResult { minimal: best, report: best_report, oracle, trials, ops_removed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SideTarget;

    #[test]
    fn simpler_ops_never_return_the_input() {
        let ops = [
            FaultOp::CrashPrimary { quantile_pct: 85 },
            FaultOp::PausePrimary { at_pct: 30, dur_ms: 500 },
            FaultOp::TapDrop { skip: 5, count: 3 },
            FaultOp::TapPartition { from_pct: 30, dur_ms: 200 },
            FaultOp::SideDrop { target: SideTarget::Backup, skip: 2, count: 4 },
            FaultOp::SideDelay { target: SideTarget::Primary, delay_ms: 60 },
            FaultOp::SideDuplicate { target: SideTarget::Backup, offset_ms: 8 },
        ];
        for op in ops {
            for s in simpler_ops(op) {
                assert_ne!(s, op, "simplification of {op:?} must change it");
            }
        }
    }

    #[test]
    fn already_minimal_ops_have_no_simplifications() {
        assert!(simpler_ops(FaultOp::CrashPrimary { quantile_pct: 30 }).is_empty());
        assert!(simpler_ops(FaultOp::TapDrop { skip: 0, count: 1 }).is_empty());
        assert!(simpler_ops(FaultOp::CrashPrimaryNearFin).is_empty());
    }
}
