//! Executing one chaos run: probe, inject, observe, judge.
//!
//! A run is two deterministic simulations. The **probe** pass executes
//! the workload fault-free to map schedule percentages onto virtual
//! instants (total duration, first-FIN time). The **faulted** pass
//! replays the same scenario with the plan's crash schedule and ingress
//! rules installed, a frame probe digesting every transmission, and the
//! invariant oracles sampled between scheduler chunks and at the end.

use crate::json::Value;
use crate::oracle::{
    check_seq_agreement, check_single_server, OracleKind, ShadowSample, Violation,
};
use crate::plan::{FaultOp, FaultPlan, SideTarget};
use apps::Workload;
use bytes::Bytes;
use netsim::node::NodeId;
use netsim::pcap::SharedPcap;
use netsim::{
    DelayRule, DropRule, DuplicateRule, LinkProfile, LossModel, RuleId, SimDuration, SimTime,
    Simulator,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use sttcp::node::ServerNode;
use sttcp::scenario::{addrs, build, RunLimits, Scenario, ScenarioSpec, StopReason};
use sttcp::SttcpConfig;
use tcpstack::{CongestionAlgo, TcpState};
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpFlags, TcpSegment, UdpDatagram};

/// Everything one chaos run needs: base scenario knobs plus the fault
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// The client workload.
    pub workload: Workload,
    /// Simulation seed (drives ISNs, probabilistic rules, jitter).
    pub seed: u64,
    /// Whether fencing (power switch) is deployed — the demo campaigns
    /// keep it on; the canary turns it off to prove the oracles notice.
    pub fencing: bool,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Virtual-time budget for the faulted pass.
    pub limit: SimDuration,
    /// Event budget for the faulted pass (runaway-loop backstop).
    pub max_events: u64,
    /// Link characteristics on every hop (LAN reproduces the paper's
    /// testbed; the WAN profiles stress recovery under loss and delay).
    pub link: LinkProfile,
    /// Congestion-control algorithm on every host.
    pub congestion: CongestionAlgo,
    /// Negotiate RFC 2018 SACK on every host.
    pub sack: bool,
}

impl RunSpec {
    /// A spec with default budgets (60 virtual seconds, 20 M events).
    pub fn new(workload: Workload, seed: u64, plan: FaultPlan) -> Self {
        RunSpec {
            workload,
            seed,
            fencing: true,
            plan,
            limit: SimDuration::from_secs(60),
            max_events: 20_000_000,
            link: LinkProfile::Lan,
            congestion: CongestionAlgo::Reno,
            sack: false,
        }
    }

    /// Disables fencing (builder style) — the intentionally-broken
    /// configuration the canary uses.
    #[must_use]
    pub fn without_fencing(mut self) -> Self {
        self.fencing = false;
        self
    }

    /// Runs every hop on `profile` (builder style).
    #[must_use]
    pub fn on_link(mut self, profile: LinkProfile) -> Self {
        self.link = profile;
        self
    }

    /// Selects the congestion-control algorithm (builder style).
    #[must_use]
    pub fn with_congestion(mut self, algo: CongestionAlgo) -> Self {
        self.congestion = algo;
        self
    }

    /// Negotiates SACK on every host (builder style).
    #[must_use]
    pub fn with_sack(mut self) -> Self {
        self.sack = true;
        self
    }
}

/// Quantile→instant map measured by the fault-free probe pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Profile {
    /// Fault-free completion time of the workload.
    pub duration: SimDuration,
    /// Departure time of the first FIN segment on the service
    /// connection, when the probe observed one.
    pub first_fin: Option<SimTime>,
}

impl Profile {
    /// The instant at `pct` % of the fault-free duration.
    pub fn at_pct(&self, pct: u8) -> SimTime {
        let ns = (u128::from(self.duration.as_nanos()) * u128::from(pct) / 100) as u64;
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }
}

/// The judged result of one chaos run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the faulted pass stopped.
    pub reason: StopReason,
    /// Invariant violations, in observation order. Empty ⇒ pass.
    pub violations: Vec<Violation>,
    /// FNV-1a digest over every frame transmission of the faulted pass
    /// (time, endpoints, bytes) — the replay fingerprint.
    pub digest: u64,
    /// Fault-free duration from the probe pass (zero if not needed).
    pub probe_duration: SimDuration,
    /// Virtual time the faulted pass consumed.
    pub virtual_duration: SimDuration,
    /// Crash/pause → takeover delay, when a takeover happened.
    pub takeover_latency: Option<SimDuration>,
    /// Bytes the client received.
    pub bytes_received: u64,
    /// Per-injection counters: (op description, matched, fired).
    pub injections: Vec<(String, u64, u64)>,
    /// Observability counter snapshot of the faulted pass, as a JSON
    /// value ready to embed in reports and artifacts.
    pub obs: Option<Value>,
    /// Tail of the flight-recorder trace (newest events) of the faulted
    /// pass, as a parsed `sttcp-trace-v1` export ready to embed in
    /// reports and artifacts.
    pub trace: Option<Value>,
}

impl RunReport {
    /// True when every oracle stayed green.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation's oracle, if any.
    pub fn first_oracle(&self) -> Option<OracleKind> {
        self.violations.first().map(|v| v.oracle)
    }
}

/// Flight-recorder ring capacity for chaos runs: enough to hold the
/// whole failure neighbourhood while keeping per-run memory small.
const TRACE_RING: usize = 4096;

/// How many newest trace events a report/artifact embeds.
const TRACE_TAIL: usize = 256;

fn trace_tail(sc: &Scenario) -> Option<Value> {
    sc.flight.as_ref().and_then(|ring| Value::parse(&ring.tail(TRACE_TAIL).to_json()))
}

fn scenario_spec(spec: &RunSpec) -> ScenarioSpec {
    // The in-network packet logger (§3.2) is part of the full ST-TCP
    // deployment and is what makes tap omissions recoverable even when
    // the primary dies before healing them over the side channel
    // (double failures). Chaos runs exercise that full configuration,
    // recording protocol counters so oracles and artifacts can read
    // protocol state instead of re-deriving it from frame traces.
    let mut sc = ScenarioSpec::new(spec.workload)
        .st_tcp(sttcp_cfg(spec))
        .closing()
        .with_logger()
        .recording()
        .tracing_with_capacity(TRACE_RING)
        .link_profile(spec.link)
        .congestion(spec.congestion);
    if spec.sack {
        sc = sc.with_sack();
    }
    if spec.fencing {
        sc = sc.with_power_switch();
    }
    sc.seed = spec.seed;
    sc
}

fn sttcp_cfg(spec: &RunSpec) -> SttcpConfig {
    let mut cfg = SttcpConfig::new(addrs::VIP, 80).with_logger();
    if spec.fencing {
        cfg = cfg.with_fencing(0);
    }
    if spec.link.spec().loss != LossModel::None {
        // The paper's threshold of 3 assumes a loss-free LAN side
        // channel. On bursty profiles a Gilbert–Elliott bad period eats
        // several consecutive heartbeats, so the deployment provisions a
        // larger silence budget (and mirrors congestion state, which is
        // pointless on a LAN but saves the slow WAN window rebuild).
        cfg = cfg.with_missed_hb_threshold(10).with_cong_sync();
    }
    cfg
}

// ---------------------------------------------------------------------
// Frame classification for matchers and the probe.

fn parse_ipv4(frame: &Bytes) -> Option<Ipv4Packet> {
    let eth = EthernetFrame::parse(frame.clone()).ok()?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    Ipv4Packet::parse(eth.payload).ok()
}

/// Tapped inbound service data: client→VIP TCP segments (what the
/// backup buffers, §4.2).
fn is_tap_data(frame: &Bytes) -> bool {
    parse_ipv4(frame)
        .map(|ip| ip.protocol == IpProtocol::Tcp && ip.dst == addrs::VIP)
        .unwrap_or(false)
}

/// Any tapped VIP traffic, both directions (a full tap partition).
fn is_tap_any(frame: &Bytes) -> bool {
    parse_ipv4(frame)
        .map(|ip| ip.protocol == IpProtocol::Tcp && (ip.dst == addrs::VIP || ip.src == addrs::VIP))
        .unwrap_or(false)
}

/// A side-channel datagram (the only UDP in the simulation is the
/// ST-TCP side channel; match the destination port to be precise).
fn is_side_channel(frame: &Bytes, side_port: u16) -> bool {
    parse_ipv4(frame)
        .and_then(|ip| {
            if ip.protocol != IpProtocol::Udp {
                return None;
            }
            let udp = UdpDatagram::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
            Some(udp.dst_port == side_port)
        })
        .unwrap_or(false)
}

// ---------------------------------------------------------------------
// Probe observer: trace digest, VIP senders, first FIN.

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[derive(Debug)]
struct ProbeState {
    digest: u64,
    /// Latest departure time of a VIP-sourced frame per *originating*
    /// server node (forwarding hops are excluded by the caller).
    vip_last_sent: BTreeMap<usize, SimTime>,
    first_fin: Option<SimTime>,
}

impl ProbeState {
    fn new() -> Self {
        ProbeState { digest: FNV_OFFSET, vip_last_sent: BTreeMap::new(), first_fin: None }
    }
}

fn attach_probe(sim: &mut Simulator, servers: Vec<NodeId>) -> Rc<RefCell<ProbeState>> {
    attach_probe_with(sim, servers, None)
}

fn attach_probe_with(
    sim: &mut Simulator,
    servers: Vec<NodeId>,
    pcap: Option<SharedPcap>,
) -> Rc<RefCell<ProbeState>> {
    let state = Rc::new(RefCell::new(ProbeState::new()));
    let handle = Rc::clone(&state);
    sim.set_probe(move |ev| {
        if let Some(cap) = &pcap {
            cap.record(ev.time, ev.frame);
        }
        let mut st = handle.borrow_mut();
        let mut h = st.digest;
        h = fnv1a(h, &ev.time.as_nanos().to_le_bytes());
        h = fnv1a(h, &(ev.from.0 as u64).to_le_bytes());
        h = fnv1a(h, &(ev.to.0 as u64).to_le_bytes());
        h = fnv1a(h, ev.frame);
        st.digest = h;
        let from_server = servers.contains(&ev.from);
        if !from_server && st.first_fin.is_some() {
            return;
        }
        if let Some(ip) = parse_ipv4(ev.frame) {
            if ip.protocol == IpProtocol::Tcp {
                let vip_sourced = ip.src == addrs::VIP;
                if vip_sourced && from_server {
                    st.vip_last_sent.insert(ev.from.0, ev.time);
                }
                if st.first_fin.is_none() && (vip_sourced || ip.dst == addrs::VIP) {
                    if let Ok(seg) = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst) {
                        if seg.flags.contains(TcpFlags::FIN) {
                            st.first_fin = Some(ev.time);
                        }
                    }
                }
            }
        }
    });
    state
}

// ---------------------------------------------------------------------
// Probe pass.

/// Measures the fault-free [`Profile`] for a spec (ignoring its plan).
/// Returns the failed report if even the fault-free run cannot finish.
pub fn measure_profile(spec: &RunSpec) -> Result<Profile, Box<RunReport>> {
    let mut sc = build(&scenario_spec(spec));
    let probe_state = attach_probe(&mut sc.sim, vec![sc.primary]);
    let out = sc.run(RunLimits::time(spec.limit).max_events(spec.max_events));
    if !out.completed() {
        return Err(Box::new(RunReport {
            reason: out.reason,
            violations: vec![Violation {
                oracle: OracleKind::Completion,
                at: out.stopped_at,
                detail: format!(
                    "fault-free probe run stopped: {:?} after {}/{} bytes",
                    out.reason, out.progress.0, out.progress.1
                ),
            }],
            digest: probe_state.borrow().digest,
            probe_duration: SimDuration::ZERO,
            virtual_duration: out.stopped_at.duration_since(SimTime::ZERO),
            takeover_latency: None,
            bytes_received: out.progress.0,
            injections: Vec::new(),
            obs: sc.snapshot().and_then(|s| Value::parse(&s.to_json())),
            trace: trace_tail(&sc),
        }));
    }
    let first_fin = probe_state.borrow().first_fin;
    Ok(Profile { duration: out.stopped_at.duration_since(SimTime::ZERO), first_fin })
}

// ---------------------------------------------------------------------
// Plan installation.

struct Installed {
    /// Earliest instant an op incapacitates the primary.
    incapacitated_at: Option<SimTime>,
    /// Sequence-agreement sampling is valid strictly before this time.
    seq_check_until: SimTime,
    /// (op description, node, rule) for post-run stat collection.
    rules: Vec<(String, NodeId, RuleId)>,
}

fn install_plan(sc: &mut Scenario, spec: &RunSpec, profile: &Profile) -> Installed {
    let side_port = sttcp_cfg(spec).side_channel_port;
    let mut incapacitated_at: Option<SimTime> = None;
    // §4.1 sequence agreement assumes the tap sees what the primary
    // sees. On lossy profiles that breaks legitimately: the hub repeats
    // a frame onto the primary's and the backup's links, and each link
    // draws its own loss — so the shadow can briefly *lead* the primary
    // until the client retransmits. The oracle is only meaningful on
    // loss-free links.
    let mut seq_check_until =
        if spec.link.spec().loss == LossModel::None { SimTime::MAX } else { SimTime::ZERO };
    let mut rules = Vec::new();
    let note_incapacity = |at: SimTime, until: &mut SimTime, inc: &mut Option<SimTime>| {
        *inc = Some(inc.map_or(at, |prev: SimTime| prev.min(at)));
        *until = (*until).min(at);
    };
    for op in &spec.plan.ops {
        let side_node = |sc: &Scenario, target: SideTarget| match target {
            SideTarget::Primary => Some(sc.primary),
            SideTarget::Backup => sc.backup,
        };
        match *op {
            FaultOp::CrashPrimary { quantile_pct } => {
                let at = profile.at_pct(quantile_pct);
                sc.sim.schedule_crash(sc.primary, at);
                note_incapacity(at, &mut seq_check_until, &mut incapacitated_at);
            }
            FaultOp::CrashPrimaryNearFin => {
                // Fall back to 95 % when the probe saw no FIN (the
                // workload should close, but stay total regardless).
                let at = profile.first_fin.unwrap_or_else(|| profile.at_pct(95));
                sc.sim.schedule_crash(sc.primary, at);
                note_incapacity(at, &mut seq_check_until, &mut incapacitated_at);
            }
            FaultOp::PausePrimary { at_pct, dur_ms } => {
                let at = profile.at_pct(at_pct);
                sc.sim.schedule_pause(sc.primary, at, SimDuration::from_millis(dur_ms));
                note_incapacity(at, &mut seq_check_until, &mut incapacitated_at);
            }
            FaultOp::TapDrop { skip, count } => {
                if let Some(backup) = sc.backup {
                    let id =
                        sc.sim.add_ingress_rule(backup, DropRule::window(skip, count, is_tap_data));
                    rules.push((format!("tap_drop(skip {skip}, {count})"), backup, id));
                }
            }
            FaultOp::TapPartition { from_pct, dur_ms } => {
                if let Some(backup) = sc.backup {
                    let from = profile.at_pct(from_pct);
                    let until = from + SimDuration::from_millis(dur_ms);
                    let rule = DropRule::all(is_tap_any).between(from, until);
                    let id = sc.sim.add_ingress_rule(backup, rule);
                    rules.push((format!("tap_partition@{from_pct}%/{dur_ms}ms"), backup, id));
                    // The backup misses everything in the window; its
                    // shadow may legitimately trail or resync after.
                    seq_check_until = seq_check_until.min(from);
                }
            }
            FaultOp::SideDrop { target, skip, count } => {
                if let Some(node) = side_node(sc, target) {
                    let rule = DropRule::window(skip, count, move |f: &Bytes| {
                        is_side_channel(f, side_port)
                    });
                    let id = sc.sim.add_ingress_rule(node, rule);
                    rules.push((format!("side_drop@{target:?}(skip {skip}, {count})"), node, id));
                }
            }
            FaultOp::SideDelay { target, delay_ms } => {
                if let Some(node) = side_node(sc, target) {
                    let rule =
                        DelayRule::by(SimDuration::from_millis(delay_ms), move |f: &Bytes| {
                            is_side_channel(f, side_port)
                        });
                    let id = sc.sim.add_ingress_rule(node, rule);
                    rules.push((format!("side_delay@{target:?}({delay_ms}ms)"), node, id));
                }
            }
            FaultOp::SideDuplicate { target, offset_ms } => {
                if let Some(node) = side_node(sc, target) {
                    let rule = DuplicateRule::after(
                        SimDuration::from_millis(offset_ms),
                        move |f: &Bytes| is_side_channel(f, side_port),
                    );
                    let id = sc.sim.add_ingress_rule(node, rule);
                    rules.push((format!("side_dup@{target:?}({offset_ms}ms)"), node, id));
                }
            }
        }
    }
    Installed { incapacitated_at, seq_check_until, rules }
}

// ---------------------------------------------------------------------
// Sampled oracles.

fn sample_oracles(
    sc: &Scenario,
    installed: &Installed,
    violations: &mut Vec<Violation>,
    already: &mut bool,
) {
    let now = sc.sim.now();
    let primary = sc.sim.node_ref::<ServerNode>(sc.primary);
    // Sequence agreement: before the primary is incapacitated (and
    // before any tap partition), the shadow never leads the primary.
    // Sampling walks the stacks; the judgment itself is the pure
    // node-set check in [`crate::oracle`].
    if !*already && now < installed.seq_check_until {
        if let Some(backup_id) = sc.backup {
            let backup = sc.sim.node_ref::<ServerNode>(backup_id);
            let taken_over = backup.backup_engine().map(|e| e.has_taken_over()).unwrap_or(false);
            if !taken_over {
                let mut samples = Vec::new();
                for sock in backup.stack().socks() {
                    let Some(btcb) = backup.stack().tcb(sock) else { continue };
                    if !btcb.state().is_synchronized() {
                        continue;
                    }
                    let Some(psock) = primary.stack().sock_by_quad(btcb.quad()) else { continue };
                    let Some(ptcb) = primary.stack().tcb(psock) else { continue };
                    if !ptcb.state().is_synchronized() {
                        continue;
                    }
                    samples.push(ShadowSample {
                        quad: btcb.quad(),
                        shadow_rcv_nxt: btcb.rcv_nxt(),
                        primary_rcv_nxt: ptcb.rcv_nxt(),
                    });
                }
                if check_seq_agreement(now, &samples, violations) {
                    *already = true;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The full run.

/// Executes one chaos run (probe pass if the plan needs one, then the
/// faulted pass) and judges it against every oracle.
pub fn execute(spec: &RunSpec) -> RunReport {
    let profile = if spec.plan.needs_probe() {
        match measure_profile(spec) {
            Ok(p) => p,
            Err(report) => return *report,
        }
    } else {
        Profile::default()
    };
    execute_with_profile(spec, &profile)
}

/// Executes the faulted pass against an already-measured [`Profile`]
/// (campaigns reuse probes across plans sharing a workload and seed).
pub fn execute_with_profile(spec: &RunSpec, profile: &Profile) -> RunReport {
    execute_faulted(spec, profile, None)
}

/// Like [`execute_with_profile`], but additionally captures every frame
/// transmission of the faulted pass into `pcap` (the artifact-export
/// path: the capture opens directly in Wireshark next to the JSON).
pub fn execute_with_pcap(spec: &RunSpec, profile: &Profile, pcap: SharedPcap) -> RunReport {
    execute_faulted(spec, profile, Some(pcap))
}

fn execute_faulted(spec: &RunSpec, profile: &Profile, pcap: Option<SharedPcap>) -> RunReport {
    let cfg = sttcp_cfg(spec);
    let mut sc = build(&scenario_spec(spec));
    let installed = install_plan(&mut sc, spec, profile);
    let mut servers = vec![sc.primary];
    servers.extend(sc.backup);
    let probe_state = attach_probe_with(&mut sc.sim, servers, pcap);

    let mut violations = Vec::new();
    let mut sampled_already = false;
    let t0 = sc.sim.now();
    let deadline = t0 + spec.limit;
    let chunk = SimDuration::from_millis(50);
    let events_before = sc.sim.trace().events_processed;
    let reason = loop {
        if sc.client().unwrap().is_done() {
            break StopReason::Completed;
        }
        if sc.sim.now() >= deadline {
            break StopReason::TimeLimit;
        }
        if sc.sim.trace().events_processed - events_before >= spec.max_events {
            break StopReason::EventLimit;
        }
        if sc.sim.pending_events() == 0 {
            break StopReason::WedgedClient;
        }
        sc.sim.run_for(chunk);
        sample_oracles(&sc, &installed, &mut violations, &mut sampled_already);
    };
    let stopped_at = sc.sim.now();

    // ---- terminal oracles -------------------------------------------
    let snapshot = sc.snapshot();

    // Retention bound (§4.2): retained bytes past the second-buffer
    // capacity spill into the first buffer and eat the advertised
    // window, so occupancy is structurally capped at retention + recv
    // capacity — window exhaustion stops the sender there. The gauge
    // sees every peak, not just the instants the old sampled check
    // visited (clients and the shadow run with retention capacity 0
    // and never retain, so the global gauge is the primary's).
    if let Some(snap) = &snapshot {
        let tcp = &sc.sim.node_ref::<ServerNode>(sc.primary).stack().config().tcp;
        let bound = (tcp.retention_buf + tcp.recv_buf) as u64;
        let high_water = snap.get("retention_high_water");
        if high_water > bound {
            violations.push(Violation {
                oracle: OracleKind::RetentionBound,
                at: stopped_at,
                detail: format!("primary retained {high_water} bytes > §4.2 bound {bound}"),
            });
        }
    }

    let metrics = sc.client().unwrap().metrics.clone();
    let progress = sc.client().unwrap().progress();
    if metrics.content_errors > 0 {
        violations.push(Violation {
            oracle: OracleKind::ClientIntegrity,
            at: stopped_at,
            detail: format!(
                "{} content errors, first at byte offset {:?}",
                metrics.content_errors, metrics.first_error_pos
            ),
        });
    }
    if reason != StopReason::Completed {
        violations.push(Violation {
            oracle: OracleKind::Completion,
            at: stopped_at,
            detail: format!("run stopped: {:?} after {}/{} bytes", reason, progress.0, progress.1),
        });
    }

    let takeover_at = sc.backup().and_then(|e| e.takeover_at());
    let takeover_latency = match (installed.incapacitated_at, takeover_at) {
        (Some(fault), Some(tk)) => tk.checked_duration_since(fault),
        _ => None,
    };

    // Takeover latency bound: detection threshold + one sync tick +
    // schedule-added detector slack + fencing round-trip margin.
    if let (Some(fault_at), Some(tk)) = (installed.incapacitated_at, takeover_at) {
        let hb_ms = cfg.hb_interval.as_millis();
        let bound = SimDuration::from_millis(
            hb_ms * u64::from(cfg.missed_hb_threshold + 2)
                + cfg.effective_sync_time().as_millis()
                + spec.plan.detector_slack_ms(hb_ms)
                + 100,
        );
        match tk.checked_duration_since(fault_at) {
            Some(latency) if latency > bound => violations.push(Violation {
                oracle: OracleKind::TakeoverLatency,
                at: tk,
                detail: format!("takeover {latency} after fault exceeds bound {bound}"),
            }),
            Some(_) => {}
            None => violations.push(Violation {
                oracle: OracleKind::TakeoverLatency,
                at: tk,
                detail: format!("takeover at {tk} precedes the fault at {fault_at}"),
            }),
        }
    }
    if let (Some(fault_at), None) = (installed.incapacitated_at, takeover_at) {
        // The primary died mid-workload and nobody took over — only a
        // problem if the workload then failed to finish (a crash after
        // the last byte needs no takeover).
        if reason != StopReason::Completed && fault_at < stopped_at {
            violations.push(Violation {
                oracle: OracleKind::TakeoverLatency,
                at: stopped_at,
                detail: format!("primary incapacitated at {fault_at}, backup never took over"),
            });
        }
    }

    // False suspicion: an innocent schedule must not trigger takeover.
    let hb_ms = cfg.hb_interval.as_millis();
    let detection_ms = hb_ms * u64::from(cfg.missed_hb_threshold);
    if let Some(tk) = takeover_at {
        if !spec.plan.incapacitates_primary() && spec.plan.detector_slack_ms(hb_ms) < detection_ms {
            violations.push(Violation {
                oracle: OracleKind::FalseSuspicion,
                at: tk,
                detail: format!(
                    "takeover at {tk} though the schedule never incapacitated the primary"
                ),
            });
        }
    }

    // Single server: after takeover (plus a small in-flight grace), only
    // the backup may source VIP traffic. The node-set check is shared
    // with the cluster campaigns; here the allowed set is the singleton
    // promoted backup.
    if let Some(tk) = takeover_at {
        let grace = SimDuration::from_millis(5);
        let allowed = [sc.backup.map(|b| b.0).unwrap_or(usize::MAX)];
        let st = probe_state.borrow();
        check_single_server(tk, grace, &allowed, &st.vip_last_sent, &mut violations);
    }

    // Eventual close: a completed closing workload must fully tear down.
    if reason == StopReason::Completed {
        sc.sim.run_for(SimDuration::from_secs(3));
        let client = sc.sim.node_ref::<sttcp::node::ClientNode>(sc.client);
        let state = client.sock().and_then(|s| client.stack().state(s));
        let closed = matches!(state, None | Some(TcpState::Closed) | Some(TcpState::TimeWait));
        if !closed {
            violations.push(Violation {
                oracle: OracleKind::EventualClose,
                at: sc.sim.now(),
                detail: format!("client connection stuck in {state:?} after completion"),
            });
        }
    }

    let injections = installed
        .rules
        .iter()
        .map(|(desc, node, id)| {
            let stats = sc.sim.ingress_rule_stats(*node, *id);
            (desc.clone(), stats.matched, stats.fired)
        })
        .collect();

    let digest = probe_state.borrow().digest;
    RunReport {
        reason,
        violations,
        digest,
        probe_duration: profile.duration,
        virtual_duration: stopped_at.duration_since(t0),
        takeover_latency,
        bytes_received: metrics.bytes_received,
        injections,
        obs: snapshot.and_then(|s| Value::parse(&s.to_json())),
        trace: trace_tail(&sc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_pct_maps_linearly() {
        let p = Profile { duration: SimDuration::from_secs(10), first_fin: None };
        assert_eq!(p.at_pct(0), SimTime::ZERO);
        assert_eq!(p.at_pct(50), SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(p.at_pct(100), SimTime::ZERO + SimDuration::from_secs(10));
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        let a = fnv1a(fnv1a(FNV_OFFSET, b"ab"), b"cd");
        let b = fnv1a(fnv1a(FNV_OFFSET, b"cd"), b"ab");
        assert_ne!(a, b);
    }
}
