//! Fault schedules: serializable descriptions of *what to break when*.
//!
//! A [`FaultPlan`] is a list of [`FaultOp`]s — pure data, no closures —
//! so a failing schedule can be shrunk op-by-op, written into a
//! replayable artifact, and parsed back byte-identically. Times are
//! expressed as percentages of the fault-free run duration (measured by
//! a probe run) so the same plan is meaningful across workloads.

use crate::json::{self, Value};
use apps::Workload;

/// Which server's ingress a side-channel fault applies to.
///
/// The side channel is bidirectional UDP: heartbeats and missing-segment
/// replies flow primary→backup; backup acks and missing-segment requests
/// flow backup→primary. Placing the rule on the *receiving* node's
/// ingress selects the direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideTarget {
    /// Fault side-channel datagrams arriving at the primary
    /// (backup acks, missing-segment requests).
    Primary,
    /// Fault side-channel datagrams arriving at the backup
    /// (heartbeats, missing-segment replies).
    Backup,
}

impl SideTarget {
    fn tag(self) -> &'static str {
        match self {
            SideTarget::Primary => "primary",
            SideTarget::Backup => "backup",
        }
    }

    fn from_tag(s: &str) -> Option<Self> {
        match s {
            "primary" => Some(SideTarget::Primary),
            "backup" => Some(SideTarget::Backup),
            _ => None,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Fail-stop the primary at `quantile_pct` % of the fault-free run
    /// duration.
    CrashPrimary {
        /// Crash instant as a percentage (0–100) of the probe duration.
        quantile_pct: u8,
    },
    /// Fail-stop the primary at the instant the first FIN of the
    /// client↔server teardown was observed in the probe run — the
    /// crash-during-teardown corner.
    CrashPrimaryNearFin,
    /// Freeze the primary (performance failure, paper §7) at
    /// `at_pct` % for `dur_ms` virtual milliseconds; it resumes with
    /// its state intact — the scenario fencing exists for.
    PausePrimary {
        /// Pause start as a percentage of the probe duration.
        at_pct: u8,
        /// Pause length in virtual milliseconds.
        dur_ms: u64,
    },
    /// Drop tapped client→VIP data segments at the backup: after
    /// letting `skip` through, drop the next `count` (the §4.2 omission
    /// the missing-segment protocol exists for).
    TapDrop {
        /// Matching segments let through first.
        skip: u64,
        /// Matching segments then dropped.
        count: u64,
    },
    /// Drop *all* tapped VIP traffic at the backup in a time window
    /// starting at `from_pct` % for `dur_ms` ms (a tap partition).
    TapPartition {
        /// Partition start as a percentage of the probe duration.
        from_pct: u8,
        /// Partition length in virtual milliseconds.
        dur_ms: u64,
    },
    /// Drop side-channel datagrams arriving at `target`: skip `skip`,
    /// then drop `count`.
    SideDrop {
        /// Which server's ingress.
        target: SideTarget,
        /// Matching datagrams let through first.
        skip: u64,
        /// Matching datagrams then dropped.
        count: u64,
    },
    /// Delay every side-channel datagram arriving at `target` by
    /// `delay_ms` virtual milliseconds (reordering relative to the tap).
    SideDelay {
        /// Which server's ingress.
        target: SideTarget,
        /// Added latency in virtual milliseconds.
        delay_ms: u64,
    },
    /// Deliver side-channel datagrams arriving at `target` twice, the
    /// copy `offset_ms` later (repetition fault).
    SideDuplicate {
        /// Which server's ingress.
        target: SideTarget,
        /// Echo offset in virtual milliseconds.
        offset_ms: u64,
    },
}

impl FaultOp {
    /// True for ops that intentionally incapacitate the primary, i.e.
    /// runs where a takeover is legitimate.
    pub fn incapacitates_primary(&self) -> bool {
        matches!(
            self,
            FaultOp::CrashPrimary { .. }
                | FaultOp::CrashPrimaryNearFin
                | FaultOp::PausePrimary { .. }
        )
    }

    /// Extra heartbeat silence this op can add, in virtual
    /// milliseconds, given the heartbeat interval. Used to widen the
    /// takeover-latency bound for schedules that disturb the channel
    /// carrying the failure detector.
    pub fn detector_slack_ms(&self, hb_interval_ms: u64) -> u64 {
        match self {
            FaultOp::SideDrop { target: SideTarget::Backup, count, .. } => count * hb_interval_ms,
            FaultOp::SideDelay { target: SideTarget::Backup, delay_ms } => *delay_ms,
            _ => 0,
        }
    }

    fn to_value(self) -> Value {
        match self {
            FaultOp::CrashPrimary { quantile_pct } => json::obj([
                ("op", Value::Str("crash_primary".into())),
                ("quantile_pct", json::num(u64::from(quantile_pct))),
            ]),
            FaultOp::CrashPrimaryNearFin => {
                json::obj([("op", Value::Str("crash_primary_near_fin".into()))])
            }
            FaultOp::PausePrimary { at_pct, dur_ms } => json::obj([
                ("op", Value::Str("pause_primary".into())),
                ("at_pct", json::num(u64::from(at_pct))),
                ("dur_ms", json::num(dur_ms)),
            ]),
            FaultOp::TapDrop { skip, count } => json::obj([
                ("op", Value::Str("tap_drop".into())),
                ("skip", json::num(skip)),
                ("count", json::num(count)),
            ]),
            FaultOp::TapPartition { from_pct, dur_ms } => json::obj([
                ("op", Value::Str("tap_partition".into())),
                ("from_pct", json::num(u64::from(from_pct))),
                ("dur_ms", json::num(dur_ms)),
            ]),
            FaultOp::SideDrop { target, skip, count } => json::obj([
                ("op", Value::Str("side_drop".into())),
                ("target", Value::Str(target.tag().into())),
                ("skip", json::num(skip)),
                ("count", json::num(count)),
            ]),
            FaultOp::SideDelay { target, delay_ms } => json::obj([
                ("op", Value::Str("side_delay".into())),
                ("target", Value::Str(target.tag().into())),
                ("delay_ms", json::num(delay_ms)),
            ]),
            FaultOp::SideDuplicate { target, offset_ms } => json::obj([
                ("op", Value::Str("side_duplicate".into())),
                ("target", Value::Str(target.tag().into())),
                ("offset_ms", json::num(offset_ms)),
            ]),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        let target = || SideTarget::from_tag(v.get("target")?.as_str()?);
        match v.get("op")?.as_str()? {
            "crash_primary" => Some(FaultOp::CrashPrimary {
                quantile_pct: v.get("quantile_pct")?.as_u64()?.try_into().ok()?,
            }),
            "crash_primary_near_fin" => Some(FaultOp::CrashPrimaryNearFin),
            "pause_primary" => Some(FaultOp::PausePrimary {
                at_pct: v.get("at_pct")?.as_u64()?.try_into().ok()?,
                dur_ms: v.get("dur_ms")?.as_u64()?,
            }),
            "tap_drop" => Some(FaultOp::TapDrop {
                skip: v.get("skip")?.as_u64()?,
                count: v.get("count")?.as_u64()?,
            }),
            "tap_partition" => Some(FaultOp::TapPartition {
                from_pct: v.get("from_pct")?.as_u64()?.try_into().ok()?,
                dur_ms: v.get("dur_ms")?.as_u64()?,
            }),
            "side_drop" => Some(FaultOp::SideDrop {
                target: target()?,
                skip: v.get("skip")?.as_u64()?,
                count: v.get("count")?.as_u64()?,
            }),
            "side_delay" => Some(FaultOp::SideDelay {
                target: target()?,
                delay_ms: v.get("delay_ms")?.as_u64()?,
            }),
            "side_duplicate" => Some(FaultOp::SideDuplicate {
                target: target()?,
                offset_ms: v.get("offset_ms")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// An ordered fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled faults, applied to one run together.
    pub ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// A schedule from ops.
    pub fn new(ops: impl IntoIterator<Item = FaultOp>) -> Self {
        FaultPlan { ops: ops.into_iter().collect() }
    }

    /// The empty (fault-free) schedule.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when some op incapacitates the primary (takeover expected
    /// if the workload has not already finished).
    pub fn incapacitates_primary(&self) -> bool {
        self.ops.iter().any(FaultOp::incapacitates_primary)
    }

    /// True when some op needs the probe run's quantile→time map.
    pub fn needs_probe(&self) -> bool {
        self.ops.iter().any(|op| {
            matches!(
                op,
                FaultOp::CrashPrimary { .. }
                    | FaultOp::CrashPrimaryNearFin
                    | FaultOp::PausePrimary { .. }
                    | FaultOp::TapPartition { .. }
            )
        })
    }

    /// Total extra failure-detector slack the schedule can introduce,
    /// in virtual milliseconds.
    pub fn detector_slack_ms(&self, hb_interval_ms: u64) -> u64 {
        self.ops.iter().map(|op| op.detector_slack_ms(hb_interval_ms)).sum()
    }

    /// Serializes the schedule as a JSON value.
    pub fn to_value(&self) -> Value {
        json::obj([("ops", Value::Arr(self.ops.iter().map(|op| op.to_value()).collect()))])
    }

    /// Parses a schedule serialized by [`FaultPlan::to_value`].
    pub fn from_value(v: &Value) -> Option<Self> {
        let ops = v.get("ops")?.as_arr()?;
        Some(FaultPlan { ops: ops.iter().map(FaultOp::from_value).collect::<Option<Vec<_>>>()? })
    }

    /// One-line human description ("crash@40% + tap_drop(skip 5, 3)").
    pub fn describe(&self) -> String {
        if self.ops.is_empty() {
            return "fault-free".to_string();
        }
        let parts: Vec<String> = self
            .ops
            .iter()
            .map(|op| match op {
                FaultOp::CrashPrimary { quantile_pct } => format!("crash@{quantile_pct}%"),
                FaultOp::CrashPrimaryNearFin => "crash@fin".to_string(),
                FaultOp::PausePrimary { at_pct, dur_ms } => {
                    format!("pause@{at_pct}%/{dur_ms}ms")
                }
                FaultOp::TapDrop { skip, count } => format!("tap_drop(skip {skip}, {count})"),
                FaultOp::TapPartition { from_pct, dur_ms } => {
                    format!("tap_partition@{from_pct}%/{dur_ms}ms")
                }
                FaultOp::SideDrop { target, skip, count } => {
                    format!("side_drop@{}(skip {skip}, {count})", target.tag())
                }
                FaultOp::SideDelay { target, delay_ms } => {
                    format!("side_delay@{}({delay_ms}ms)", target.tag())
                }
                FaultOp::SideDuplicate { target, offset_ms } => {
                    format!("side_dup@{}({offset_ms}ms)", target.tag())
                }
            })
            .collect();
        parts.join(" + ")
    }
}

/// Serializes a workload (for artifacts).
pub fn workload_to_value(w: Workload) -> Value {
    match w {
        Workload::Echo { requests } => json::obj([
            ("kind", Value::Str("echo".into())),
            ("requests", json::num(requests as u64)),
        ]),
        Workload::Interactive { requests, reply_size } => json::obj([
            ("kind", Value::Str("interactive".into())),
            ("requests", json::num(requests as u64)),
            ("reply_size", json::num(reply_size as u64)),
        ]),
        Workload::Bulk { file_size } => {
            json::obj([("kind", Value::Str("bulk".into())), ("file_size", json::num(file_size))])
        }
        Workload::Upload { file_size } => {
            json::obj([("kind", Value::Str("upload".into())), ("file_size", json::num(file_size))])
        }
    }
}

/// Parses a workload serialized by [`workload_to_value`].
pub fn workload_from_value(v: &Value) -> Option<Workload> {
    match v.get("kind")?.as_str()? {
        "echo" => Some(Workload::Echo { requests: v.get("requests")?.as_u64()? as usize }),
        "interactive" => Some(Workload::Interactive {
            requests: v.get("requests")?.as_u64()? as usize,
            reply_size: v.get("reply_size")?.as_u64()? as usize,
        }),
        "bulk" => Some(Workload::Bulk { file_size: v.get("file_size")?.as_u64()? }),
        "upload" => Some(Workload::Upload { file_size: v.get("file_size")?.as_u64()? }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_op() -> Vec<FaultOp> {
        vec![
            FaultOp::CrashPrimary { quantile_pct: 40 },
            FaultOp::CrashPrimaryNearFin,
            FaultOp::PausePrimary { at_pct: 30, dur_ms: 400 },
            FaultOp::TapDrop { skip: 5, count: 3 },
            FaultOp::TapPartition { from_pct: 20, dur_ms: 250 },
            FaultOp::SideDrop { target: SideTarget::Backup, skip: 0, count: 2 },
            FaultOp::SideDelay { target: SideTarget::Primary, delay_ms: 60 },
            FaultOp::SideDuplicate { target: SideTarget::Backup, offset_ms: 5 },
        ]
    }

    #[test]
    fn plan_json_roundtrip() {
        let plan = FaultPlan::new(every_op());
        let text = plan.to_value().to_json();
        let back = FaultPlan::from_value(&Value::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(back, plan);
    }

    #[test]
    fn workload_json_roundtrip() {
        for w in [
            Workload::echo(),
            Workload::interactive(),
            Workload::bulk_mb(1),
            Workload::upload_mb(2),
        ] {
            let text = workload_to_value(w).to_json();
            let back = workload_from_value(&Value::parse(&text).unwrap()).unwrap();
            assert_eq!(back, w);
        }
    }

    #[test]
    fn detector_slack_counts_backup_facing_ops_only() {
        let plan = FaultPlan::new([
            FaultOp::SideDrop { target: SideTarget::Backup, skip: 0, count: 2 },
            FaultOp::SideDelay { target: SideTarget::Backup, delay_ms: 60 },
            FaultOp::SideDrop { target: SideTarget::Primary, skip: 0, count: 9 },
            FaultOp::TapDrop { skip: 0, count: 5 },
        ]);
        assert_eq!(plan.detector_slack_ms(50), 2 * 50 + 60);
    }

    #[test]
    fn probe_need_is_derived_from_ops() {
        assert!(!FaultPlan::new([FaultOp::TapDrop { skip: 0, count: 1 }]).needs_probe());
        assert!(FaultPlan::new([FaultOp::CrashPrimary { quantile_pct: 50 }]).needs_probe());
        assert!(FaultPlan::new([FaultOp::CrashPrimaryNearFin]).needs_probe());
    }
}
