//! A minimal JSON value: enough to serialize and parse fault plans and
//! failure artifacts without external dependencies.
//!
//! Numbers are stored as `f64`; every integer the chaos engine needs in
//! numeric position fits in 53 bits (counts, percentages, millisecond
//! durations). Full-range `u64` quantities (seeds, trace digests) are
//! serialized as hex *strings* by the callers to avoid precision loss.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Returns `None` on any syntax error or
    /// trailing garbage.
    pub fn parse(text: &str) -> Option<Value> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.eat_lit("null").map(|()| Value::Null),
            b't' => self.eat_lit("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_lit("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<f64>().ok().filter(|n| n.is_finite()).map(Value::Num)
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Value::Obj(members));
                }
                _ => return None,
            }
        }
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(members: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a number from any integer that fits in 53 bits.
pub fn num(n: u64) -> Value {
    debug_assert!(n <= 9_007_199_254_740_992, "number too large for exact f64");
    Value::Num(n as f64)
}

/// Convenience: a full-range `u64` as a hex string (lossless).
pub fn hex(n: u64) -> Value {
    Value::Str(format!("{n:#018x}"))
}

/// Parses a [`hex`]-encoded `u64`.
pub fn from_hex(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = obj([
            ("name", Value::Str("tap \"drop\"\n".into())),
            ("count", num(3)),
            ("seed", hex(0xDEAD_BEEF_0123_4567)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            ("ops", Value::Arr(vec![num(1), Value::Num(-2.5), Value::Str("αβ".into())])),
        ]);
        let text = v.to_json();
        let back = Value::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(from_hex(back.get("seed").unwrap()), Some(0xDEAD_BEEF_0123_4567));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"\\q\"", "nan"] {
            assert_eq!(Value::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_empties() {
        let v = Value::parse(" { \"a\" : [ ] , \"b\" : { } } ").expect("parses");
        assert_eq!(v.get("a"), Some(&Value::Arr(vec![])));
        assert_eq!(v.get("b"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(num(42).to_json(), "42");
        assert_eq!(Value::Num(2.5).to_json(), "2.5");
    }
}
