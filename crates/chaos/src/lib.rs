//! Deterministic chaos-campaign engine for the ST-TCP reproduction.
//!
//! The paper's evaluation (§6) injects one fault at a time by hand:
//! crash the primary once, drop one tapped segment once. This crate
//! systematizes that into *campaigns* — enumerated fault schedules
//! crossed with workloads and RNG seeds, executed in parallel (each run
//! an independent deterministic [`netsim::Simulator`]), judged by
//! invariant oracles, and, on failure, shrunk to a minimal replayable
//! reproducer.
//!
//! # Pipeline
//!
//! 1. [`plan`] — a [`plan::FaultPlan`] is pure data: crash the primary
//!    at a quantile of the run, drop the n-th tapped segment, delay or
//!    duplicate side-channel datagrams, partition the tap, pause the
//!    primary. Schedules serialize to JSON and back.
//! 2. [`campaign`] — crosses plans × workloads × seeds into a run
//!    matrix and executes it across threads; probe runs (fault-free,
//!    per workload+seed) map schedule percentages onto virtual time.
//! 3. [`run`] — one run: install the plan as crash schedules and
//!    ingress rules, drive the scenario in chunks, sample the oracles,
//!    digest every frame transmission.
//! 4. [`oracle`] — the invariants: client byte-stream integrity,
//!    completion, at-most-one VIP speaker after takeover, shadow/primary
//!    sequence agreement, bounded retention, bounded takeover latency,
//!    no false suspicion, eventual teardown.
//! 5. [`shrink`] — delta-debug a failing schedule to a minimal
//!    reproducer (determinism makes "still fails" exact).
//! 6. [`artifact`] — JSON artifacts carrying seed + schedule + frame
//!    digest; [`artifact::FailureArtifact::replay`] verifies a
//!    reproducer bit-for-bit.
//!
//! The `chaos-hunt` binary drives the stock campaigns from the command
//! line; CI runs its `--smoke` mode on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod cluster;
pub mod json;
pub mod oracle;
pub mod plan;
pub mod run;
pub mod shrink;

pub use artifact::FailureArtifact;
pub use campaign::{
    broken_config_canary, demo_campaign, run_campaign, smoke_campaign, wan_burst_loss_campaign,
    Campaign,
};
pub use cluster::{execute_cluster, ClusterRunReport, ClusterRunSpec};
pub use oracle::{OracleKind, Violation};
pub use plan::{FaultOp, FaultPlan, SideTarget};
pub use run::{
    execute, execute_with_pcap, execute_with_profile, measure_profile, Profile, RunReport, RunSpec,
};
pub use shrink::{shrink, ShrinkResult};
