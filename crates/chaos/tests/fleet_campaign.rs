//! Chaos campaigns over the fleet-scale workload generator.
//!
//! The single-connection campaigns in `engine.rs` stress the protocol
//! state machine; these sweep the *connection-scale* hot path instead —
//! slab socket tables, hash demux, the timer wheel, and the backup's
//! O(active) bookkeeping — by crossing RNG seeds with crash times over
//! mixed-workload fleets. Every run must finish with every client's
//! byte stream intact, crash or no crash, and crashed runs must hand
//! over to the backup. Kept small for debug mode; `conn_scale_*` in the
//! bench crate covers the large populations in release mode.

use netsim::{SimDuration, SimTime};
use sttcp::fleet::{self, FleetSpec};
use sttcp::node::ServerNode;

const CLIENTS: usize = 40;

fn run_fleet(seed: u64, crash_at_ms: Option<u64>) {
    let mut spec = FleetSpec::new(CLIENTS).seed(seed).connect_spread(SimDuration::from_millis(60));
    if let Some(ms) = crash_at_ms {
        spec = spec.crash_primary_at(SimTime::ZERO + SimDuration::from_millis(ms));
    }
    let mut f = fleet::build(&spec);
    assert!(
        f.run_until_done(SimDuration::from_secs(120)),
        "seed {seed} crash {crash_at_ms:?}: fleet stalled at {}/{CLIENTS} done",
        f.done_count()
    );
    assert!(
        f.verified_clean(),
        "seed {seed} crash {crash_at_ms:?}: byte-stream verification failed"
    );
    if crash_at_ms.is_some() {
        // A late crash may land after the last client finished; give the
        // backup its heartbeat-silence window so detection completes.
        f.sim.run_for(SimDuration::from_secs(1));
        let b = f.sim.node_ref::<ServerNode>(f.backup);
        assert!(
            b.backup_engine().unwrap().has_taken_over(),
            "seed {seed} crash {crash_at_ms:?}: backup never took over"
        );
    }
}

#[test]
fn fleet_campaign_seeds_by_crash_times() {
    // Crash times chosen to land in distinct phases of a 60 ms connect
    // spread: mid-stagger (half the fleet still handshaking), just past
    // the stagger, and deep into steady state.
    let seeds = [0xF1EE7u64, 0xC0FFEE, 0xDEAD_BEEF];
    let crashes = [Some(30u64), Some(70), Some(250)];
    for &seed in &seeds {
        for &crash in &crashes {
            run_fleet(seed, crash);
        }
    }
}

#[test]
fn fleet_campaign_fault_free_seeds() {
    for &seed in &[0xF1EE7u64, 0xC0FFEE, 0xDEAD_BEEF] {
        run_fleet(seed, None);
    }
}
