//! End-to-end tests of the chaos engine against the real simulator.
//!
//! Kept deliberately small (debug-mode friendly): a handful of
//! representative runs rather than a full campaign — `chaos-hunt` and
//! the CI `chaos-smoke` job cover the matrices in release mode.

use apps::Workload;
use chaos::{
    broken_config_canary, execute, shrink, FailureArtifact, FaultOp, FaultPlan, OracleKind,
    RunSpec, SideTarget,
};

fn plan(ops: &[FaultOp]) -> FaultPlan {
    FaultPlan { ops: ops.to_vec() }
}

#[test]
fn fault_free_run_is_green() {
    let spec = RunSpec::new(Workload::Echo { requests: 20 }, 1, plan(&[]));
    let report = execute(&spec);
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.takeover_latency.is_none(), "no fault, no takeover");
}

#[test]
fn crash_with_tap_loss_recovers_and_is_green() {
    // Representative hard case: a mid-run crash combined with tap loss.
    let spec = RunSpec::new(
        Workload::Echo { requests: 20 },
        1,
        plan(&[FaultOp::CrashPrimary { quantile_pct: 50 }, FaultOp::TapDrop { skip: 2, count: 2 }]),
    );
    let report = execute(&spec);
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.takeover_latency.is_some(), "a crashed primary must hand over");
}

#[test]
fn synack_only_window_bulk_regression() {
    // Regression for a gap the chaos engine originally found: the tap
    // misses the client's SYN and the primary dies before its first
    // data segment — the tapped SYN/ACK is then the only evidence the
    // connection exists and must trigger the logger bootstrap.
    let spec = RunSpec::new(
        Workload::Bulk { file_size: 64 * 1024 },
        1,
        plan(&[FaultOp::CrashPrimary { quantile_pct: 10 }, FaultOp::TapDrop { skip: 0, count: 1 }]),
    );
    let report = execute(&spec);
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
}

#[test]
fn runs_are_bit_deterministic() {
    let spec = RunSpec::new(
        Workload::Echo { requests: 15 },
        3,
        plan(&[
            FaultOp::CrashPrimary { quantile_pct: 30 },
            FaultOp::SideDelay { target: SideTarget::Backup, delay_ms: 60 },
        ]),
    );
    let a = execute(&spec);
    let b = execute(&spec);
    assert_eq!(a.digest, b.digest, "identical specs must produce identical frame traces");
    assert_eq!(a.virtual_duration, b.virtual_duration);
    assert_eq!(a.takeover_latency, b.takeover_latency);
}

#[test]
fn different_seeds_diverge() {
    let mk = |seed| RunSpec::new(Workload::Echo { requests: 15 }, seed, plan(&[]));
    let a = execute(&mk(1));
    let b = execute(&mk(2));
    assert_ne!(a.digest, b.digest, "seeds must actually vary the trace");
}

#[test]
fn canary_is_caught_shrunk_and_replayable() {
    // The oracle-teeth proof: fencing disabled + paused primary is a
    // split-brain the single-server oracle must catch; the failure must
    // shrink to a non-empty minimal schedule whose artifact replays.
    let spec = broken_config_canary();
    let report = execute(&spec);
    assert!(
        report.violations.iter().any(|v| v.oracle == OracleKind::SingleServer),
        "split brain must be caught: {:?}",
        report.violations
    );

    let result = shrink(&spec, OracleKind::SingleServer, 16).expect("original failure reproduces");
    assert!(!result.minimal.plan.ops.is_empty(), "shrink must not empty the schedule");
    assert!(result.minimal.plan.ops.len() <= spec.plan.ops.len());

    let artifact =
        FailureArtifact::capture(&result.minimal, &result.report, OracleKind::SingleServer);
    let text = artifact.to_json();
    let parsed = FailureArtifact::from_json(&text).expect("artifact round-trips");
    let (reproduced, _) = parsed.replay();
    assert!(reproduced, "minimal artifact must replay bit-exactly");
}

#[test]
fn innocent_side_channel_noise_is_not_flagged() {
    // Side-channel jitter alone must neither violate an oracle nor
    // trigger a spurious takeover (false-suspicion check).
    let spec = RunSpec::new(
        Workload::Echo { requests: 20 },
        1,
        plan(&[FaultOp::SideDuplicate { target: SideTarget::Backup, offset_ms: 5 }]),
    );
    let report = execute(&spec);
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.takeover_latency.is_none(), "no takeover without a real fault");
}
