//! Cascading-failure campaign over the N-backup replication chain.
//!
//! Each run kills the primary mid-workload, then kills the freshly
//! promoted rank-1 backup *mid-takeover* (inside its successor's
//! detection stagger), leaving rank 2 of a 3-backup chain to serve.
//! Every run must keep all eight invariant oracles green, with every
//! one of the 40 clients' byte streams intact, and the surviving rank
//! must converge on the epoch-by-rank topology (epoch 2) regardless of
//! the path the cascade took.
//!
//! On failure, the run's replayable JSON artifact (seed + schedule +
//! frame digest) lands in `target/chaos-artifacts/` before the panic,
//! mirroring the single-connection campaign's artifact discipline.

use chaos::cluster::{execute_cluster, ClusterRunSpec};

const CLIENTS: usize = 40;
const BACKUPS: usize = 3;

fn run_cascade(seed: u64, first_crash_ms: u64, second_crash_ms: u64) {
    let spec = ClusterRunSpec::new(CLIENTS, BACKUPS, seed)
        .crash(0, first_crash_ms)
        .crash(1, second_crash_ms);
    let report = execute_cluster(&spec);
    if !report.passed() {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("chaos-artifacts");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("cascade-{seed:x}-{first_crash_ms}-{second_crash_ms}.json"));
        std::fs::write(&path, report.artifact(&spec)).ok();
        panic!(
            "seed {seed:#x} cascade ({first_crash_ms}ms, {second_crash_ms}ms): \
             {} violations (artifact: {}):\n{}",
            report.violations.len(),
            path.display(),
            report.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
    assert_eq!(
        report.final_epoch, 2,
        "seed {seed:#x}: the survivor must serve under the epoch-by-rank epoch"
    );
}

#[test]
fn cascade_campaign_three_seeds() {
    // First crash lands mid-connect-spread (half the fleet still
    // handshaking); the second lands ~160 ms later — right at rank 1's
    // 150 ms detection deadline, i.e. mid-takeover.
    for &seed in &[0xF1EE7u64, 0xC0FFEE, 0xDEAD_BEEF] {
        run_cascade(seed, 120, 280);
    }
}

#[test]
fn cascade_campaign_is_deterministic() {
    let spec = ClusterRunSpec::new(CLIENTS, BACKUPS, 0xF1EE7).crash(0, 120).crash(1, 280);
    let a = execute_cluster(&spec);
    let b = execute_cluster(&spec);
    assert_eq!(a.digest, b.digest, "same spec ⇒ bit-identical frame schedule");
    assert_eq!(a.final_epoch, b.final_epoch);
}

#[test]
fn fault_free_chain_promotes_nobody() {
    let spec = ClusterRunSpec::new(12, BACKUPS, 0xC0FFEE);
    let report = execute_cluster(&spec);
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.final_epoch, 0);
    assert!(report.final_takeover_at.is_none());
}
