//! cwnd vs heartbeat: which dominates recovery on a WAN failover?
//!
//! On the paper's LAN the answer is always the detection window
//! (`hb_interval × missed_hb_threshold`): the congestion window rebuilds
//! in a few sub-millisecond RTTs, so nobody mirrors it. On
//! `wan_high_bdp` (80 ms RTT, ≈500 KB BDP) a promoted backup that
//! cold-starts from the initial window spends *seconds* growing back to
//! the operating point — at short heartbeat intervals the window
//! rebuild, not detection, is the real takeover cost, which is what
//! [`SttcpConfig::cong_sync`] exists to remove.
//!
//! This example sweeps heartbeat interval × congestion-mirror on/off on
//! a 5 MB bulk transfer crashed at 2.5 s and prints the detection
//! window next to the client-observed completion time. Deterministic:
//! same numbers every run.

use apps::Workload;
use netsim::{LinkProfile, SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::SttcpConfig;
use tcpstack::CongestionAlgo;

struct Outcome {
    detection_ms: f64,
    first_byte_ms: f64,
    completion_s: f64,
}

fn run(hb: SimDuration, cong_sync: bool) -> Outcome {
    let mut cfg = SttcpConfig::new(addrs::VIP, 80).with_hb_interval(hb);
    if cong_sync {
        cfg = cfg.with_cong_sync();
    }
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(5))
        .link_profile(LinkProfile::WanHighBdp)
        .congestion(CongestionAlgo::Cubic)
        .with_sack()
        .st_tcp(cfg)
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(2500)))
        .recording();
    spec.tcp.recv_buf = 2 << 20;
    spec.tcp.send_buf = 4 << 20;
    spec.tcp.window_scale = Some(6);
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(300))).expect_completed();
    assert!(m.verified_clean());
    let bd = s.takeover_breakdown().expect("crashed run takes over");
    Outcome {
        detection_ms: bd.detection_ns() as f64 / 1e6,
        first_byte_ms: bd.first_byte_latency_ns().unwrap_or(0) as f64 / 1e6,
        completion_s: m.total_time().unwrap().as_secs_f64(),
    }
}

fn main() {
    println!(
        "wan_high_bdp, 5 MB bulk, CUBIC+SACK, primary crashed at 2.5 s \
         (detection threshold 3 missed heartbeats)\n"
    );
    println!(
        "{:>8}  {:>13}  {:>11}  {:>16}  {:>16}",
        "hb (ms)", "detect (ms)", "sync", "first byte (ms)", "completion (s)"
    );
    for hb_ms in [50u64, 200, 1000] {
        for cong_sync in [false, true] {
            let o = run(SimDuration::from_millis(hb_ms), cong_sync);
            println!(
                "{:>8}  {:>13.1}  {:>11}  {:>16.1}  {:>16.2}",
                hb_ms,
                o.detection_ms,
                if cong_sync { "cwnd mirror" } else { "cold start" },
                o.first_byte_ms,
                o.completion_s,
            );
        }
    }
    println!(
        "\nReading: below the crossover the completion gap between the two rows\n\
         at the same heartbeat interval is the window-rebuild tax — detection\n\
         is cheap, the mirrored cwnd pays for itself. Once the heartbeat\n\
         interval dominates (the paper's regime, scaled up), the rows converge:\n\
         no congestion state is worth mirroring if detection costs seconds."
    );
}
