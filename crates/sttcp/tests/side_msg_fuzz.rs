//! Adversarial decode coverage for the side-channel protocol.
//!
//! The chaos engine duplicates, delays, and truncates side-channel UDP
//! datagrams, so `SideMsg::decode` must be total: for *any* input it
//! returns `Some`/`None`, never panics. This file complements the
//! randomized properties in `messages_proptest.rs` with exhaustive
//! checks — truncation at **every** byte offset of every variant, every
//! possible tag byte, and seeded random-byte fuzz.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use sttcp::{ConnKey, SideMsg};

fn sample_key() -> ConnKey {
    ConnKey {
        client_ip: Ipv4Addr::new(10, 0, 0, 1),
        client_port: 49152,
        server_ip: Ipv4Addr::new(10, 0, 0, 100),
        server_port: 80,
    }
}

/// One canonical message per wire variant.
fn sample_msgs() -> Vec<SideMsg> {
    vec![
        SideMsg::Heartbeat { seq: 0xDEAD_BEEF_0123_4567 },
        SideMsg::BackupAck { conn: sample_key(), acked_next: 0x8000_0001 },
        SideMsg::MissingReq { conn: sample_key(), from: 42, len: 2920 },
        SideMsg::MissingData {
            conn: sample_key(),
            seq: 0xFFFF_FFFF,
            data: Bytes::from(vec![0xA5; 1460]),
        },
        SideMsg::MissingNack { conn: sample_key(), from: 7 },
    ]
}

#[test]
fn truncation_at_every_byte_offset_never_panics() {
    for msg in sample_msgs() {
        let full = msg.encode();
        for cut in 0..=full.len() {
            let decoded = SideMsg::decode(full.slice(..cut));
            if cut == full.len() {
                assert_eq!(decoded, Some(msg.clone()), "full frame must decode");
            } else {
                // A strict prefix must never decode to a *different*
                // message than intended (MissingData's length prefix
                // makes even same-variant reinterpretation invalid).
                assert_ne!(
                    decoded.as_ref(),
                    Some(&msg),
                    "truncated-to-{cut} frame decoded as the full message"
                );
            }
        }
    }
}

#[test]
fn every_tag_byte_with_arbitrary_body_never_panics() {
    // Sweep all 256 tag values over a body long enough to satisfy any
    // variant's fixed-size fields, plus an empty body.
    let body: Vec<u8> = (0u16..64).map(|i| i as u8).collect();
    for tag in 0u8..=255 {
        let mut raw = vec![tag];
        raw.extend_from_slice(&body);
        let _ = SideMsg::decode(Bytes::from(raw));
        let _ = SideMsg::decode(Bytes::from(vec![tag]));
    }
    let _ = SideMsg::decode(Bytes::new());
}

proptest! {
    #[test]
    fn random_byte_soup_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = SideMsg::decode(Bytes::from(raw));
    }

    #[test]
    fn bit_flips_at_every_offset_never_panic(msg_idx in 0usize..5, flip in 1u8..=255) {
        let msg = sample_msgs().swap_remove(msg_idx);
        let base = msg.encode().to_vec();
        for pos in 0..base.len() {
            let mut raw = base.clone();
            raw[pos] ^= flip;
            let _ = SideMsg::decode(Bytes::from(raw));
        }
    }
}
