//! Counting-allocator proof that the backup engine's per-tick
//! bookkeeping is allocation-free.
//!
//! Before the O(active) refactor, `maybe_send_acks` and the
//! missing-request retry scan each collected a fresh `Vec<ConnKey>` of
//! every tracked connection on every tick — an allocation (and a full
//! scan) that grew with connection count. The engine now keeps a
//! pending set fed by [`BackupEngine::note_activity`] and swaps it with
//! a reusable scratch buffer, and retries pop from a timer wheel. This
//! test drives the steady-state activity → ack-scan cycle over
//! hundreds of tracked connections and asserts the measurement window
//! performs ZERO heap allocations.
//!
//! This file holds exactly one test: the counter is process-global,
//! and a concurrently running neighbour test would pollute it.

use netsim::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use sttcp::{BackupEngine, ConnKey, SttcpConfig};
use tcpstack::{NetStack, SeqNum, StackConfig};
use wire::MacAddr;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const BACKUP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

#[test]
fn backup_ack_scan_steady_state_allocates_nothing() {
    let cfg = SttcpConfig::new(VIP, 80);
    let mut engine = BackupEngine::new(cfg, 8 * 1024, SimTime::ZERO);
    let mut stack = NetStack::new(StackConfig::host(MacAddr::local(3), BACKUP_IP));

    // A fleet-sized population of tracked connections.
    let keys: Vec<ConnKey> = (0..512u32)
        .map(|i| ConnKey {
            client_ip: Ipv4Addr::new(10, 1, (i / 200) as u8, (i % 200) as u8 + 1),
            client_port: 20_000 + (i % 20_000) as u16,
            server_ip: VIP,
            server_port: 80,
        })
        .collect();
    for &k in &keys {
        engine.register_conn(k, SeqNum(1));
    }

    // One cycle: every connection reports activity, then the ack scan
    // visits exactly the pending set. (No shadow TCBs exist in this
    // stack, so no acks are emitted — the point is the bookkeeping
    // around the scan, which used to allocate per call.)
    let cycle = |engine: &mut BackupEngine, stack: &mut NetStack| {
        for &k in &keys {
            engine.note_activity(k);
        }
        engine.maybe_send_acks(stack, false);
    };

    // Warm-up: let the pending/scratch buffers reach high water.
    for _ in 0..50 {
        cycle(&mut engine, &mut stack);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let rounds = 500;
    for _ in 0..rounds {
        cycle(&mut engine, &mut stack);
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(
        allocs,
        0,
        "backup per-tick ack scan must not allocate: {allocs} allocations \
         over {rounds} rounds x {} connections",
        keys.len()
    );
}
