//! Upload-direction tests: large client→server transfers are what load
//! the primary's retention buffer (§4.2) and the backup ack strategy
//! (§4.3). Exactly-once delivery must hold at the *server application*
//! across a failover — the backup's app, fed purely by the tap and the
//! recovery machinery, must consume the identical stream.

use apps::{UploadServer, Workload};
use netsim::{DropRule, SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::{ServerNode, SttcpConfig};

fn st_cfg() -> SttcpConfig {
    SttcpConfig::new(addrs::VIP, 80)
}

#[test]
fn upload_failure_free_and_servers_agree() {
    let spec = ScenarioSpec::new(Workload::upload_mb(2)).st_tcp(st_cfg());
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed();
    assert!(m.verified_clean(), "confirmation must verify");
    // Both server applications consumed and verified the whole upload.
    for id in [s.primary, s.backup.unwrap()] {
        let node = s.sim.node_ref::<ServerNode>(id);
        let sock = node.accepted[0];
        let app = node.app::<UploadServer>(sock).expect("upload server app");
        assert_eq!(app.received(), 2 << 20, "{}", s.sim.node_name(id));
        assert_eq!(app.content_errors, 0, "{}", s.sim.node_name(id));
    }
    // The upload volume forced threshold-triggered backup acks.
    let eng = s.backup().unwrap();
    assert!(
        eng.stats.acks_threshold_triggered > 0,
        "2 MB of client data must trip the X-byte ack rule"
    );
}

#[test]
fn upload_throughput_and_the_x_threshold_tradeoff() {
    // §4.2/§4.3 in action. With the paper's default X = ¾ of the second
    // buffer, the retained bytes peak near X plus one side-channel RTT
    // of data — at LAN bandwidth-delay that transiently spills past the
    // second buffer and shaves the advertised window (mild throttle).
    // A smaller X keeps retention under the buffer and restores full
    // download-equal throughput, at the price of more frequent acks.
    let down = {
        let spec = ScenarioSpec::new(Workload::bulk_mb(2)).st_tcp(st_cfg());
        build(&spec)
            .run(RunLimits::time(SimDuration::from_secs(60)))
            .expect_completed()
            .total_time()
            .unwrap()
    };
    let up_default = {
        let spec = ScenarioSpec::new(Workload::upload_mb(2)).st_tcp(st_cfg());
        build(&spec)
            .run(RunLimits::time(SimDuration::from_secs(60)))
            .expect_completed()
            .total_time()
            .unwrap()
    };
    let up_small_x = {
        let mut cfg = st_cfg();
        cfg.ack_threshold = Some(4096);
        let spec = ScenarioSpec::new(Workload::upload_mb(2)).st_tcp(cfg);
        build(&spec)
            .run(RunLimits::time(SimDuration::from_secs(60)))
            .expect_completed()
            .total_time()
            .unwrap()
    };
    let ratio_default = up_default.as_secs_f64() / down.as_secs_f64();
    let ratio_small = up_small_x.as_secs_f64() / down.as_secs_f64();
    assert!(
        (1.0..1.3).contains(&ratio_default),
        "default X mildly throttles the upload: ratio {ratio_default:.3}"
    );
    assert!(
        (0.9..1.08).contains(&ratio_small),
        "small X must restore download-equal throughput: ratio {ratio_small:.3}"
    );
    assert!(ratio_small < ratio_default, "smaller X must be at least as fast");
}

#[test]
fn upload_failover_server_side_exactly_once() {
    let crash = SimTime::ZERO + SimDuration::from_millis(600);
    let spec = ScenarioSpec::new(Workload::upload_mb(2))
        .st_tcp(st_cfg())
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(120))).expect_completed();
    assert!(m.verified_clean());
    let backup_id = s.backup.unwrap();
    let node = s.sim.node_ref::<ServerNode>(backup_id);
    let app = node.app::<UploadServer>(node.accepted[0]).unwrap();
    assert_eq!(app.received(), 2 << 20, "backup app must see every byte exactly once");
    assert_eq!(app.content_errors, 0, "backup app stream must be bit-identical");
    assert!(node.backup_engine().unwrap().has_taken_over());
}

#[test]
fn upload_failover_with_tap_loss_and_logger() {
    // Omissions on a loaded upload stream + crash: recovery must stitch
    // the backup's stream from side channel (pre-crash) and logger
    // (post-crash) without duplicating a single byte.
    let crash = SimTime::ZERO + SimDuration::from_millis(700);
    let mut cfg = st_cfg().with_logger();
    cfg.missing_req_chunk = 8 * 1024;
    let mut spec = ScenarioSpec::new(Workload::upload_mb(1))
        .st_tcp(cfg)
        .faults(FaultSpec::crash_primary_at(crash));
    spec.with_logger = true;
    let mut s = build(&spec);
    let backup = s.backup.unwrap();
    s.sim.add_ingress_drop(
        backup,
        DropRule::rate(0.15, |frame: &bytes::Bytes| {
            use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};
            (|| {
                let eth = EthernetFrame::parse(frame.clone()).ok()?;
                if eth.ethertype != EtherType::Ipv4 {
                    return None;
                }
                let ip = Ipv4Packet::parse(eth.payload).ok()?;
                Some(ip.protocol == IpProtocol::Tcp)
            })()
            .unwrap_or(false)
        }),
    );
    let m = s.run(RunLimits::time(SimDuration::from_secs(120))).expect_completed();
    assert!(m.verified_clean());
    let node = s.sim.node_ref::<ServerNode>(backup);
    let app = node.app::<UploadServer>(node.accepted[0]).unwrap();
    assert_eq!(app.received(), 1 << 20);
    assert_eq!(app.content_errors, 0);
    let eng = node.backup_engine().unwrap();
    assert!(eng.stats.missing_bytes_recovered > 0, "side channel must have recovered bytes");
}

#[test]
fn slow_backup_acks_shrink_the_window_but_nothing_breaks() {
    // §4.2: "The behavior of ST-TCP will differ from that of standard
    // TCP if the second buffer fills up." Force that: SyncTime of 2 s,
    // X larger than the whole buffer — the backup acks only on the slow
    // timer, the retention spill shrinks the advertised window, and the
    // upload completes anyway (slower).
    // SyncTime is coupled to the heartbeat interval (the paper uses the
    // acks AS heartbeats), so starving the acks means slowing the whole
    // side channel — otherwise the primary would declare the quiet
    // backup dead after 3 missed heartbeats and rightly disable
    // retention (non-fault-tolerant mode).
    let mut cfg = st_cfg().with_hb_interval(SimDuration::from_secs(2));
    cfg.ack_threshold = Some(usize::MAX);
    let spec = ScenarioSpec::new(Workload::upload_mb(1)).st_tcp(cfg);
    let mut slow = build(&spec);
    let slow_time = slow
        .run(RunLimits::time(SimDuration::from_secs(300)))
        .expect_completed()
        .total_time()
        .unwrap();

    let fast_spec = ScenarioSpec::new(Workload::upload_mb(1)).st_tcp(st_cfg());
    let fast_time = build(&fast_spec)
        .run(RunLimits::time(SimDuration::from_secs(60)))
        .expect_completed()
        .total_time()
        .unwrap();
    assert!(
        slow_time > fast_time.saturating_mul(2),
        "starved backup acks must throttle the upload: slow={slow_time} fast={fast_time}"
    );
    // And the server apps still verified the stream.
    let node = slow.sim.node_ref::<ServerNode>(slow.primary);
    let app = node.app::<UploadServer>(node.accepted[0]).unwrap();
    assert_eq!(app.content_errors, 0);
    assert_eq!(app.received(), 1 << 20);
}
