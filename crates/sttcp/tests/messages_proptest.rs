//! Property tests for the side-channel wire protocol: every message
//! round-trips, and arbitrary bytes never panic the decoder (the UDP
//! channel is untrusted input like any other network surface).

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use sttcp::{ConnKey, SideMsg};

fn arb_key() -> impl Strategy<Value = ConnKey> {
    (any::<[u8; 4]>(), any::<u16>(), any::<[u8; 4]>(), any::<u16>()).prop_map(
        |(cip, cport, sip, sport)| ConnKey {
            client_ip: Ipv4Addr::from(cip),
            client_port: cport,
            server_ip: Ipv4Addr::from(sip),
            server_port: sport,
        },
    )
}

fn arb_msg() -> impl Strategy<Value = SideMsg> {
    prop_oneof![
        any::<u64>().prop_map(|seq| SideMsg::Heartbeat { seq }),
        (arb_key(), any::<u32>())
            .prop_map(|(conn, acked_next)| SideMsg::BackupAck { conn, acked_next }),
        (arb_key(), any::<u32>(), any::<u32>()).prop_map(|(conn, from, len)| SideMsg::MissingReq {
            conn,
            from,
            len
        }),
        (arb_key(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..1200)).prop_map(
            |(conn, seq, data)| SideMsg::MissingData { conn, seq, data: Bytes::from(data) }
        ),
        (arb_key(), any::<u32>()).prop_map(|(conn, from)| SideMsg::MissingNack { conn, from }),
        (arb_key(), any::<u32>(), any::<u32>())
            .prop_map(|(conn, cwnd, ssthresh)| SideMsg::CongSync { conn, cwnd, ssthresh }),
    ]
}

proptest! {
    #[test]
    fn roundtrip(msg in arb_msg()) {
        prop_assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
    }

    #[test]
    fn decode_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SideMsg::decode(Bytes::from(raw));
    }

    #[test]
    fn truncation_never_panics(msg in arb_msg(), cut_frac in 0.0f64..1.0) {
        let full = msg.encode();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let _ = SideMsg::decode(full.slice(..cut));
    }

    #[test]
    fn single_byte_corruption_never_misroutes_to_panic(
        msg in arb_msg(), pos_frac in 0.0f64..1.0, flip in 1u8..=255,
    ) {
        let mut raw = msg.encode().to_vec();
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= flip;
        // May decode to a different (valid) message or None — both fine;
        // the engines treat the channel as best-effort. It must not panic.
        let _ = SideMsg::decode(Bytes::from(raw));
    }
}
