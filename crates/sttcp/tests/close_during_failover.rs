//! Connection-teardown choreography interacting with the tap and with
//! failovers: the trickiest window is a FIN in flight when the primary
//! dies. The shadow tracks the client's FIN like any other
//! sequence-space event, so the close must complete against the backup.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::{ClientNode, ServerNode, SttcpConfig};
use tcpstack::TcpState;

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

fn closing_spec() -> ScenarioSpec {
    ScenarioSpec::new(Workload::Echo { requests: 30 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .closing()
}

#[test]
fn orderly_close_shadows_cleanly() {
    // Failure-free: the client closes after its last response. The
    // primary answers the FIN; the backup shadows the whole teardown
    // with its own (suppressed) copy.
    let mut s = build(&closing_spec());
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean());
    // Give the FIN exchange time to complete.
    s.sim.run_for(secs(2.0));
    let sock = s.sim.node_ref::<ClientNode>(s.client).sock().unwrap();
    let state = s.sim.node_ref::<ClientNode>(s.client).stack().state(sock);
    assert!(
        matches!(state, Some(TcpState::TimeWait) | Some(TcpState::Closed)),
        "client close must complete: {state:?}"
    );
    for id in [s.primary, s.backup.unwrap()] {
        let node = s.sim.node_ref::<ServerNode>(id);
        let tcb = node.stack().tcb(node.accepted[0]);
        // The echo app closes back on peer-close; the server side ends
        // in Closed (or its TCB was already reaped from the quad map).
        if let Some(tcb) = tcb {
            assert!(
                tcb.peer_closed() || tcb.state() == TcpState::Closed,
                "{}: FIN must be consumed, state={:?}",
                s.sim.node_name(id),
                tcb.state()
            );
        }
    }
}

#[test]
fn close_races_the_crash() {
    // Crash the primary around the instant the client's FIN goes out.
    // Whatever the interleaving, the teardown must complete against the
    // backup with no RST and no corruption.
    let total = {
        let mut s = build(&closing_spec());
        s.run(RunLimits::time(secs(30.0))).expect_completed().total_time().unwrap().as_secs_f64()
    };
    for crash_offset in [-0.02f64, -0.005, 0.0, 0.005, 0.02] {
        let crash_at = (total + crash_offset).max(0.05);
        let spec =
            closing_spec().faults(FaultSpec::crash_primary_at(SimTime::ZERO + secs(crash_at)));
        let mut s = build(&spec);
        let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
        assert!(m.verified_clean(), "crash_offset={crash_offset}");
        let sock = s.sim.node_ref::<ClientNode>(s.client).sock().unwrap();
        let deadline = s.sim.now() + secs(30.0);
        let mut final_state = None;
        while s.sim.now() < deadline {
            s.sim.run_for(secs(0.1));
            let state = s.sim.node_ref::<ClientNode>(s.client).stack().state(sock);
            final_state = state;
            if matches!(state, Some(TcpState::TimeWait) | Some(TcpState::Closed)) {
                break;
            }
        }
        assert!(
            matches!(final_state, Some(TcpState::TimeWait) | Some(TcpState::Closed)),
            "close must complete across the failover (crash_offset={crash_offset}, state={final_state:?})"
        );
    }
}

#[test]
fn bulk_with_close_after_transfer_survives_mid_stream_crash() {
    // A full download, a crash in the middle, then the client closes:
    // the complete lifecycle against two different servers.
    let spec = ScenarioSpec::new(Workload::bulk_mb(1))
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .closing()
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + secs(0.3)));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 1 << 20);
    let sock = s.sim.node_ref::<ClientNode>(s.client).sock().unwrap();
    let deadline = s.sim.now() + secs(30.0);
    loop {
        s.sim.run_for(secs(0.1));
        let state = s.sim.node_ref::<ClientNode>(s.client).stack().state(sock);
        if matches!(state, Some(TcpState::TimeWait) | Some(TcpState::Closed)) {
            break;
        }
        assert!(s.sim.now() < deadline, "teardown did not finish, state={state:?}");
    }
}
