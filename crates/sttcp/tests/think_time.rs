//! Interactive with server think time — the knob that reconciles the
//! one Table 1 deviation (our 1.13 s vs the paper's 2.00 s): the
//! paper's 20 ms/exchange implies ≈9 ms of server-side work per
//! request that its text does not model.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::SttcpConfig;

#[test]
fn think_time_reproduces_the_papers_interactive_total() {
    let mut spec =
        ScenarioSpec::new(Workload::interactive()).st_tcp(SttcpConfig::new(addrs::VIP, 80));
    spec.interactive_think = SimDuration::from_millis(9);
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(30))).expect_completed();
    assert!(m.verified_clean());
    let total = m.total_time().unwrap().as_secs_f64();
    // Paper Table 1: 2.000 s.
    assert!(
        (1.85..2.15).contains(&total),
        "9 ms think time should land at the paper's 2.0 s: got {total}"
    );
}

#[test]
fn think_time_is_replicated_deterministically_across_failover() {
    // Both servers compute for the same 9 ms per request, so a crash in
    // the middle still yields a byte-exact stream.
    let mut spec = ScenarioSpec::new(Workload::interactive())
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(900)));
    spec.interactive_think = SimDuration::from_millis(9);
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 100 * 10 * 1024);
    assert!(s.backup().unwrap().has_taken_over());
}
