//! Frame-trace determinism regression tests.
//!
//! The zero-copy frame hot path (single-pass `FrameBuilder`, deferred
//! payload staging, recycled simulator contexts) reuses buffers
//! aggressively. None of that reuse may change a single bit on the
//! wire: two runs of the same seeded scenario must transmit byte-for-
//! byte identical frames at identical times. A probe hashes every
//! frame accepted for transmission, so any divergence — reordering, a
//! stale byte from a recycled buffer, a checksum mismatch between the
//! builder and the layered encoders — changes the digest.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use sttcp::fleet::{self, FleetSpec};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::SttcpConfig;

/// FNV-1a over every probe observation: departure time, link, both
/// endpoints, and the full frame bytes.
#[derive(Default)]
struct TraceDigest {
    hash: u64,
    frames: u64,
    bytes: u64,
}

impl TraceDigest {
    fn new() -> Self {
        TraceDigest { hash: 0xcbf2_9ce4_8422_2325, frames: 0, bytes: 0 }
    }

    fn mix(&mut self, v: u64) {
        self.hash ^= v;
        self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn observe(&mut self, ev: &netsim::ProbeEvent<'_>) {
        self.mix(ev.time.as_nanos());
        self.mix(ev.link.0 as u64);
        self.mix(ev.from.0 as u64);
        self.mix(ev.to.0 as u64);
        self.mix(ev.frame.len() as u64);
        for &b in ev.frame.iter() {
            self.mix(u64::from(b));
        }
        self.frames += 1;
        self.bytes += ev.frame.len() as u64;
    }
}

/// One seeded ST-TCP bulk run with a mid-transfer primary crash,
/// digesting every transmitted frame. Returns (digest, frame count,
/// wire bytes, events processed, client bytes received).
fn digest_failover_run() -> (u64, u64, u64, u64, u64) {
    let spec = ScenarioSpec::new(Workload::Bulk { file_size: 2 << 20 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(300)));
    let mut s = build(&spec);
    let digest = Rc::new(RefCell::new(TraceDigest::new()));
    let sink = Rc::clone(&digest);
    s.sim.set_probe(move |ev| sink.borrow_mut().observe(&ev));
    let m = s.run(RunLimits::time(SimDuration::from_secs(120))).expect_completed();
    assert!(m.verified_clean(), "failover run must deliver the stream intact");
    assert!(s.backup().unwrap().has_taken_over(), "the crash must trigger a takeover");
    let d = digest.borrow();
    let events = s.sim.trace().events_processed;
    (d.hash, d.frames, d.bytes, events, m.bytes_received)
}

#[test]
fn failover_frame_traces_are_bit_identical() {
    let a = digest_failover_run();
    let b = digest_failover_run();
    assert!(a.1 > 1000, "a 2 MB failover run must transmit many frames, saw {}", a.1);
    assert_eq!(a, b, "two identically-seeded runs must produce bit-identical frame traces");
}

#[test]
fn fleet_failover_frame_traces_are_bit_identical() {
    // The multi-connection pin for the slab/demux/timer-wheel hot
    // path: 80 mixed-workload clients, a mid-stagger primary crash,
    // every frame digested. Hash-demux iteration never reaches the
    // wire (slab order, poll-queue touch order, and wheel slot order
    // are all deterministic), so two runs must agree bit-for-bit.
    let run = || {
        let spec = FleetSpec::new(80)
            .connect_spread(SimDuration::from_millis(80))
            .crash_primary_at(SimTime::ZERO + SimDuration::from_millis(140));
        let mut f = fleet::build(&spec);
        let digest = Rc::new(RefCell::new(TraceDigest::new()));
        let sink = Rc::clone(&digest);
        f.sim.set_probe(move |ev| sink.borrow_mut().observe(&ev));
        assert!(f.run_until_done(SimDuration::from_secs(120)), "fleet must finish");
        assert!(f.verified_clean(), "every client stream intact across failover");
        let d = digest.borrow();
        (d.hash, d.frames, d.bytes, f.sim.trace().events_processed)
    };
    let a = run();
    let b = run();
    assert!(a.1 > 2000, "an 80-client failover fleet transmits many frames, saw {}", a.1);
    assert_eq!(a, b, "fleet traces must be bit-identical across runs");
}

#[test]
fn echo_frame_traces_are_bit_identical() {
    let run = || {
        let spec = ScenarioSpec::new(Workload::Echo { requests: 50 })
            .st_tcp(SttcpConfig::new(addrs::VIP, 80));
        let mut s = build(&spec);
        let digest = Rc::new(RefCell::new(TraceDigest::new()));
        let sink = Rc::clone(&digest);
        s.sim.set_probe(move |ev| sink.borrow_mut().observe(&ev));
        let m = s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed();
        assert!(m.verified_clean());
        let d = digest.borrow();
        (d.hash, d.frames, d.bytes)
    };
    assert_eq!(run(), run(), "failure-free traces must be bit-identical");
}
