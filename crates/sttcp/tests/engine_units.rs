//! Focused engine-level tests exercising paths the end-to-end scenarios
//! cross only incidentally: missing-data chunking, request retry,
//! retention release ordering, and takeover idempotence.

use bytes::Bytes;
use netsim::{SimDuration, SimTime};
use std::net::Ipv4Addr;
use sttcp::{BackupEngine, ConnKey, PrimaryEngine, SideMsg, SttcpConfig};
use tcpstack::{NetStack, SeqNum, StackConfig, TcpConfig};
use wire::{MacAddr, TcpFlags, TcpSegment};

const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

fn cfg() -> SttcpConfig {
    SttcpConfig::new(VIP, 80)
}

fn key() -> ConnKey {
    ConnKey { client_ip: CLIENT, client_port: 40000, server_ip: VIP, server_port: 80 }
}

/// A primary stack with one established service connection carrying
/// `payload` already received from the client (and read by the "app" so
/// it lives in the retention buffer).
fn primary_with_data(payload: &[u8]) -> (NetStack, SeqNum) {
    let mut scfg = StackConfig::host(MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 2));
    scfg.extra_ips = vec![VIP];
    scfg.learn_from_ip = true; // client MAC learned from the frames below
    scfg.tcp = TcpConfig::st_tcp_primary();
    let mut stack = NetStack::new(scfg);
    stack.listen(80);
    let now = SimTime::ZERO;
    // Hand-deliver a SYN then data.
    let client_iss = 5000u32;
    let mut syn = TcpSegment::bare(40000, 80, client_iss, 0, TcpFlags::SYN, 17520);
    syn.options = vec![wire::TcpOption::Mss(1460)];
    deliver(&mut stack, now, &syn);
    let synack = stack.poll(now);
    assert_eq!(synack.len(), 1);
    let tcb_iss = parse_tcp(&synack[0]).seq;
    let mut ack =
        TcpSegment::bare(40000, 80, client_iss + 1, tcb_iss.wrapping_add(1), TcpFlags::ACK, 17520);
    ack.payload = Bytes::copy_from_slice(payload);
    deliver(&mut stack, now, &ack);
    let sock = stack.accept(80).expect("established");
    // The app reads everything: bytes move to the retention buffer.
    let mut buf = vec![0u8; payload.len()];
    assert_eq!(stack.read(sock, &mut buf).unwrap(), payload.len());
    (stack, SeqNum(client_iss + 1))
}

fn deliver(stack: &mut NetStack, now: SimTime, seg: &TcpSegment) {
    use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};
    let ip = Ipv4Packet::new(CLIENT, VIP, IpProtocol::Tcp, seg.encode(CLIENT, VIP));
    let eth =
        EthernetFrame::new(MacAddr::local(2), MacAddr::local(1), EtherType::Ipv4, ip.encode());
    stack.handle_frame(now, eth.encode());
}

fn parse_tcp(frame: &Bytes) -> TcpSegment {
    use wire::{EthernetFrame, Ipv4Packet};
    let eth = EthernetFrame::parse(frame.clone()).unwrap();
    let ip = Ipv4Packet::parse(eth.payload).unwrap();
    TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst).unwrap()
}

#[test]
fn primary_serves_missing_range_in_chunks() {
    // 3000 retained bytes; SIDE_CHUNK is 1024 so a full-range request
    // yields ceil(3000/1024) = 3 MissingData messages with contiguous
    // coverage and no overlap.
    let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    let (mut stack, data_start) = primary_with_data(&payload);
    let mut engine = PrimaryEngine::new(cfg(), SimTime::ZERO);
    engine.on_side_msg(
        SimTime::ZERO,
        SideMsg::MissingReq { conn: key(), from: data_start.raw(), len: 3000 },
        &mut stack,
    );
    let out = engine.take_outbox();
    let chunks: Vec<(u32, Vec<u8>)> = out
        .iter()
        .filter_map(|m| match m {
            SideMsg::MissingData { seq, data, .. } => Some((*seq, data.to_vec())),
            _ => None,
        })
        .collect();
    assert_eq!(chunks.len(), 3);
    let mut reassembled = Vec::new();
    let mut expect = data_start.raw();
    for (seq, data) in &chunks {
        assert_eq!(*seq, expect, "chunks must be contiguous");
        expect = expect.wrapping_add(data.len() as u32);
        reassembled.extend_from_slice(data);
    }
    assert_eq!(reassembled, payload);
    assert_eq!(engine.stats.missing_served, 1);
}

#[test]
fn primary_clamps_overlong_requests_to_what_it_holds() {
    let payload = vec![7u8; 500];
    let (mut stack, data_start) = primary_with_data(&payload);
    let mut engine = PrimaryEngine::new(cfg(), SimTime::ZERO);
    engine.on_side_msg(
        SimTime::ZERO,
        SideMsg::MissingReq { conn: key(), from: data_start.raw(), len: 1_000_000 },
        &mut stack,
    );
    let out = engine.take_outbox();
    let total: usize = out
        .iter()
        .map(|m| match m {
            SideMsg::MissingData { data, .. } => data.len(),
            _ => 0,
        })
        .sum();
    assert_eq!(total, 500, "serve what is held, not what was asked");
}

#[test]
fn primary_nacks_ranges_below_the_floor() {
    let payload = vec![9u8; 100];
    let (mut stack, data_start) = primary_with_data(&payload);
    // Backup acks everything: retention releases.
    {
        let sock = stack.sock_by_quad(key().server_quad()).unwrap();
        stack.tcb_mut(sock).unwrap().set_backup_acked(data_start.add(100));
    }
    let mut engine = PrimaryEngine::new(cfg(), SimTime::ZERO);
    engine.on_side_msg(
        SimTime::ZERO,
        SideMsg::MissingReq { conn: key(), from: data_start.raw(), len: 100 },
        &mut stack,
    );
    let out = engine.take_outbox();
    assert!(
        matches!(out.as_slice(), [SideMsg::MissingNack { .. }]),
        "released bytes are gone: {out:?}"
    );
}

#[test]
fn backup_retries_stale_missing_requests() {
    let mut bcfg = StackConfig::host(MacAddr::local(3), Ipv4Addr::new(10, 0, 0, 3));
    bcfg.extra_ips = vec![VIP];
    bcfg.learn_from_ip = true;
    bcfg.promiscuous = true; // the deliver() helper addresses the primary's MAC
    bcfg.tcp = TcpConfig::st_tcp_backup();
    let mut stack = NetStack::new(bcfg);
    stack.listen(80);
    let now = SimTime::ZERO;
    // Shadow sees the SYN, resyncs, establishes (hand-rolled).
    let mut syn = TcpSegment::bare(40000, 80, 5000, 0, TcpFlags::SYN, 17520);
    syn.options = vec![wire::TcpOption::Mss(1460)];
    deliver(&mut stack, now, &syn);
    let _ = stack.poll(now); // suppressed SYN/ACK (not actually suppressed here; fine)
    let ack = TcpSegment::bare(40000, 80, 5001, 999_001, TcpFlags::ACK, 17520);
    deliver(&mut stack, now, &ack);
    let sock = stack.accept(80).expect("shadow established");
    let rcv_nxt = stack.tcb(sock).unwrap().rcv_nxt();

    let mut engine = BackupEngine::new(cfg(), 12 * 1024, now);
    engine.register_conn(key(), rcv_nxt);
    // A tapped primary ACK reveals a 400-byte gap.
    engine.on_tapped_primary_segment(now, key(), SeqNum(0), rcv_nxt.add(400), false, &mut stack);
    let first: Vec<_> = engine.take_outbox();
    assert!(first.iter().any(|m| matches!(m, SideMsg::MissingReq { len: 400, .. })), "{first:?}");
    // No reply arrives; ticks past 2×SyncTime re-issue the request.
    engine.on_side_msg(now, SideMsg::Heartbeat { seq: 1 }, &mut stack); // keep the primary "alive"
    let later = now + SimDuration::from_millis(150);
    engine.on_side_msg(later, SideMsg::Heartbeat { seq: 2 }, &mut stack);
    engine.on_tick(later, &mut stack);
    let retried: Vec<_> = engine.take_outbox();
    assert!(
        retried.iter().any(|m| matches!(m, SideMsg::MissingReq { .. })),
        "stale request must be retried: {retried:?}"
    );
    assert_eq!(engine.stats.missing_reqs, 2);
    // Recovery data clears the gap; no further requests.
    let missing = vec![3u8; 400];
    engine.on_side_msg(
        later,
        SideMsg::MissingData { conn: key(), seq: rcv_nxt.raw(), data: Bytes::from(missing) },
        &mut stack,
    );
    assert_eq!(stack.tcb(sock).unwrap().rcv_nxt(), rcv_nxt.add(400));
    let after = later + SimDuration::from_millis(150);
    engine.on_side_msg(after, SideMsg::Heartbeat { seq: 3 }, &mut stack);
    engine.on_tick(after, &mut stack);
    let quiet: Vec<_> = engine.take_outbox();
    assert!(
        !quiet.iter().any(|m| matches!(m, SideMsg::MissingReq { .. })),
        "healed gap must not be re-requested: {quiet:?}"
    );
}

#[test]
fn takeover_is_idempotent_under_continued_silence() {
    let mut bcfg = StackConfig::host(MacAddr::local(3), Ipv4Addr::new(10, 0, 0, 3));
    bcfg.extra_ips = vec![VIP];
    bcfg.suppressed_ips = vec![VIP];
    let mut stack = NetStack::new(bcfg);
    let mut engine = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
    let t1 = SimTime::ZERO + SimDuration::from_secs(1);
    engine.on_tick(t1, &mut stack);
    assert!(engine.has_taken_over());
    let first_takeover = engine.takeover_at();
    // More silent ticks must not move the takeover timestamp or
    // re-suppress anything.
    for i in 2..10u64 {
        engine.on_tick(SimTime::ZERO + SimDuration::from_secs(i), &mut stack);
    }
    assert_eq!(engine.takeover_at(), first_takeover);
    assert!(!stack.is_suppressed(VIP));
}

#[test]
fn primary_mirrors_congestion_snapshots_only_on_change() {
    let (mut stack, _) = primary_with_data(b"hello");
    let mut engine = PrimaryEngine::new(cfg().with_cong_sync(), SimTime::ZERO);
    let t1 = SimTime::ZERO + SimDuration::from_millis(50);
    engine.on_tick(t1, &mut stack);
    let sent = engine.take_outbox();
    let syncs: Vec<_> = sent.iter().filter(|m| matches!(m, SideMsg::CongSync { .. })).collect();
    assert_eq!(syncs.len(), 1, "one established connection, one snapshot: {sent:?}");
    let SideMsg::CongSync { conn, cwnd, ssthresh } = syncs[0] else { unreachable!() };
    assert_eq!(*conn, key());
    let sock = stack.sock_by_quad(key().server_quad()).unwrap();
    let snap = stack.tcb(sock).unwrap().export_congestion();
    assert_eq!((*cwnd, *ssthresh), (snap.cwnd, snap.ssthresh));
    // Nothing changed the window since: the next tick stays quiet.
    let t2 = t1 + SimDuration::from_millis(50);
    engine.on_tick(t2, &mut stack);
    let again = engine.take_outbox();
    assert!(
        !again.iter().any(|m| matches!(m, SideMsg::CongSync { .. })),
        "unchanged snapshot must not be rebroadcast: {again:?}"
    );
}

#[test]
fn primary_with_cong_sync_off_never_mirrors() {
    let (mut stack, _) = primary_with_data(b"hello");
    let mut engine = PrimaryEngine::new(cfg(), SimTime::ZERO);
    engine.on_tick(SimTime::ZERO + SimDuration::from_millis(50), &mut stack);
    let sent = engine.take_outbox();
    assert!(!sent.iter().any(|m| matches!(m, SideMsg::CongSync { .. })));
}

#[test]
fn backup_applies_mirrored_congestion_snapshot() {
    use tcpstack::CongestionController;
    // The shadow stack holds the same established quad as the primary.
    let (mut stack, _) = primary_with_data(b"hello");
    let mut engine = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
    let sock = stack.sock_by_quad(key().server_quad()).unwrap();
    let before = stack.tcb(sock).unwrap().congestion().cwnd();
    assert_ne!(before, 99_280, "pick a snapshot distinguishable from the default");
    engine.on_side_msg(
        SimTime::ZERO + SimDuration::from_millis(10),
        SideMsg::CongSync { conn: key(), cwnd: 99_280, ssthresh: 7_300 },
        &mut stack,
    );
    let cong = stack.tcb(sock).unwrap().congestion();
    assert_eq!(cong.cwnd(), 99_280);
    assert_eq!(cong.ssthresh(), 7_300);
}
