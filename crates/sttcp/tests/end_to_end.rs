//! End-to-end scenario tests: full simulated topologies, complete
//! workload runs, crashes, omissions, fencing, and double failures.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec, Topology};
use sttcp::SttcpConfig;

fn st_cfg() -> SttcpConfig {
    SttcpConfig::new(addrs::VIP, 80)
}

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn standard_tcp_echo_baseline() {
    let mut s = build(&ScenarioSpec::new(Workload::Echo { requests: 100 }));
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.latencies.len(), 100);
    let total = m.total_time().unwrap().as_secs_f64();
    // Paper Table 1: 0.892 s. One exchange ≈ RTT ≈ 10 ms.
    assert!((0.7..1.3).contains(&total), "echo total {total}s, expected ≈1 s");
}

#[test]
fn standard_tcp_interactive_baseline() {
    let mut s = build(&ScenarioSpec::new(Workload::interactive()));
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean());
    let total = m.total_time().unwrap().as_secs_f64();
    // Paper Table 1: 2.000 s (20 ms/exchange). Our simulated exchange is
    // 1 RTT + 10 KB serialization ≈ 11 ms — physically consistent with
    // the echo RTT and the bulk line rate, which the paper's 20 ms is
    // not; see EXPERIMENTS.md for the discussion of this deviation.
    assert!((0.9..2.5).contains(&total), "interactive total {total}s, expected ≈1.1–2 s");
}

#[test]
fn standard_tcp_bulk_1mb_baseline() {
    let mut s = build(&ScenarioSpec::new(Workload::bulk_mb(1)));
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean());
    let total = m.total_time().unwrap().as_secs_f64();
    // Paper Table 1: 0.640 s (window-limited at ≈1.6 MB/s).
    assert!((0.5..0.9).contains(&total), "bulk 1MB total {total}s, expected ≈0.64 s");
}

#[test]
fn st_tcp_failure_free_echo_matches_standard() {
    let mut std_run = build(&ScenarioSpec::new(Workload::Echo { requests: 100 }));
    let std_time =
        std_run.run(RunLimits::time(secs(30.0))).expect_completed().total_time().unwrap();
    let mut st_run = build(&ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(st_cfg()));
    let st_m = st_run.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(st_m.verified_clean());
    let st_time = st_m.total_time().unwrap();
    // Table 1's core claim: no measurable overhead.
    let ratio = st_time.as_secs_f64() / std_time.as_secs_f64();
    assert!((0.98..1.02).contains(&ratio), "ST-TCP overhead ratio {ratio}");
    // And the backup really was shadowing (sent acks, got heartbeats).
    let eng = st_run.backup().unwrap();
    assert!(eng.stats.acks_sent > 0);
    assert!(eng.stats.hbs_received > 0);
    assert!(!eng.has_taken_over());
}

#[test]
fn st_tcp_echo_failover_is_transparent_and_fast() {
    let crash = SimTime::ZERO + secs(0.45); // mid-run
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(st_cfg()) // 50 ms heartbeats
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean(), "bytes must survive the failover intact");
    assert_eq!(m.latencies.len(), 100);
    let eng = s.backup().unwrap();
    assert!(eng.has_taken_over());
    let takeover = eng.takeover_at().unwrap();
    let detection = takeover.duration_since(crash);
    // 3..4 heartbeat intervals of 50 ms, plus one tick of slack.
    assert!((0.15..0.30).contains(&detection.as_secs_f64()), "detection took {detection}");
    // Paper Table 2 (50 ms HB): failover ≈ 0.219 s; total ≈ 1.1 s.
    let total = m.total_time().unwrap().as_secs_f64();
    assert!((0.9..2.5).contains(&total), "echo with failover total {total}s");
}

#[test]
fn st_tcp_bulk_failover_mid_transfer() {
    let crash = SimTime::ZERO + secs(0.3);
    let spec = ScenarioSpec::new(Workload::bulk_mb(1))
        .st_tcp(st_cfg())
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean(), "1 MB stream must be exactly-once across the crash");
    assert_eq!(m.bytes_received, 1 << 20);
    assert!(s.backup().unwrap().has_taken_over());
}

#[test]
fn st_tcp_interactive_failover() {
    let crash = SimTime::ZERO + secs(1.0);
    let spec = ScenarioSpec::new(Workload::interactive())
        .st_tcp(st_cfg())
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 100 * 10 * 1024);
}

#[test]
fn switch_multicast_tapping_works() {
    let crash = SimTime::ZERO + secs(0.45);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .topology(Topology::SwitchMulticast)
        .st_tcp(st_cfg())
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    assert!(s.backup().unwrap().has_taken_over());
}

#[test]
fn shared_medium_hub_paper_testbed() {
    // The paper's actual device: a shared-medium hub. Tapping is free
    // (every station hears every frame) and failover works identically;
    // throughput is merely lower than on the idealized fabric.
    let crash = SimTime::ZERO + secs(0.45);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .topology(Topology::SharedMediumHub { medium_bps: 100_000_000 })
        .st_tcp(st_cfg())
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    assert!(s.backup().unwrap().has_taken_over());
}

#[test]
fn switch_mirror_tapping_works() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 50 })
        .topology(Topology::SwitchMirror)
        .st_tcp(st_cfg());
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    // Backup shadowed through the mirror.
    let eng = s.backup().unwrap();
    assert!(eng.stats.acks_sent > 0);
}

#[test]
fn gateway_topology_full_architecture() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 50 })
        .topology(Topology::GatewaySwitch)
        .st_tcp(st_cfg());
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    assert!(s.backup().unwrap().stats.acks_sent > 0);
}

#[test]
fn backup_crash_drops_to_non_fault_tolerant_mode() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(st_cfg());
    let mut s = build(&spec);
    let backup = s.backup.unwrap();
    s.sim.schedule_crash(backup, SimTime::ZERO + secs(0.3));
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean(), "service continues when the backup dies");
    let eng = s.primary().unwrap();
    assert!(!eng.backup_alive(), "primary must notice the backup's death");
    assert!(eng.backup_dead_at().is_some());
}

fn any_tcp_frame(frame: &bytes::Bytes) -> bool {
    use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        Some(ip.protocol == IpProtocol::Tcp)
    })()
    .unwrap_or(false)
}

#[test]
fn tap_omission_recovered_over_side_channel() {
    use netsim::DropRule;
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(st_cfg());
    let mut s = build(&spec);
    let backup = s.backup.unwrap();
    // Drop 30 random-ish % of TCP frames on their way INTO the backup
    // only (the paper's IP-buffer-overflow scenario, §4.2). The UDP
    // side channel is the recovery path and heartbeat carrier; losing
    // it is a different fault class (see side_channel_loss test below).
    s.sim.add_ingress_drop(backup, DropRule::rate(0.3, any_tcp_frame));
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    assert!(m.verified_clean());
    // The backup must have requested and recovered missing bytes.
    let eng = s.backup().unwrap();
    assert!(eng.stats.missing_reqs > 0, "tap loss must trigger missing-segment requests");
    assert!(eng.stats.missing_bytes_recovered > 0);
    assert!(!eng.has_taken_over(), "omissions alone must not trigger a takeover");
}

#[test]
fn side_channel_loss_causes_false_takeover() {
    // Heartbeat loss is NOT the §4.2 omission class: sustained loss of
    // the primary's heartbeats makes the backup wrongly suspect a live
    // primary — the exact wrong-suspicion scenario §4.4's fencing
    // exists for. This test documents the hazard: with all UDP into
    // the backup dropped, takeover fires though the primary is fine.
    use netsim::DropRule;
    use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet};
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(st_cfg());
    let mut s = build(&spec);
    let backup = s.backup.unwrap();
    s.sim.add_ingress_drop(
        backup,
        DropRule::all(|frame: &bytes::Bytes| {
            (|| {
                let eth = EthernetFrame::parse(frame.clone()).ok()?;
                if eth.ethertype != EtherType::Ipv4 {
                    return None;
                }
                let ip = Ipv4Packet::parse(eth.payload).ok()?;
                Some(ip.protocol == IpProtocol::Udp)
            })()
            .unwrap_or(false)
        }),
    );
    let m = s.run(RunLimits::time(secs(30.0))).expect_completed();
    // The client still completes: the shadow is complete (TCP tap was
    // clean), so the falsely-promoted backup serves the same bytes the
    // primary does. Both transmit as the VIP — split brain — which only
    // fencing can rule out for non-deterministic real servers.
    assert!(m.verified_clean());
    assert!(
        s.backup().unwrap().has_taken_over(),
        "sustained heartbeat loss must trigger a (wrong) takeover"
    );
    assert!(s.sim.is_alive(s.primary), "the primary was never actually down");
}

#[test]
fn tap_omission_then_crash_still_transparent() {
    // Omission + (later) crash: the side channel healed the gap before
    // the crash, so takeover still works without a logger.
    use netsim::DropRule;
    let crash = SimTime::ZERO + secs(0.6);
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(st_cfg())
        .faults(FaultSpec::crash_primary_at(crash));
    let mut s = build(&spec);
    let backup = s.backup.unwrap();
    s.sim.add_ingress_drop(backup, DropRule::window(40, 2, |_| true));
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    assert!(s.backup().unwrap().has_taken_over());
}

#[test]
fn power_switch_fencing_kills_primary_before_takeover() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(st_cfg().with_fencing(0))
        .with_power_switch()
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + secs(0.45)));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
    assert!(m.verified_clean());
    let psw = s.power.unwrap();
    assert_eq!(s.sim.node_ref::<netsim::PowerSwitch>(psw).offs, 1, "backup fenced the primary");
    assert!(!s.sim.is_alive(s.primary));
}

#[test]
fn determinism_identical_runs_produce_identical_timings() {
    let run = || {
        let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
            .st_tcp(st_cfg())
            .faults(FaultSpec::crash_primary_at(SimTime::ZERO + secs(0.45)));
        let mut s = build(&spec);
        let m = s.run(RunLimits::time(secs(60.0))).expect_completed();
        (m.total_time().unwrap(), m.latencies.clone())
    };
    assert_eq!(run(), run(), "simulation must be bit-reproducible");
}
