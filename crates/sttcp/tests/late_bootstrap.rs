//! Late-join / missed-SYN bootstrap (extension beyond the paper).
//!
//! §4.1 assumes the backup taps every connection from its SYN. If the
//! SYN is lost on the tap, the literal protocol can never shadow that
//! connection — after a takeover the backup would RST the client. With
//! the in-network logger, the backup detects the unshadowed connection
//! (tapped primary ACKs for an unknown four-tuple) and asks for a full
//! history replay: the replayed SYN builds the shadow, the replayed
//! handshake ACK resynchronizes its ISN, and the replayed requests
//! catch the application up.

use apps::{EchoServer, Workload};
use netsim::{DropRule, SimDuration, SimTime};
use sttcp::scenario::{addrs, build, RunLimits, ScenarioSpec};
use sttcp::{ServerNode, SttcpConfig};
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpFlags, TcpSegment};

/// Matches the client's SYN to the service VIP.
fn client_syn(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.dst != addrs::VIP || ip.protocol != IpProtocol::Tcp {
            return None;
        }
        let seg = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        Some(seg.flags.contains(TcpFlags::SYN))
    })()
    .unwrap_or(false)
}

fn spec_with_logger(use_logger: bool) -> ScenarioSpec {
    let mut cfg = SttcpConfig::new(addrs::VIP, 80);
    if use_logger {
        cfg = cfg.with_logger();
    }
    let mut spec = ScenarioSpec::new(Workload::Echo { requests: 100 }).st_tcp(cfg);
    spec.with_logger = use_logger;
    spec
}

#[test]
fn missed_syn_is_bootstrapped_from_the_logger() {
    let mut s = build(&spec_with_logger(true));
    let backup = s.backup.unwrap();
    s.sim.add_ingress_drop(backup, DropRule::window(0, 1, client_syn));
    // Run failure-free for a while: the backup must build the shadow
    // from the replay and converge.
    s.sim.run_for(SimDuration::from_secs(1));
    let node = s.sim.node_ref::<ServerNode>(backup);
    let eng = node.backup_engine().unwrap();
    assert!(eng.stats.bootstrap_queries >= 1, "unknown-conn activity must trigger a bootstrap");
    assert_eq!(node.accepted.len(), 1, "the replayed SYN must have built the shadow");
    let sock = node.accepted[0];
    let app = node.app::<EchoServer>(sock).expect("echo app attached");
    assert!(app.echoed > 0, "the replayed history must have driven the application");
    // Sequence space matches the primary's.
    let p = s.sim.node_ref::<ServerNode>(s.primary);
    let ptcb = p.stack().tcb(p.accepted[0]).unwrap();
    let btcb = s.sim.node_ref::<ServerNode>(backup).stack().tcb(sock).unwrap();
    assert_eq!(btcb.iss(), ptcb.iss(), "replayed handshake ACK must resync the ISN");
    assert_eq!(s.client().unwrap().metrics.content_errors, 0);
    assert!(
        s.client().unwrap().metrics.bytes_received > 50 * 150,
        "the client must have made normal progress throughout: got {} bytes",
        s.client().unwrap().metrics.bytes_received
    );
}

#[test]
fn bootstrapped_backup_survives_a_crash() {
    let mut s = build(&spec_with_logger(true));
    let backup = s.backup.unwrap();
    s.sim.add_ingress_drop(backup, DropRule::window(0, 1, client_syn));
    // Give the bootstrap time to converge, then kill the primary.
    s.sim.schedule_crash(s.primary, SimTime::ZERO + SimDuration::from_millis(500));
    let m = s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed();
    assert!(m.verified_clean(), "failover from a bootstrapped shadow must be byte-exact");
    assert_eq!(m.latencies.len(), 100);
    let eng = s.backup().unwrap();
    assert!(eng.has_taken_over());
    assert!(eng.stats.bootstrap_queries >= 1);
}

#[test]
fn without_logger_a_missed_syn_is_fatal_after_crash() {
    // The documented limitation: no logger, no history, no shadow — on
    // takeover the backup has no TCB for the connection and resets it.
    let mut s = build(&spec_with_logger(false));
    let backup = s.backup.unwrap();
    s.sim.add_ingress_drop(backup, DropRule::window(0, 1, client_syn));
    s.sim.schedule_crash(s.primary, SimTime::ZERO + SimDuration::from_millis(500));
    let deadline = SimTime::ZERO + SimDuration::from_secs(30);
    while s.sim.now() < deadline && !s.client().unwrap().is_done() {
        s.sim.run_for(SimDuration::from_millis(50));
    }
    assert!(!s.client().unwrap().is_done(), "without the logger this failover cannot succeed");
    let node = s.sim.node_ref::<ServerNode>(backup);
    assert_eq!(node.accepted.len(), 0, "no shadow was ever built");
}
