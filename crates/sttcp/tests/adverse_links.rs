//! ST-TCP over adverse links: a congested bottleneck (bounded queue →
//! real tail-drop loss → Reno fast retransmit) and heavy jitter (frame
//! reordering). Neither fault class appears in the paper's clean-LAN
//! evaluation, but a production deployment sees both daily.

use apps::Workload;
use netsim::{LinkSpec, SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::{ServerNode, SttcpConfig};

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn congested_bottleneck_drives_fast_retransmit_and_still_completes() {
    // 10 Mbit links with a shallow (5 ms ≈ 4-frame) queue: the sender's
    // slow-start burst overruns it, real congestion loss follows, Reno
    // recovers. End-to-end through the full simulator + both servers.
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(2)).st_tcp(SttcpConfig::new(addrs::VIP, 80));
    spec.link =
        LinkSpec::lan().with_bandwidth_bps(10_000_000).with_max_queue(SimDuration::from_millis(5));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(120.0))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 2 << 20);
    let p = s.sim.node_ref::<ServerNode>(s.primary);
    let tcb = p.stack().tcb(p.accepted[0]).unwrap();
    let recoveries = tcb.stats.fast_retransmits + tcb.stats.rto_retransmits;
    assert!(recoveries > 0, "a shallow queue must produce congestion losses");
}

#[test]
fn congested_bottleneck_failover() {
    // Same congested path, plus a mid-transfer crash: loss recovery and
    // connection migration interleave.
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(2))
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + secs(1.0)));
    spec.link =
        LinkSpec::lan().with_bandwidth_bps(10_000_000).with_max_queue(SimDuration::from_millis(5));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(180.0))).expect_completed();
    assert!(m.verified_clean(), "congestion + failover must still be exactly-once");
    assert_eq!(m.bytes_received, 2 << 20);
    assert!(s.backup().unwrap().has_taken_over());
}

#[test]
fn jitter_reorders_frames_and_the_shadow_stays_consistent() {
    // 2 ms of uniform jitter on 2.5 ms links reorders aggressively; the
    // client's dup-ACKs may trigger spurious fast retransmits, and the
    // backup's tap sees a *different* reordering than the primary —
    // reassembly must converge identically on both.
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(1)).st_tcp(SttcpConfig::new(addrs::VIP, 80));
    spec.link = LinkSpec::lan().with_jitter(SimDuration::from_millis(2));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(120.0))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.bytes_received, 1 << 20);
    // Both servers hold identical receive state despite differing
    // arrival orders.
    let p = s.sim.node_ref::<ServerNode>(s.primary);
    let b = s.sim.node_ref::<ServerNode>(s.backup.unwrap());
    let ptcb = p.stack().tcb(p.accepted[0]).unwrap();
    let btcb = b.stack().tcb(b.accepted[0]).unwrap();
    assert_eq!(ptcb.rcv_nxt(), btcb.rcv_nxt());
}

#[test]
fn jitter_plus_crash() {
    let mut spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + secs(0.6)));
    spec.link = LinkSpec::lan().with_jitter(SimDuration::from_millis(2));
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(secs(120.0))).expect_completed();
    assert!(m.verified_clean());
    assert_eq!(m.latencies.len(), 100);
    assert!(s.backup().unwrap().has_taken_over());
}
