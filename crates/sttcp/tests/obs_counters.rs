//! Invariants over the recorded observability counters: suppression
//! stops at takeover, retention stays within the §4.2 bound, and the
//! takeover breakdown is consistent with the failure-detector tuning.

use sttcp::prelude::*;
use sttcp::ServerNode;

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

fn failover_spec() -> ScenarioSpec {
    ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(400)))
        .recording()
}

#[test]
fn snapshot_absent_without_recording() {
    let spec =
        ScenarioSpec::new(Workload::Echo { requests: 3 }).st_tcp(SttcpConfig::new(addrs::VIP, 80));
    let mut s = build(&spec);
    assert!(s.obs.is_none());
    s.run(RunLimits::default()).expect_completed();
    assert!(s.snapshot().is_none());
    assert!(s.takeover_breakdown().is_none());
}

#[test]
fn failure_free_run_records_protocol_chatter() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 50 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .recording();
    let mut s = build(&spec);
    s.run(RunLimits::default()).expect_completed();
    let snap = s.snapshot().unwrap();
    assert!(snap.get("segs_suppressed") > 0, "the shadow suppresses every VIP egress");
    assert!(snap.get("heartbeats_sent") > 0);
    assert!(snap.get("heartbeats_received") > 0);
    assert!(snap.get("backup_acks_sent") > 0);
    assert!(snap.get("backup_acks_received") > 0);
    // No takeover: the failure-side marks must stay unset.
    assert_eq!(snap.mark(Mark::SuspectedPrimaryDead), None);
    assert_eq!(snap.mark(Mark::TakeoverUnsuppressed), None);
    assert!(s.takeover_breakdown().is_none());
}

#[test]
fn suppression_stops_growing_after_takeover() {
    let mut s = build(&failover_spec());
    // Drive until the backup has taken over (bounded: detection fires
    // ~200 ms after the 400 ms crash).
    for _ in 0..40 {
        if s.backup().map(|e| e.has_taken_over()).unwrap_or(false) {
            break;
        }
        s.sim.run_for(SimDuration::from_millis(50));
    }
    assert!(s.backup().unwrap().has_taken_over(), "takeover must happen within 2 s");
    let at_takeover = s.snapshot().unwrap().get("segs_suppressed");
    assert!(at_takeover > 0, "pre-takeover shadowing must have suppressed segments");
    let outcome = s.run(RunLimits::time(secs(60.0)));
    assert!(outcome.completed());
    s.sim.run_for(secs(2.0));
    let at_end = s.snapshot().unwrap().get("segs_suppressed");
    assert_eq!(
        at_end, at_takeover,
        "unsuppressing at takeover must stop the suppression counter cold"
    );
}

#[test]
fn retention_high_water_stays_within_bound() {
    // An upload pushes client→server data through the primary's
    // retention buffer (§4.2). Retained bytes past the second-buffer
    // capacity spill into the first buffer and eat the advertised
    // window, so the high-water mark is structurally capped at
    // retention + recv capacity — window exhaustion stops the sender.
    let spec = ScenarioSpec::new(Workload::upload_mb(2))
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .recording();
    let mut s = build(&spec);
    let outcome = s.run(RunLimits::time(secs(120.0)));
    assert!(outcome.completed());
    let tcp = &s.sim.node_ref::<ServerNode>(s.primary).stack().config().tcp;
    let bound = (tcp.retention_buf + tcp.recv_buf) as u64;
    let snap = s.snapshot().unwrap();
    let high_water = snap.get("retention_high_water");
    assert!(high_water > 0, "an upload must exercise primary retention");
    assert!(
        high_water <= bound,
        "retention high-water {high_water} exceeds the §4.2 bound {bound}"
    );
}

#[test]
fn takeover_breakdown_is_consistent_with_detector_tuning() {
    let cfg = SttcpConfig::new(addrs::VIP, 80);
    let hb_ns = cfg.hb_interval.as_nanos();
    let missed = u64::from(cfg.missed_hb_threshold);
    let mut s = build(&failover_spec());
    s.run(RunLimits::time(secs(60.0))).expect_completed();

    let breakdown = s.takeover_breakdown().expect("recorded failover produces a breakdown");
    // Marks are causally ordered: heard -> suspected -> unsuppressed.
    assert!(breakdown.last_primary_heard_ns <= breakdown.suspected_ns);
    assert!(breakdown.suspected_ns <= breakdown.unsuppressed_ns);
    // Detection is paced by heartbeats: silence past the threshold,
    // noticed at a sync tick — just past `missed × hb`, and within two
    // further intervals of slack.
    let detection = breakdown.detection_ns();
    assert!(
        detection > hb_ns * missed && detection <= hb_ns * (missed + 2),
        "detection {detection} ns inconsistent with hb {hb_ns} ns × threshold {missed}"
    );
    // Active takeover without fencing promotes instantly.
    assert_eq!(breakdown.promotion_ns(), 0);
    assert_eq!(breakdown.fenced_ns, None);
    // Service resumed: the backup sourced a data byte after takeover.
    assert!(breakdown.first_byte_latency_ns().is_some());
}

#[test]
fn fencing_mark_lands_between_suspicion_and_takeover() {
    let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80).with_fencing(0))
        .with_power_switch()
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(400)))
        .recording();
    let mut s = build(&spec);
    s.run(RunLimits::time(secs(60.0))).expect_completed();
    let breakdown = s.takeover_breakdown().expect("breakdown");
    let fenced = breakdown.fenced_ns.expect("fencing must be recorded");
    assert!(breakdown.suspected_ns <= fenced);
    assert!(fenced <= breakdown.unsuppressed_ns);
}
