//! Classified run outcomes: a campaign engine needs to know *why* a run
//! stopped (finished, out of virtual time, out of event budget, or
//! physically wedged), not just that it did.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use sttcp::scenario::{build, RunLimits, ScenarioSpec, StopReason};

fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

#[test]
fn completed_run_reports_completed() {
    let mut s = build(&ScenarioSpec::new(Workload::Echo { requests: 20 }));
    let out = s.run(RunLimits::time(secs(30.0)));
    assert_eq!(out.reason, StopReason::Completed);
    assert!(out.completed());
    assert!(out.metrics.verified_clean());
    assert_eq!(out.progress.0, out.progress.1, "all expected bytes received");
    assert!(out.events > 0);
}

#[test]
fn short_limit_reports_time_limit_with_partial_progress() {
    let mut s = build(&ScenarioSpec::new(Workload::bulk_mb(1)));
    let out = s.run(RunLimits::time(secs(0.1)));
    assert_eq!(out.reason, StopReason::TimeLimit);
    assert!(!out.completed());
    assert!(out.progress.0 < out.progress.1, "progress {:?} should be partial", out.progress);
    assert!(out.stopped_at >= SimTime::ZERO + secs(0.1));
}

#[test]
fn tiny_event_budget_reports_event_limit() {
    let mut s = build(&ScenarioSpec::new(Workload::bulk_mb(1)));
    let out = s.run(RunLimits::time(secs(30.0)).max_events(50));
    assert_eq!(out.reason, StopReason::EventLimit);
    assert!(out.events >= 50, "budget was consumed ({} events)", out.events);
}

#[test]
fn drained_queue_with_unfinished_client_reports_wedged() {
    // Crash both endpoints early: every pending timer fires once into a
    // dead node and is not re-armed, so the event queue drains while the
    // workload is unfinished — the signature of a wedged run.
    let mut s = build(&ScenarioSpec::new(Workload::Echo { requests: 100 }));
    let at = SimTime::ZERO + secs(0.05);
    s.sim.schedule_crash(s.primary, at);
    s.sim.schedule_crash(s.client, at);
    let out = s.run(RunLimits::time(secs(30.0)));
    assert_eq!(out.reason, StopReason::WedgedClient);
    assert!(!out.completed());
    assert!(
        out.stopped_at < SimTime::ZERO + secs(30.0),
        "wedge must be detected well before the time limit, not at {}",
        out.stopped_at
    );
}

#[test]
fn run_to_completion_panic_names_the_reason() {
    let mut s = build(&ScenarioSpec::new(Workload::bulk_mb(1)));
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        s.run(RunLimits::time(secs(0.1))).expect_completed();
    }))
    .expect_err("must panic on an unfinished run");
    let msg = err.downcast_ref::<String>().expect("panic payload is a String");
    assert!(msg.contains("TimeLimit"), "panic message should say why: {msg}");
}
