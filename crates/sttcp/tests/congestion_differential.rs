//! Differential pins for the congestion-controller redesign.
//!
//! The `CongestionController` trait refactor must be behavior-preserving
//! by default: Reno behind the trait, with SACK emission off, has to put
//! the same bytes on the wire at the same instants as the pre-refactor
//! hardwired `Congestion` struct. These tests pin that with golden
//! frame-trace digests captured at the commit *before* the refactor:
//! the 100 MB bulk transfer (the simperf `bulk_100mb` scenario) and the
//! 80-client failover fleet (the determinism-test scenario). Any change
//! to default wire behavior — an extra option byte, a different cwnd
//! growth step, a shifted retransmit — moves these hashes.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use sttcp::fleet::{self, FleetSpec};
use sttcp::scenario::{build, RunLimits, ScenarioSpec};

/// FNV-1a over every probe observation, identical to the fold in
/// `tests/determinism.rs`: departure time, link, endpoints, frame bytes.
#[derive(Default)]
struct TraceDigest {
    hash: u64,
    frames: u64,
}

impl TraceDigest {
    fn new() -> Self {
        TraceDigest { hash: 0xcbf2_9ce4_8422_2325, frames: 0 }
    }

    fn mix(&mut self, v: u64) {
        self.hash ^= v;
        self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn observe(&mut self, ev: &netsim::ProbeEvent<'_>) {
        self.mix(ev.time.as_nanos());
        self.mix(ev.link.0 as u64);
        self.mix(ev.from.0 as u64);
        self.mix(ev.to.0 as u64);
        self.mix(ev.frame.len() as u64);
        for &b in ev.frame.iter() {
            self.mix(u64::from(b));
        }
        self.frames += 1;
    }
}

/// Golden digest of the `bulk_100mb` scenario (standard TCP, default
/// config), captured pre-refactor.
const BULK_100MB_DIGEST: (u64, u64) = (0xf6cc_9c4e_6e20_1a1d, 215_472);

/// Golden digest of the 80-client failover fleet (the
/// `fleet_failover_frame_traces_are_bit_identical` scenario), captured
/// pre-refactor.
const FLEET_80_FAILOVER_DIGEST: (u64, u64) = (0x24bf_5764_6391_d5fd, 4_228);

#[test]
fn reno_via_trait_matches_prerefactor_bulk_100mb() {
    let spec = ScenarioSpec::new(Workload::bulk_mb(100));
    let mut s = build(&spec);
    let digest = Rc::new(RefCell::new(TraceDigest::new()));
    let sink = Rc::clone(&digest);
    s.sim.set_probe(move |ev| sink.borrow_mut().observe(&ev));
    let m = s.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
    assert!(m.verified_clean());
    let d = digest.borrow();
    assert_eq!(
        (d.hash, d.frames),
        BULK_100MB_DIGEST,
        "default-config bulk_100mb wire trace diverged from the pre-refactor seed \
         (got ({:#018x}, {}))",
        d.hash,
        d.frames
    );
}

#[test]
fn reno_via_trait_matches_prerefactor_fleet_failover() {
    let spec = FleetSpec::new(80)
        .connect_spread(SimDuration::from_millis(80))
        .crash_primary_at(SimTime::ZERO + SimDuration::from_millis(140));
    let mut f = fleet::build(&spec);
    let digest = Rc::new(RefCell::new(TraceDigest::new()));
    let sink = Rc::clone(&digest);
    f.sim.set_probe(move |ev| sink.borrow_mut().observe(&ev));
    assert!(f.run_until_done(SimDuration::from_secs(120)), "fleet must finish");
    assert!(f.verified_clean());
    let d = digest.borrow();
    assert_eq!(
        (d.hash, d.frames),
        FLEET_80_FAILOVER_DIGEST,
        "default-config 80-client failover wire trace diverged from the pre-refactor seed \
         (got ({:#018x}, {}))",
        d.hash,
        d.frames
    );
}
