//! WAN-profile congestion experiments: the scenario space the paper's
//! 10/100 Mbit LAN never reaches (ROADMAP item 2, ISSUE 9).
//!
//! On `wan_high_bdp` the receive window no longer binds (scaled 2 MB
//! windows over a ≈500 KB bandwidth-delay product), so goodput is set
//! by how fast each [`CongestionAlgo`] reopens the window after loss —
//! exactly where CUBIC's cubic regrowth and BBR's model-based pacing
//! were designed to beat Reno's one-MSS-per-RTT probe.

use apps::Workload;
use netsim::{LinkProfile, SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::SttcpConfig;
use tcpstack::CongestionAlgo;

/// Bulk-download completion time on `wan_high_bdp` with scaled windows
/// (SACK on for every run, so recovery style is held constant and only
/// the controller varies).
fn wan_bulk_secs(algo: CongestionAlgo) -> f64 {
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(20))
        .link_profile(LinkProfile::WanHighBdp)
        .congestion(algo)
        .with_sack();
    spec.tcp.recv_buf = 2 << 20;
    spec.tcp.send_buf = 4 << 20;
    spec.tcp.window_scale = Some(6); // 2 MB >> 6 fits the 16-bit field
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(300))).expect_completed();
    assert!(m.verified_clean());
    m.total_time().unwrap().as_secs_f64()
}

#[test]
fn cubic_and_bbr_beat_reno_on_wan_high_bdp() {
    let reno = wan_bulk_secs(CongestionAlgo::Reno);
    let cubic = wan_bulk_secs(CongestionAlgo::Cubic);
    let bbr = wan_bulk_secs(CongestionAlgo::Bbr);
    println!("wan_high_bdp 20 MB bulk: reno {reno:.2}s cubic {cubic:.2}s bbr {bbr:.2}s");
    assert!(
        cubic < reno,
        "CUBIC must beat Reno on a high-BDP path (cubic {cubic:.2}s vs reno {reno:.2}s)"
    );
    assert!(bbr < reno, "BBR must beat Reno on a high-BDP path (bbr {bbr:.2}s vs reno {reno:.2}s)");
}

/// Failover under loss on the `reordering` profile (its jitter plus
/// 1 % random loss, so the client holds SACKed islands past the holes
/// when the crash lands). Returns the crash→first-post-takeover-byte
/// latency and the total completion time.
fn takeover_under_loss(sack: bool) -> (u64, f64) {
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(5))
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(700)))
        .recording();
    spec.link = LinkProfile::Reordering.spec().with_loss(netsim::LossModel::Rate(0.01));
    if sack {
        spec = spec.with_sack();
    }
    spec.tcp.recv_buf = 1 << 20;
    spec.tcp.send_buf = 2 << 20;
    spec.tcp.window_scale = Some(5);
    let mut s = build(&spec);
    let m = s.run(RunLimits::time(SimDuration::from_secs(300))).expect_completed();
    assert!(m.verified_clean());
    let bd = s.takeover_breakdown().expect("recording on");
    let total = m.total_time().unwrap().as_secs_f64();
    (bd.first_byte_latency_ns().expect("first byte after takeover"), total)
}

#[test]
fn sack_improves_takeover_under_reordering_loss() {
    let (gbn_fb, gbn_total) = takeover_under_loss(false);
    let (sack_fb, sack_total) = takeover_under_loss(true);
    println!(
        "reordering+loss failover: go-back-N first-byte {:.1}ms total {gbn_total:.2}s, \
         sack first-byte {:.1}ms total {sack_total:.2}s",
        gbn_fb as f64 / 1e6,
        sack_fb as f64 / 1e6,
    );
    // The first byte after takeover is the hole at snd_una in both
    // recovery styles, so SACK's win is in everything after it: the
    // promoted go-back-N sender re-sends the client's entire buffered
    // window before reaching new data, the scoreboard sender skips
    // straight past the SACKed islands. First-byte must not regress
    // (small tolerance: the wire histories differ slightly by then) and
    // the client must finish strictly earlier.
    assert!(
        sack_fb <= gbn_fb + 5_000_000,
        "selective retransmit must not delay the first post-takeover byte \
         (sack {sack_fb}ns vs go-back-N {gbn_fb}ns)"
    );
    assert!(
        sack_total < gbn_total,
        "selective retransmit must finish the transfer earlier than go-back-N \
         under reordering loss (sack {sack_total:.2}s vs go-back-N {gbn_total:.2}s)"
    );
}
