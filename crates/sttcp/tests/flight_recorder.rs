//! Flight-recorder invariants: same-seed traces are byte-identical,
//! the timeline phases agree with the counter-derived takeover
//! breakdown, and the bounded ring drops oldest-first with an exact
//! dropped count.

use obs::{TimelinePhases, TraceExport, TRACE_FORMAT};
use sttcp::prelude::*;

fn failover_spec(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
        .st_tcp(SttcpConfig::new(addrs::VIP, 80))
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(400)))
        .recording()
        .tracing();
    spec.seed = seed;
    spec
}

fn run_and_export(spec: &ScenarioSpec) -> TraceExport {
    let mut s = build(spec);
    s.run(RunLimits::default()).expect_completed();
    s.trace_export().expect("tracing was enabled")
}

#[test]
fn trace_absent_without_tracing() {
    let spec =
        ScenarioSpec::new(Workload::Echo { requests: 3 }).st_tcp(SttcpConfig::new(addrs::VIP, 80));
    let mut s = build(&spec);
    assert!(s.flight.is_none());
    s.run(RunLimits::default()).expect_completed();
    assert!(s.trace_export().is_none());
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let a = run_and_export(&failover_spec(0xA11CE));
    let b = run_and_export(&failover_spec(0xA11CE));
    assert!(!a.events.is_empty(), "a failover run must record events");
    assert_eq!(a.to_json(), b.to_json(), "same seed must reproduce the trace byte-for-byte");
}

#[test]
fn different_seeds_diverge() {
    let a = run_and_export(&failover_spec(1));
    let b = run_and_export(&failover_spec(2));
    assert_ne!(a.to_json(), b.to_json(), "ISNs are seed-derived; traces must differ");
}

#[test]
fn export_roundtrips_through_json() {
    let a = run_and_export(&failover_spec(7));
    let text = a.to_json();
    assert!(text.contains(TRACE_FORMAT));
    let back = TraceExport::from_json(&text).expect("parses");
    assert_eq!(back.to_json(), text, "parse → serialize must be the identity");
}

#[test]
fn timeline_phases_agree_with_takeover_breakdown() {
    let spec = failover_spec(0xBEEF);
    let mut s = build(&spec);
    s.run(RunLimits::default()).expect_completed();
    let breakdown = s.takeover_breakdown().expect("crash run records a takeover");
    let export = s.trace_export().unwrap();
    let phases = TimelinePhases::from_export(&export).expect("trace contains the takeover");
    assert_eq!(phases.suspected_ns, breakdown.suspected_ns);
    assert_eq!(phases.detection_ns, breakdown.detection_ns());
    assert_eq!(phases.promoted_ns, breakdown.unsuppressed_ns);
    assert_eq!(phases.fenced_ns, breakdown.fenced_ns);
    assert_eq!(phases.first_byte_ns, breakdown.first_byte_ns);
}

#[test]
fn tiny_ring_drops_oldest_and_counts_them() {
    let cap = 16;
    let full = run_and_export(&failover_spec(3));
    let mut spec = failover_spec(3);
    spec = spec.tracing_with_capacity(cap);
    let tail = run_and_export(&spec);
    assert_eq!(tail.events.len(), cap, "ring must be full after overflow");
    assert_eq!(
        tail.dropped as usize,
        full.events.len() - cap,
        "dropped counter must equal the overflow"
    );
    // Drop-oldest: the surviving events are exactly the tail of the
    // unbounded trace (the recorder must not perturb the run itself).
    let full_tail = &full.events[full.events.len() - cap..];
    for (kept, expect) in tail.events.iter().zip(full_tail) {
        assert_eq!(kept, expect);
    }
}
