//! One-stop imports for building and running ST-TCP experiments.
//!
//! ```
//! use sttcp::prelude::*;
//!
//! let spec = ScenarioSpec::new(Workload::Echo { requests: 3 })
//!     .st_tcp(SttcpConfig::new(addrs::VIP, 80))
//!     .recording();
//! let mut scenario = build(&spec);
//! let outcome = scenario.run(RunLimits::default());
//! assert!(outcome.completed());
//! assert!(scenario.snapshot().is_some());
//! ```

pub use crate::config::{Fencing, SttcpConfig, TakeoverPolicy};
pub use crate::scenario::{
    addrs, build, Deployment, Fault, FaultSpec, RunLimits, RunOutcome, Scenario, ScenarioSpec,
    StopReason, Topology,
};
pub use apps::{RunMetrics, Workload};
pub use netsim::{SimDuration, SimTime};
pub use obs::{Counter, Gauge, Mark, ObsSink, Recorder, Snapshot, TakeoverBreakdown};
