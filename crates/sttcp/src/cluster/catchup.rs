//! Logger-assisted catch-up accounting for a chained backup.
//!
//! Tracks, per shadowed connection, how far this node's shadow trails
//! the primary's cumulative ACK (the *lag*), drives missing-segment
//! requests to close it, and answers the one question the promotion
//! layer asks: **is this node shadow-consistent enough to serve?**
//! A backup is promotion-eligible exactly when its lag is zero — a
//! lagging or late-joining backup first replays retained segments
//! (from the primary, or from the in-network logger once the primary
//! is gone) until nothing is missing.
//!
//! Unlike the two-node [`crate::backup::BackupEngine`], retries here
//! use per-connection timestamps scanned on the sync tick rather than
//! a timer wheel: a chain run tops out at tens of connections per
//! fleet, where the scan is cheaper than the wheel's bookkeeping.

use crate::messages::ConnKey;
use netsim::{SimDuration, SimTime};
use std::collections::HashMap;
use tcpstack::{NetStack, SeqNum};

/// Per-connection sync state.
#[derive(Debug, Clone, Copy)]
struct ConnSync {
    /// Receive progress acknowledged to the primary (retention release
    /// point on the primary's side).
    last_acked_next: SeqNum,
    /// The ack before that — this node's *own* retention release point
    /// (it keeps one ack window of history to serve deeper backups
    /// after a promotion).
    prev_acked_next: SeqNum,
    /// Highest cumulative ACK seen from the primary (tapped segments).
    highest_primary_ack: Option<SeqNum>,
    /// In-flight missing-segment request: `(from, sent_at)`.
    outstanding_req: Option<(SeqNum, SimTime)>,
    /// Queued for the next ack scan.
    pending_ack: bool,
    /// Parked below the X threshold awaiting the sync tick.
    deferred: bool,
}

/// One ack this node owes the primary: `(conn, acked_next, own
/// retention release point)`.
pub type AckOut = (ConnKey, SeqNum, SeqNum);

/// One missing-segment request to send: `(conn, from, len)`.
pub type MissingOut = (ConnKey, SeqNum, u32);

/// One unhealed gap: `(conn, from, to)` — the logger-query window.
pub type Gap = (ConnKey, SeqNum, SeqNum);

/// See the module docs.
#[derive(Debug, Default)]
pub struct CatchupTracker {
    conns: HashMap<ConnKey, ConnSync>,
    pending: Vec<ConnKey>,
    scratch: Vec<ConnKey>,
    deferred: Vec<ConnKey>,
}

impl CatchupTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        CatchupTracker::default()
    }

    /// Registers a newly shadowed connection at the start of the
    /// client's stream.
    pub fn register(&mut self, key: ConnKey, initial_next: SeqNum) {
        self.conns.entry(key).or_insert(ConnSync {
            last_acked_next: initial_next,
            prev_acked_next: initial_next,
            highest_primary_ack: None,
            outstanding_req: None,
            pending_ack: false,
            deferred: false,
        });
    }

    /// Whether `key` is tracked.
    pub fn knows(&self, key: ConnKey) -> bool {
        self.conns.contains_key(&key)
    }

    /// Tracked connection count.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Queues `key` for the next ack scan (idempotent until it runs).
    pub fn note_activity(&mut self, key: ConnKey) {
        if let Some(c) = self.conns.get_mut(&key) {
            if !c.pending_ack {
                c.pending_ack = true;
                self.pending.push(key);
            }
        }
    }

    /// Records a tapped primary cumulative ACK; returns whether the
    /// connection is tracked (an untracked one needs a bootstrap).
    pub fn on_primary_ack(&mut self, key: ConnKey, ack: SeqNum) -> bool {
        match self.conns.get_mut(&key) {
            Some(c) => {
                c.highest_primary_ack = Some(match c.highest_primary_ack {
                    Some(prev) => prev.max(ack),
                    None => ack,
                });
                true
            }
            None => false,
        }
    }

    /// Clears the in-flight request for `key` (answered or refused).
    pub fn clear_outstanding(&mut self, key: ConnKey) {
        if let Some(c) = self.conns.get_mut(&key) {
            c.outstanding_req = None;
        }
    }

    /// Issues a missing-segment request for `key` if its shadow trails
    /// the primary's ACK and no request is in flight.
    pub fn request_missing(
        &mut self,
        now: SimTime,
        key: ConnKey,
        chunk: usize,
        stack: &NetStack,
        out: &mut Vec<MissingOut>,
    ) {
        let Some(c) = self.conns.get_mut(&key) else {
            return;
        };
        let Some(primary_ack) = c.highest_primary_ack else {
            return;
        };
        let Some(tcb) = stack.sock_by_quad(key.server_quad()).and_then(|s| stack.tcb(s)) else {
            return;
        };
        // Compare against ack_seq (payload + consumed FIN) so a consumed
        // FIN does not read as one missing byte forever.
        let gap = primary_ack.distance(tcb.ack_seq());
        if gap <= 0 {
            c.outstanding_req = None;
            return;
        }
        if c.outstanding_req.is_some() {
            return; // one request in flight per connection
        }
        let from = tcb.rcv_nxt();
        let len = (gap as usize).min(chunk) as u32;
        c.outstanding_req = Some((from, now));
        out.push((key, from, len));
    }

    /// Re-issues requests whose staleness window passed (sync tick).
    pub fn retry_stale(
        &mut self,
        now: SimTime,
        window: SimDuration,
        chunk: usize,
        stack: &NetStack,
        out: &mut Vec<MissingOut>,
    ) {
        let mut stale = std::mem::take(&mut self.scratch);
        stale.clear();
        for (&key, c) in &self.conns {
            if let Some((_, at)) = c.outstanding_req {
                if now.checked_duration_since(at).map(|d| d > window).unwrap_or(false) {
                    stale.push(key);
                }
            }
        }
        for &key in &stale {
            self.clear_outstanding(key);
            self.request_missing(now, key, chunk, stack, out);
        }
        stale.clear();
        self.scratch = stale;
    }

    /// The ack scan (§4.3 X-threshold rule, chained flavour): emits
    /// `(conn, acked_next, own release point)` for every queued
    /// connection whose progress crossed `x_threshold`, or for all of
    /// them when `force` is set (the sync tick). Sub-threshold
    /// connections park on a deferred list the next forced scan
    /// flushes — identical policy to the two-node engine.
    pub fn collect_acks(
        &mut self,
        stack: &NetStack,
        x_threshold: usize,
        force: bool,
        out: &mut Vec<AckOut>,
    ) {
        debug_assert!(self.scratch.is_empty());
        std::mem::swap(&mut self.pending, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let key = self.scratch[i];
            let Some(c) = self.conns.get_mut(&key) else {
                continue;
            };
            c.pending_ack = false;
            let Some(next) = stack
                .sock_by_quad(key.server_quad())
                .and_then(|s| stack.tcb(s))
                .map(|t| t.rcv_nxt())
            else {
                continue;
            };
            let progress = next.distance(c.last_acked_next);
            if progress <= 0 {
                continue;
            }
            if force || progress as u128 >= x_threshold as u128 {
                out.push((key, next, c.prev_acked_next));
                c.prev_acked_next = c.last_acked_next;
                c.last_acked_next = next;
            } else if !c.deferred {
                c.deferred = true;
                self.deferred.push(key);
            }
        }
        self.scratch.clear();
        if force {
            std::mem::swap(&mut self.deferred, &mut self.scratch);
            for i in 0..self.scratch.len() {
                let key = self.scratch[i];
                let Some(c) = self.conns.get_mut(&key) else {
                    continue;
                };
                c.deferred = false;
                let Some(next) = stack
                    .sock_by_quad(key.server_quad())
                    .and_then(|s| stack.tcb(s))
                    .map(|t| t.rcv_nxt())
                else {
                    continue;
                };
                let progress = next.distance(c.last_acked_next);
                if progress <= 0 {
                    continue;
                }
                out.push((key, next, c.prev_acked_next));
                c.prev_acked_next = c.last_acked_next;
                c.last_acked_next = next;
            }
            self.scratch.clear();
        }
    }

    /// Total bytes this node's shadows trail the primary's cumulative
    /// ACKs — zero means shadow-consistent, hence promotion-eligible.
    pub fn lag(&self, stack: &NetStack) -> u64 {
        self.conns
            .iter()
            .filter_map(|(key, c)| {
                let primary_ack = c.highest_primary_ack?;
                let tcb = stack.sock_by_quad(key.server_quad()).and_then(|s| stack.tcb(s))?;
                let gap = primary_ack.distance(tcb.ack_seq());
                (gap > 0).then_some(gap as u64)
            })
            .sum()
    }

    /// The unhealed gaps, as logger-query windows.
    pub fn gaps(&self, stack: &NetStack, out: &mut Vec<Gap>) {
        for (&key, c) in &self.conns {
            let Some(primary_ack) = c.highest_primary_ack else {
                continue;
            };
            let Some(tcb) = stack.sock_by_quad(key.server_quad()).and_then(|s| stack.tcb(s)) else {
                continue;
            };
            if primary_ack.gt(tcb.ack_seq()) {
                out.push((key, tcb.rcv_nxt(), primary_ack));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(p: u16) -> ConnKey {
        ConnKey {
            client_ip: Ipv4Addr::new(10, 1, 0, 1),
            client_port: p,
            server_ip: Ipv4Addr::new(10, 0, 0, 100),
            server_port: 80,
        }
    }

    #[test]
    fn untracked_primary_ack_reports_bootstrap_needed() {
        let mut t = CatchupTracker::new();
        assert!(!t.on_primary_ack(key(1), SeqNum(100)));
        t.register(key(1), SeqNum(1));
        assert!(t.on_primary_ack(key(1), SeqNum(100)));
        assert!(t.knows(key(1)));
    }

    #[test]
    fn primary_ack_is_monotone() {
        let mut t = CatchupTracker::new();
        t.register(key(1), SeqNum(1));
        t.on_primary_ack(key(1), SeqNum(500));
        t.on_primary_ack(key(1), SeqNum(100)); // reordered tap frame
        let c = t.conns[&key(1)];
        assert_eq!(c.highest_primary_ack, Some(SeqNum(500)));
    }

    #[test]
    fn ack_collection_tracks_prev_release_point() {
        // Pure-tracker test: drive the bookkeeping without a stack by
        // exercising the state transitions directly.
        let mut t = CatchupTracker::new();
        t.register(key(1), SeqNum(1));
        let c = t.conns.get_mut(&key(1)).unwrap();
        assert_eq!(c.last_acked_next, SeqNum(1));
        assert_eq!(c.prev_acked_next, SeqNum(1), "both release points start at the stream base");
    }
}
