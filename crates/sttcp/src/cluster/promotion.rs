//! Deterministic, rank-staggered failure detection.
//!
//! Every backup watches the serving primary independently; the
//! promotion *order* is enforced purely by time. Rank 1 uses the
//! paper's detection window (`hb_interval × missed_hb_threshold`);
//! each deeper rank waits two extra heartbeat intervals per rank —
//! long enough for a healthy rank-1 takeover to announce its new
//! topology (which resets the deeper ranks' clocks onto the new
//! primary), short enough that a cascade where rank 1 *also* died
//! converges in bounded time with no election traffic at all.

use crate::config::SttcpConfig;
use netsim::{SimDuration, SimTime};

/// How long a rank-`rank` backup tolerates primary silence before
/// suspecting it. Rank 0 (the primary itself) never suspects.
pub fn detection_deadline(cfg: &SttcpConfig, rank: u8) -> SimDuration {
    let base = cfg.hb_interval.saturating_mul(u64::from(cfg.missed_hb_threshold));
    let stagger = cfg.hb_interval.saturating_mul(2 * u64::from(rank.saturating_sub(1)));
    base + stagger
}

/// The per-backup primary-liveness clock.
#[derive(Debug, Clone, Copy)]
pub struct PromotionTimer {
    last_primary_heard: Option<SimTime>,
    suspected_at: Option<SimTime>,
}

impl PromotionTimer {
    /// Starts the clock: the primary gets a full detection window to
    /// say hello.
    pub fn new(now: SimTime) -> Self {
        PromotionTimer { last_primary_heard: Some(now), suspected_at: None }
    }

    /// A message from the current primary arrived. Also clears an
    /// active suspicion — side-channel evidence of life always wins
    /// over a missed deadline.
    pub fn note_heard(&mut self, now: SimTime) {
        self.last_primary_heard = Some(now);
        self.suspected_at = None;
    }

    /// Restarts the clock for a new reign (topology adoption).
    pub fn reset(&mut self, now: SimTime) {
        *self = PromotionTimer::new(now);
    }

    /// When the watched primary was last heard.
    pub fn last_heard(&self) -> Option<SimTime> {
        self.last_primary_heard
    }

    /// When suspicion began, if it did.
    pub fn suspected_at(&self) -> Option<SimTime> {
        self.suspected_at
    }

    /// Whether the watched primary is currently suspected dead.
    pub fn is_suspected(&self) -> bool {
        self.suspected_at.is_some()
    }

    /// Advances the clock; returns the observed silence when this call
    /// *newly* crossed the deadline (the caller emits the suspicion
    /// mark/trace exactly once).
    pub fn check(&mut self, now: SimTime, deadline: SimDuration) -> Option<SimDuration> {
        if self.suspected_at.is_some() {
            return None;
        }
        let silence = self.last_primary_heard.and_then(|t| now.checked_duration_since(t))?;
        if silence > deadline {
            self.suspected_at = Some(now);
            Some(silence)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn cfg() -> SttcpConfig {
        SttcpConfig::new(Ipv4Addr::new(10, 0, 0, 100), 80)
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn deadlines_stagger_by_two_heartbeats_per_rank() {
        let c = cfg(); // hb 50 ms, threshold 3
        assert_eq!(detection_deadline(&c, 1), ms(150));
        assert_eq!(detection_deadline(&c, 2), ms(250));
        assert_eq!(detection_deadline(&c, 3), ms(350));
    }

    #[test]
    fn timer_suspects_once_and_only_past_the_deadline() {
        let mut t = PromotionTimer::new(SimTime::ZERO);
        assert_eq!(t.check(SimTime::ZERO + ms(150), ms(150)), None, "at deadline: not past it");
        let silence = t.check(SimTime::ZERO + ms(151), ms(150));
        assert_eq!(silence, Some(ms(151)));
        assert!(t.is_suspected());
        assert_eq!(t.check(SimTime::ZERO + ms(200), ms(150)), None, "suspicion fires once");
    }

    #[test]
    fn hearing_the_primary_cancels_suspicion() {
        let mut t = PromotionTimer::new(SimTime::ZERO);
        assert!(t.check(SimTime::ZERO + ms(200), ms(150)).is_some());
        t.note_heard(SimTime::ZERO + ms(210));
        assert!(!t.is_suspected());
        // The clock restarts from the fresh evidence.
        assert_eq!(t.check(SimTime::ZERO + ms(300), ms(150)), None);
        assert!(t.check(SimTime::ZERO + ms(400), ms(150)).is_some());
    }
}
