//! The replication-topology subsystem: primary + N-backup chains,
//! deterministic promotion, and planned migration.
//!
//! This layer generalizes the two-node engines ([`crate::primary`],
//! [`crate::backup`]) to a rank-ordered chain of shadows:
//!
//! * [`Topology`] — the epoch + member list every
//!   [`crate::messages::SideMsg::ClusterHb`] carries, with the
//!   epoch-by-rank promotion rule that makes cascades converge without
//!   elections ([`topology`]).
//! * [`promotion`] — rank-staggered failure detection: rank 1 uses the
//!   paper's window, each deeper rank waits two extra heartbeats, so
//!   at most one member unsuppresses the VIP per reign.
//! * [`catchup`] — per-connection lag accounting; a backup is
//!   promotion-eligible only at lag zero, and closes lag via
//!   missing-segment replays (from the primary, or the in-network
//!   logger once the primary is gone).
//! * [`migration`] — `drain_and_handover()`: a healthy primary fences
//!   itself only after the successor proves shadow-consistency.
//! * [`ClusterEngine`] — one engine for every role; a node starts as
//!   rank-0 primary or rank-k backup and moves through
//!   promotion/retirement as the topology evolves.
//!
//! # Side-channel economy
//!
//! Rank 1 speaks the classic per-connection
//! [`crate::messages::SideMsg::BackupAck`] dialect (it is the two-node
//! protocol, unchanged). Ranks ≥ 2 accumulate their acks and flush a
//! single [`crate::messages::SideMsg::AckBatch`] per sync tick — the
//! side channel grows by one datagram per extra backup per tick, not
//! by another per-connection stream (`bench` records the ratio as
//! `side_channel_overhead_{1,2,3}backups`).
//!
//! # Retention in a chain
//!
//! The primary releases retained bytes at the *minimum* acknowledged
//! point over all live backups. Each backup also keeps its own
//! retention buffer and self-releases one ack window behind its own
//! progress: after a promotion it can serve the deeper ranks' missing
//! segments from that window without ever having been asked to.

pub mod catchup;
pub mod fleet;
pub mod migration;
pub mod promotion;
pub mod topology;

pub use fleet::{build_cluster, ClusterFleet, ClusterFleetSpec};
pub use migration::DrainPhase;
pub use topology::Topology;

use crate::config::{Fencing, SttcpConfig};
use crate::messages::{ConnKey, SideMsg};
use bytes::Bytes;
use catchup::{CatchupTracker, MissingOut};
use migration::{DrainCoordinator, DrainFollower};
use netsim::logger::ReplayQuery;
use netsim::SimTime;
use obs::{Counter, Gauge, Mark, MigrationPhase, SharedRecorder, TraceEvent};
use promotion::PromotionTimer;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use tcpstack::{NetStack, SeqNum, TcpState};

/// Side-channel datagrams are kept under this payload size (same cap
/// as the two-node engines).
const SIDE_CHUNK: usize = crate::primary::SIDE_CHUNK;

/// What a cluster member currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterRole {
    /// Rank 0: serves the VIP, retains bytes, answers replays.
    Primary,
    /// Rank ≥ 1: shadows, acks, waits its staggered turn.
    Backup,
    /// Out of the promotion chain (superseded or handed over); still
    /// answers missing-segment requests from its retained bytes.
    Retired,
}

/// Cluster-engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    /// Topology heartbeats sent (one per backup per tick as primary).
    pub hbs_sent: u64,
    /// Topology heartbeats received.
    pub hbs_received: u64,
    /// Topologies adopted from a higher epoch.
    pub adoptions: u64,
    /// Times this node promoted itself to primary.
    pub promotions: u64,
    /// Planned migrations completed (as the retiring primary).
    pub migrations: u64,
    /// Per-connection acks sent (rank-1 dialect).
    pub acks_sent: u64,
    /// Multiplexed ack batches sent (rank ≥ 2 dialect).
    pub ack_batches_sent: u64,
    /// Entries across all sent ack batches.
    pub ack_batch_entries: u64,
    /// Peer acks applied to retention (as primary, entries included).
    pub acks_applied: u64,
    /// Missing-segment requests sent.
    pub missing_reqs: u64,
    /// Missing-segment replies served (as primary/retired).
    pub missing_served: u64,
    /// Missing-segment requests refused.
    pub missing_nacked: u64,
    /// Bytes recovered into this node's shadows via replays.
    pub missing_bytes_recovered: u64,
    /// Catch-up replay rounds applied (MissingData datagrams).
    pub catchup_replays: u64,
    /// Logger replay-window queries issued.
    pub logger_queries: u64,
    /// Full-history bootstrap queries issued.
    pub bootstrap_queries: u64,
    /// Backups that returned from the dead (as primary).
    pub reintegrations: u64,
}

#[derive(Debug, Clone, Copy)]
struct PeerState {
    last_heard: SimTime,
    alive: bool,
}

/// See the module docs.
pub struct ClusterEngine {
    cfg: SttcpConfig,
    self_ip: Ipv4Addr,
    topo: Topology,
    role: ClusterRole,
    x_threshold: usize,
    timer: PromotionTimer,
    catchup: CatchupTracker,
    drain: DrainCoordinator,
    follower: DrainFollower,
    ready_traced: bool,
    hb_seq: u64,
    /// Backup liveness, as primary.
    peers: HashMap<Ipv4Addr, PeerState>,
    /// Per-connection, per-backup acknowledged points (primary side);
    /// retention releases at the minimum over live backups.
    peer_acks: HashMap<ConnKey, HashMap<Ipv4Addr, SeqNum>>,
    /// Last congestion snapshot mirrored per connection (primary side,
    /// [`SttcpConfig::cong_sync`]); suppresses no-change rebroadcasts.
    cong_sent: HashMap<ConnKey, (u32, u32)>,
    retention_on: bool,
    takeover_at: Option<SimTime>,
    outbox: Vec<(Ipv4Addr, SideMsg)>,
    fence_request: Option<u32>,
    logger_queries: Vec<ReplayQuery>,
    last_logger_query: Option<SimTime>,
    bootstrap_attempts: HashMap<ConnKey, SimTime>,
    ack_scratch: Vec<catchup::AckOut>,
    req_scratch: Vec<MissingOut>,
    gap_scratch: Vec<catchup::Gap>,
    recorder: SharedRecorder,
    /// Counters.
    pub stats: ClusterStats,
}

impl ClusterEngine {
    /// Creates the engine for the member `self_ip` of `topology`.
    /// Rank 0 starts as primary, everyone else as a backup.
    pub fn new(
        cfg: SttcpConfig,
        self_ip: Ipv4Addr,
        topology: Topology,
        x_threshold: usize,
        now: SimTime,
    ) -> Self {
        let rank = topology
            .rank_of(self_ip)
            .unwrap_or_else(|| panic!("{self_ip} is not a member of the topology"));
        let role = if rank == 0 { ClusterRole::Primary } else { ClusterRole::Backup };
        let peers = if rank == 0 {
            topology
                .backups()
                .iter()
                .map(|&ip| (ip, PeerState { last_heard: now, alive: true }))
                .collect()
        } else {
            HashMap::new()
        };
        let recorder = obs::nop();
        let engine = ClusterEngine {
            cfg,
            self_ip,
            topo: topology,
            role,
            x_threshold,
            timer: PromotionTimer::new(now),
            catchup: CatchupTracker::new(),
            drain: DrainCoordinator::new(),
            follower: DrainFollower::new(),
            ready_traced: false,
            hb_seq: 0,
            peers,
            peer_acks: HashMap::new(),
            cong_sent: HashMap::new(),
            retention_on: true,
            takeover_at: None,
            outbox: Vec::new(),
            fence_request: None,
            logger_queries: Vec::new(),
            last_logger_query: None,
            bootstrap_attempts: HashMap::new(),
            ack_scratch: Vec::new(),
            req_scratch: Vec::new(),
            gap_scratch: Vec::new(),
            recorder,
            stats: ClusterStats::default(),
        };
        engine.recorder.gauge_max(Gauge::PromotionRank, u64::from(rank) + 1);
        engine
    }

    /// Installs an observability recorder (no-op by default).
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
        let rank = self.topo.rank_of(self.self_ip).unwrap_or(0);
        self.recorder.gauge_max(Gauge::PromotionRank, u64::from(rank) + 1);
    }

    /// Current role.
    pub fn role(&self) -> ClusterRole {
        self.role
    }

    /// Current topology view.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// This node's rank in its current topology view.
    pub fn rank(&self) -> Option<u8> {
        self.topo.rank_of(self.self_ip)
    }

    /// Whether this node currently serves the VIP.
    pub fn is_primary_now(&self) -> bool {
        self.role == ClusterRole::Primary
    }

    /// Whether this node promoted itself at some point.
    pub fn has_taken_over(&self) -> bool {
        self.takeover_at.is_some()
    }

    /// When this node promoted itself.
    pub fn takeover_at(&self) -> Option<SimTime> {
        self.takeover_at
    }

    /// When this node first suspected its current primary.
    pub fn suspected_at(&self) -> Option<SimTime> {
        self.timer.suspected_at()
    }

    /// Shadow lag in bytes (promotion-eligible at zero).
    pub fn catchup_lag(&self, stack: &NetStack) -> u64 {
        self.catchup.lag(stack)
    }

    /// Primary-side drain phase.
    pub fn drain_phase(&self) -> DrainPhase {
        self.drain.phase()
    }

    /// Schedules `drain_and_handover()` to the rank-`successor_rank`
    /// backup at `at` (call on the serving primary).
    pub fn schedule_drain(&mut self, at: SimTime, successor_rank: u8) {
        self.drain.schedule(at, successor_rank);
    }

    /// Registers a newly shadowed connection (backup role).
    pub fn register_conn(&mut self, key: ConnKey, initial_next: SeqNum) {
        self.catchup.register(key, initial_next);
    }

    /// Notes receive progress on `key`'s shadow (queues an ack check).
    pub fn note_activity(&mut self, key: ConnKey) {
        self.catchup.note_activity(key);
    }

    /// Handles one side-channel datagram from `from`.
    pub fn on_side_msg(
        &mut self,
        now: SimTime,
        from: Ipv4Addr,
        msg: SideMsg,
        stack: &mut NetStack,
    ) {
        // Topology adoption first: the liveness check below must judge
        // `from` against the *new* reign when this very message
        // announces one.
        if let SideMsg::ClusterHb { epoch, members, .. } = &msg {
            self.stats.hbs_received += 1;
            self.recorder.count(Counter::HeartbeatsReceived, 1);
            if *epoch > self.topo.epoch() {
                let members = members.clone();
                self.adopt(now, *epoch, members, stack);
            }
        }
        if from == self.topo.primary() && self.role != ClusterRole::Primary {
            self.timer.note_heard(now);
            self.recorder.mark_latest(Mark::LastPrimaryHeard, now.as_nanos());
        }
        if self.role == ClusterRole::Primary {
            self.note_peer(now, from);
        }
        match msg {
            SideMsg::ClusterHb { .. } => {} // handled above
            SideMsg::Heartbeat { .. } => {}
            SideMsg::BackupAck { conn, acked_next } => {
                self.apply_peer_ack(from, conn, SeqNum(acked_next), stack);
            }
            SideMsg::AckBatch { rank: _, entries } => {
                for (conn, acked_next) in entries {
                    self.apply_peer_ack(from, conn, SeqNum(acked_next), stack);
                }
            }
            SideMsg::MissingReq { conn, from: seq_from, len } => {
                if matches!(self.role, ClusterRole::Primary | ClusterRole::Retired) {
                    self.serve_missing(from, conn, SeqNum(seq_from), len as usize, stack);
                }
            }
            SideMsg::MissingData { conn, seq, data } => {
                if self.role == ClusterRole::Backup {
                    self.apply_missing_data(now, conn, SeqNum(seq), &data, stack);
                }
            }
            SideMsg::CongSync { conn, cwnd, ssthresh } => {
                if self.role == ClusterRole::Backup {
                    if let Some(sock) = stack.sock_by_quad(conn.server_quad()) {
                        if let Some(tcb) = stack.tcb_mut(sock) {
                            tcb.import_congestion(tcpstack::CongSnapshot { cwnd, ssthresh });
                        }
                    }
                }
            }
            SideMsg::MissingNack { conn, .. } => {
                self.catchup.clear_outstanding(conn);
                if self.role == ClusterRole::Backup && self.cfg.use_logger {
                    // The primary no longer holds those bytes; only the
                    // in-network logger can heal the gap now.
                    self.queue_logger_queries(now, stack);
                }
            }
            SideMsg::Drain { epoch, successor_rank } => {
                if self.role == ClusterRole::Backup {
                    if let Some(rank) = self.topo.rank_of(self.self_ip) {
                        if self.follower.on_drain(rank, self.topo.epoch(), epoch, successor_rank) {
                            self.ready_traced = false;
                        }
                    }
                }
            }
            SideMsg::DrainReady { rank, epoch } => {
                if self.role == ClusterRole::Primary && self.drain.on_drain_ready(rank, epoch) {
                    if let Some(&succ) = self.topo.members().get(usize::from(rank)) {
                        self.outbox.push((succ, SideMsg::Handover { epoch }));
                    }
                    // Fence ourselves: the successor owns the VIP the
                    // instant it reads the Handover. Retention stays on —
                    // the residual retained bytes are served from here.
                    stack.suppress(now, self.cfg.vip);
                    self.role = ClusterRole::Retired;
                    self.stats.migrations += 1;
                    self.recorder.count(Counter::PlannedMigrations, 1);
                    self.recorder.trace(
                        now.as_nanos(),
                        &TraceEvent::PlannedMigration { phase: MigrationPhase::HandedOver, epoch },
                    );
                }
            }
            SideMsg::Handover { epoch } => {
                if self.role == ClusterRole::Backup {
                    if let Some(epoch) = self.follower.on_handover(epoch) {
                        // The handover is the (benign) death certificate
                        // of the old reign; the takeover marks keep their
                        // crash-case meaning so TakeoverBreakdown reads
                        // the same either way.
                        self.recorder.mark_first(Mark::SuspectedPrimaryDead, now.as_nanos());
                        self.promote(now, stack, Some(epoch));
                    }
                }
            }
        }
    }

    /// Inspects a tapped primary→client TCP segment (backup role; the
    /// node adapter feeds every mirrored VIP-sourced ACK here).
    pub fn on_tapped_primary_segment(
        &mut self,
        now: SimTime,
        key: ConnKey,
        primary_seq: SeqNum,
        primary_ack: SeqNum,
        is_syn: bool,
        stack: &mut NetStack,
    ) {
        if self.role != ClusterRole::Backup {
            return;
        }
        if is_syn {
            match stack.sock_by_quad(key.server_quad()) {
                Some(sock) => {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.shadow_resync_iss(now, primary_seq);
                    }
                }
                None => self.maybe_bootstrap(now, key, primary_ack),
            }
            return; // a SYN/ACK's ack field is the handshake, not data
        }
        if stack.sock_by_quad(key.server_quad()).is_none() {
            self.maybe_bootstrap(now, key, primary_ack);
            return;
        }
        if self.catchup.on_primary_ack(key, primary_ack) {
            self.request_missing_now(now, key, stack);
        }
    }

    /// The backup ack strategy (§4.3, chained): rank 1 checks the
    /// X threshold on every pump, ranks ≥ 2 only flush on the forced
    /// sync tick (one multiplexed batch per tick).
    pub fn maybe_send_acks(&mut self, stack: &mut NetStack, force: bool) {
        if self.role != ClusterRole::Backup {
            return;
        }
        let Some(rank) = self.topo.rank_of(self.self_ip) else {
            return;
        };
        if rank >= 2 && !force {
            return;
        }
        let mut acks = std::mem::take(&mut self.ack_scratch);
        acks.clear();
        self.catchup.collect_acks(stack, self.x_threshold, force, &mut acks);
        // Self-release: keep exactly one ack window of retained history
        // to serve deeper backups after a promotion; release the rest
        // so the shadow's advertised window never collapses under
        // retention spill.
        for &(key, _, prev) in &acks {
            if let Some(sock) = stack.sock_by_quad(key.server_quad()) {
                if let Some(tcb) = stack.tcb_mut(sock) {
                    tcb.set_backup_acked(prev);
                }
            }
        }
        let primary = self.topo.primary();
        if rank == 1 {
            for &(key, next, _) in &acks {
                self.stats.acks_sent += 1;
                self.recorder.count(Counter::BackupAcksSent, 1);
                self.outbox
                    .push((primary, SideMsg::BackupAck { conn: key, acked_next: next.raw() }));
            }
        } else if !acks.is_empty() {
            let entries: Vec<(ConnKey, u32)> =
                acks.iter().map(|&(key, next, _)| (key, next.raw())).collect();
            self.stats.ack_batches_sent += 1;
            self.stats.ack_batch_entries += entries.len() as u64;
            self.recorder.count(Counter::AckBatchesSent, 1);
            self.recorder.count(Counter::AckBatchEntries, entries.len() as u64);
            self.outbox.push((primary, SideMsg::AckBatch { rank, entries }));
        }
        acks.clear();
        self.ack_scratch = acks;
    }

    /// Periodic tick, role-dispatched.
    pub fn on_tick(&mut self, now: SimTime, stack: &mut NetStack) {
        match self.role {
            ClusterRole::Primary => self.primary_tick(now, stack),
            ClusterRole::Backup => self.backup_tick(now, stack),
            ClusterRole::Retired => {}
        }
    }

    /// Drains queued `(destination, message)` pairs into `out`.
    pub fn drain_outbox_into(&mut self, out: &mut Vec<(Ipv4Addr, SideMsg)>) {
        out.append(&mut self.outbox);
    }

    /// Takes the pending fence request (power-switch outlet), if any.
    pub fn take_fence_request(&mut self) -> Option<u32> {
        self.fence_request.take()
    }

    /// Takes the pending logger replay queries.
    pub fn take_logger_queries(&mut self) -> Vec<ReplayQuery> {
        std::mem::take(&mut self.logger_queries)
    }

    // --- internals --------------------------------------------------

    fn adopt(&mut self, now: SimTime, epoch: u32, members: Vec<Ipv4Addr>, stack: &mut NetStack) {
        self.topo = Topology::with_epoch(epoch, members);
        self.stats.adoptions += 1;
        match self.topo.rank_of(self.self_ip) {
            Some(0) => {
                // Only reachable if another node proclaimed us primary
                // (a handover we missed); honour it.
                if self.role != ClusterRole::Primary {
                    self.become_primary(now, stack);
                }
            }
            Some(rank) => {
                if self.role == ClusterRole::Primary {
                    // Superseded: a higher reign exists. Yield the VIP
                    // immediately — at-most-one-server is the invariant
                    // everything else exists to protect.
                    stack.suppress(now, self.cfg.vip);
                }
                self.role = ClusterRole::Backup;
                self.timer.reset(now);
                self.recorder.gauge_max(Gauge::PromotionRank, u64::from(rank) + 1);
            }
            None => {
                if self.role == ClusterRole::Primary {
                    stack.suppress(now, self.cfg.vip);
                }
                self.role = ClusterRole::Retired;
            }
        }
    }

    fn note_peer(&mut self, now: SimTime, from: Ipv4Addr) {
        if from == self.self_ip || self.topo.rank_of(from).is_none() {
            return;
        }
        let entry = self.peers.entry(from).or_insert(PeerState { last_heard: now, alive: true });
        if !entry.alive {
            entry.alive = true;
            self.stats.reintegrations += 1;
        }
        entry.last_heard = now;
    }

    fn apply_peer_ack(
        &mut self,
        from: Ipv4Addr,
        key: ConnKey,
        acked: SeqNum,
        stack: &mut NetStack,
    ) {
        if self.role != ClusterRole::Primary || !self.retention_on {
            return;
        }
        self.stats.acks_applied += 1;
        self.recorder.count(Counter::BackupAcksReceived, 1);
        let entry = self.peer_acks.entry(key).or_default();
        let slot = entry.entry(from).or_insert(acked);
        *slot = (*slot).max(acked);
        self.release_conn(key, stack);
    }

    /// Releases `key`'s retention at the minimum acknowledged point
    /// over live backups — but only once *every* live backup has acked
    /// the connection at least once (until then its floor is unknown
    /// and everything is held; the per-tick forced ack bounds that
    /// wait to one sync interval).
    fn release_conn(&mut self, key: ConnKey, stack: &mut NetStack) {
        let Some(entry) = self.peer_acks.get(&key) else {
            return;
        };
        let mut floor: Option<SeqNum> = None;
        for (ip, peer) in &self.peers {
            if !peer.alive {
                continue;
            }
            match entry.get(ip) {
                Some(&acked) => {
                    floor = Some(match floor {
                        Some(f) => f.min(acked),
                        None => acked,
                    });
                }
                None => return,
            }
        }
        let Some(floor) = floor else {
            return;
        };
        if let Some(sock) = stack.sock_by_quad(key.server_quad()) {
            if let Some(tcb) = stack.tcb_mut(sock) {
                tcb.set_backup_acked(floor);
            }
        }
    }

    fn serve_missing(
        &mut self,
        to: Ipv4Addr,
        conn: ConnKey,
        from: SeqNum,
        len: usize,
        stack: &mut NetStack,
    ) {
        let tcb = stack.sock_by_quad(conn.server_quad()).and_then(|s| stack.tcb(s));
        let Some(tcb) = tcb else {
            self.nack(to, conn, from);
            return;
        };
        let rcv_nxt = tcb.rcv_nxt();
        let want_end = from.add(len as u32).min(rcv_nxt);
        let avail = want_end.distance(from);
        if avail <= 0 {
            self.nack(to, conn, from);
            return;
        }
        match tcb.fetch_rx(from, avail as usize) {
            Some(bytes) => {
                self.stats.missing_served += 1;
                self.recorder.count(Counter::MissingRepliesServed, 1);
                for (i, chunk) in bytes.chunks(SIDE_CHUNK).enumerate() {
                    let seq = from.add((i * SIDE_CHUNK) as u32);
                    self.outbox.push((
                        to,
                        SideMsg::MissingData {
                            conn,
                            seq: seq.raw(),
                            data: Bytes::copy_from_slice(chunk),
                        },
                    ));
                }
            }
            None => self.nack(to, conn, from),
        }
    }

    fn nack(&mut self, to: Ipv4Addr, conn: ConnKey, from: SeqNum) {
        self.stats.missing_nacked += 1;
        self.recorder.count(Counter::MissingNacks, 1);
        self.outbox.push((to, SideMsg::MissingNack { conn, from: from.raw() }));
    }

    fn apply_missing_data(
        &mut self,
        now: SimTime,
        conn: ConnKey,
        seq: SeqNum,
        data: &[u8],
        stack: &mut NetStack,
    ) {
        if let Some(sock) = stack.sock_by_quad(conn.server_quad()) {
            if let Some(tcb) = stack.tcb_mut(sock) {
                tcb.inject_rx(now, seq, data);
                self.stats.missing_bytes_recovered += data.len() as u64;
            }
        }
        self.stats.catchup_replays += 1;
        self.recorder.count(Counter::CatchupReplays, 1);
        self.catchup.clear_outstanding(conn);
        self.catchup.note_activity(conn);
        // Chase the remaining gap, if any.
        self.request_missing_now(now, conn, stack);
    }

    fn maybe_bootstrap(&mut self, now: SimTime, key: ConnKey, primary_ack: SeqNum) {
        if !self.cfg.use_logger {
            return; // without a logger the history is unrecoverable
        }
        let retry = self.cfg.effective_sync_time().saturating_mul(2);
        if let Some(&last) = self.bootstrap_attempts.get(&key) {
            let due = now.checked_duration_since(last).map(|d| d >= retry).unwrap_or(false);
            if !due {
                return;
            }
        }
        self.bootstrap_attempts.insert(key, now);
        self.stats.bootstrap_queries += 1;
        self.recorder.count(Counter::BootstrapQueries, 1);
        self.logger_queries.push(ReplayQuery {
            src_ip: key.client_ip,
            dst_ip: key.server_ip,
            src_port: key.client_port,
            dst_port: key.server_port,
            seq_from: primary_ack.sub(1 << 30).raw(),
            seq_to: primary_ack.add(1 << 20).raw(),
        });
    }

    fn request_missing_now(&mut self, now: SimTime, key: ConnKey, stack: &NetStack) {
        let mut reqs = std::mem::take(&mut self.req_scratch);
        reqs.clear();
        self.catchup.request_missing(now, key, self.cfg.missing_req_chunk, stack, &mut reqs);
        self.push_missing_reqs(&mut reqs);
        self.req_scratch = reqs;
    }

    fn push_missing_reqs(&mut self, reqs: &mut Vec<MissingOut>) {
        let primary = self.topo.primary();
        for (key, from, len) in reqs.drain(..) {
            self.stats.missing_reqs += 1;
            self.recorder.count(Counter::MissingReqsSent, 1);
            self.outbox.push((primary, SideMsg::MissingReq { conn: key, from: from.raw(), len }));
        }
    }

    fn broadcast_topology(&mut self) {
        self.hb_seq += 1;
        for &backup in self.topo.backups() {
            self.outbox.push((
                backup,
                SideMsg::ClusterHb {
                    seq: self.hb_seq,
                    epoch: self.topo.epoch(),
                    sender_rank: 0,
                    members: self.topo.members().to_vec(),
                },
            ));
            self.stats.hbs_sent += 1;
            self.recorder.count(Counter::HeartbeatsSent, 1);
        }
    }

    fn primary_tick(&mut self, now: SimTime, stack: &mut NetStack) {
        self.broadcast_topology();
        if self.cfg.cong_sync {
            self.mirror_congestion(stack);
        }
        // Planned migration: announce the drain while it is active.
        let (announce, started) = self.drain.on_tick(now, self.topo.epoch());
        if started {
            self.recorder.trace(
                now.as_nanos(),
                &TraceEvent::PlannedMigration {
                    phase: MigrationPhase::DrainStarted,
                    epoch: self.drain.handover_epoch(),
                },
            );
        }
        if let Some(rank) = announce {
            if let Some(&succ) = self.topo.members().get(usize::from(rank)) {
                self.outbox.push((
                    succ,
                    SideMsg::Drain { epoch: self.drain.handover_epoch(), successor_rank: rank },
                ));
            }
        }
        // Backup liveness (§4.4, N-ary): a silent backup stops gating
        // retention release; when the *last* one goes silent the node
        // transitions to non-fault-tolerant mode exactly like the
        // two-node primary.
        let deadline = self.cfg.hb_interval.saturating_mul(u64::from(self.cfg.missed_hb_threshold));
        let mut any_died = false;
        let mut max_silence = 0u64;
        for peer in self.peers.values_mut() {
            if !peer.alive {
                continue;
            }
            let silence = now.checked_duration_since(peer.last_heard);
            if silence.map(|d| d > deadline).unwrap_or(false) {
                peer.alive = false;
                any_died = true;
                max_silence = max_silence.max(silence.map(|d| d.as_nanos()).unwrap_or(0));
            }
        }
        if any_died {
            if self.peers.values().any(|p| p.alive) {
                // The dead peer no longer gates releases: re-derive
                // every connection's floor from the survivors.
                let keys: Vec<ConnKey> = self.peer_acks.keys().copied().collect();
                for key in keys {
                    self.release_conn(key, stack);
                }
            } else if self.retention_on {
                self.retention_on = false;
                self.recorder
                    .trace(now.as_nanos(), &TraceEvent::BackupDead { silent_ns: max_silence });
                let socks: Vec<_> = stack.socks().collect();
                for sock in socks {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.disable_retention();
                    }
                }
            }
        }
        // A freshly promoted primary may still have gaps of its own;
        // keep asking the logger while they last.
        if self.takeover_at.is_some() && self.cfg.use_logger && self.logger_query_due(now) {
            self.queue_logger_queries(now, stack);
        }
    }

    /// Mirrors each established connection's congestion snapshot to
    /// every live backup when it changed since the last tick
    /// ([`SttcpConfig::cong_sync`]).
    fn mirror_congestion(&mut self, stack: &mut NetStack) {
        let dests: Vec<Ipv4Addr> =
            self.peers.iter().filter(|(_, p)| p.alive).map(|(&ip, _)| ip).collect();
        if dests.is_empty() {
            return;
        }
        let socks: Vec<_> = stack.socks().collect();
        for sock in socks {
            let Some(tcb) = stack.tcb(sock) else { continue };
            if tcb.state() != TcpState::Established {
                continue;
            }
            let conn = ConnKey::from_server_quad(tcb.quad());
            let snap = tcb.export_congestion();
            let pair = (snap.cwnd, snap.ssthresh);
            if self.cong_sent.insert(conn, pair) != Some(pair) {
                for &dest in &dests {
                    self.recorder.count(Counter::CongSyncsSent, 1);
                    self.outbox.push((
                        dest,
                        SideMsg::CongSync { conn, cwnd: snap.cwnd, ssthresh: snap.ssthresh },
                    ));
                }
            }
        }
    }

    fn backup_tick(&mut self, now: SimTime, stack: &mut NetStack) {
        self.maybe_send_acks(stack, true);
        // Liveness towards the primary (the classic heartbeat tag —
        // payload-free, and the primary treats any datagram as life).
        self.hb_seq += 1;
        self.outbox.push((self.topo.primary(), SideMsg::Heartbeat { seq: self.hb_seq }));
        // Retry stale missing-segment requests.
        let window = self.cfg.effective_sync_time().saturating_mul(2);
        let mut reqs = std::mem::take(&mut self.req_scratch);
        reqs.clear();
        self.catchup.retry_stale(now, window, self.cfg.missing_req_chunk, stack, &mut reqs);
        self.push_missing_reqs(&mut reqs);
        self.req_scratch = reqs;
        let lag = self.catchup.lag(stack);
        self.recorder.gauge_max(Gauge::CatchupLagBytes, lag);
        // Failure detection, staggered by rank.
        let Some(rank) = self.topo.rank_of(self.self_ip) else {
            return;
        };
        let deadline = promotion::detection_deadline(&self.cfg, rank);
        if let Some(silence) = self.timer.check(now, deadline) {
            self.recorder.mark_first(Mark::SuspectedPrimaryDead, now.as_nanos());
            self.recorder
                .trace(now.as_nanos(), &TraceEvent::Suspected { silent_ns: silence.as_nanos() });
            if let Fencing::PowerSwitch { outlet } = self.cfg.fencing {
                self.fence_request = Some(outlet);
                self.recorder.mark_first(Mark::FenceRequested, now.as_nanos());
                self.recorder.trace(now.as_nanos(), &TraceEvent::Fence { outlet });
            }
            if self.cfg.use_logger && lag > 0 {
                self.queue_logger_queries(now, stack);
            }
        }
        if self.timer.is_suspected() {
            if lag == 0 {
                // Shadow-consistent: promote. The staggered deadline
                // already ordered us behind every shallower rank.
                self.promote(now, stack, None);
                return;
            }
            // Ineligible: keep healing. The primary is suspected dead,
            // so only the logger can close the gap.
            if self.cfg.use_logger && self.logger_query_due(now) {
                self.queue_logger_queries(now, stack);
            }
        }
        // Planned migration: while a drain names us and we are
        // shadow-consistent, tell the primary we are ready.
        if let Some((epoch, drain_rank)) = self.follower.pending() {
            if lag == 0 {
                if !self.ready_traced {
                    self.ready_traced = true;
                    self.recorder.trace(
                        now.as_nanos(),
                        &TraceEvent::PlannedMigration {
                            phase: MigrationPhase::SuccessorReady,
                            epoch,
                        },
                    );
                }
                self.outbox
                    .push((self.topo.primary(), SideMsg::DrainReady { rank: drain_rank, epoch }));
            }
        }
    }

    fn logger_query_due(&self, now: SimTime) -> bool {
        self.last_logger_query
            .map(|t| {
                now.checked_duration_since(t)
                    .map(|d| d >= self.cfg.effective_sync_time().saturating_mul(2))
                    .unwrap_or(false)
            })
            .unwrap_or(true)
    }

    fn queue_logger_queries(&mut self, now: SimTime, stack: &NetStack) {
        self.last_logger_query = Some(now);
        let mut gaps = std::mem::take(&mut self.gap_scratch);
        gaps.clear();
        self.catchup.gaps(stack, &mut gaps);
        for &(key, from, to) in &gaps {
            self.logger_queries.push(ReplayQuery {
                src_ip: key.client_ip,
                dst_ip: key.server_ip,
                src_port: key.client_port,
                dst_port: key.server_port,
                seq_from: from.raw(),
                seq_to: to.raw(),
            });
            self.stats.logger_queries += 1;
            self.recorder.count(Counter::LoggerQueries, 1);
        }
        gaps.clear();
        self.gap_scratch = gaps;
    }

    fn become_primary(&mut self, now: SimTime, stack: &mut NetStack) {
        stack.unsuppress(now, self.cfg.vip);
        self.role = ClusterRole::Primary;
        self.takeover_at = Some(now);
        self.recorder.mark_first(Mark::TakeoverUnsuppressed, now.as_nanos());
        self.recorder.trace(now.as_nanos(), &TraceEvent::Promoted);
        self.stats.promotions += 1;
        self.recorder.gauge_max(Gauge::PromotionRank, 1);
        self.peers = self
            .topo
            .backups()
            .iter()
            .map(|&ip| (ip, PeerState { last_heard: now, alive: true }))
            .collect();
        self.peer_acks.clear();
    }

    fn promote(&mut self, now: SimTime, stack: &mut NetStack, epoch_override: Option<u32>) {
        let rank = self.topo.rank_of(self.self_ip).expect("only members promote");
        let new_topo = self.topo.promoted(rank);
        if let Some(epoch) = epoch_override {
            debug_assert_eq!(
                epoch,
                new_topo.epoch(),
                "handover epoch must match the epoch-by-rank rule"
            );
        }
        self.topo = new_topo;
        self.become_primary(now, stack);
        // Announce the new reign immediately — deeper ranks re-anchor
        // their detection clocks on us instead of promoting in parallel.
        self.broadcast_topology();
        if self.cfg.use_logger {
            self.queue_logger_queries(now, stack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;
    use tcpstack::StackConfig;
    use wire::MacAddr;

    const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn cfg() -> SttcpConfig {
        SttcpConfig::new(VIP, 80)
    }

    fn topo() -> Topology {
        Topology::new(vec![ip(2), ip(3), ip(4)])
    }

    fn stack_for(last: u8, suppressed: bool) -> NetStack {
        let mut c = StackConfig::host(MacAddr::local(u32::from(last)), ip(last));
        c.extra_ips = vec![VIP];
        if suppressed {
            c.suppressed_ips = vec![VIP];
        }
        NetStack::new(c)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn primary_broadcasts_the_topology_to_every_backup() {
        let mut e = ClusterEngine::new(cfg(), ip(2), topo(), 1024, SimTime::ZERO);
        let mut s = stack_for(2, false);
        e.on_tick(t(50), &mut s);
        let mut out = Vec::new();
        e.drain_outbox_into(&mut out);
        let hbs: Vec<_> =
            out.iter().filter(|(_, m)| matches!(m, SideMsg::ClusterHb { .. })).collect();
        assert_eq!(hbs.len(), 2, "one targeted heartbeat per backup");
        assert_eq!(hbs[0].0, ip(3));
        assert_eq!(hbs[1].0, ip(4));
        for (_, m) in &hbs {
            let SideMsg::ClusterHb { epoch, sender_rank, members, .. } = m else { unreachable!() };
            assert_eq!(*epoch, 0);
            assert_eq!(*sender_rank, 0);
            assert_eq!(members, topo().members());
        }
    }

    #[test]
    fn rank1_promotes_at_its_deadline_and_announces_the_new_reign() {
        let mut e = ClusterEngine::new(cfg(), ip(3), topo(), 1024, SimTime::ZERO);
        let mut s = stack_for(3, true);
        assert!(s.is_suppressed(VIP));
        // hb 50 ms × threshold 3 → deadline 150 ms for rank 1.
        e.on_tick(t(150), &mut s);
        assert_eq!(e.role(), ClusterRole::Backup, "not past the deadline yet");
        e.on_tick(t(200), &mut s);
        assert_eq!(e.role(), ClusterRole::Primary);
        assert!(!s.is_suppressed(VIP), "takeover lifts the suppression");
        assert_eq!(e.topology().epoch(), 1);
        assert_eq!(e.topology().members(), &[ip(3), ip(4)]);
        let mut out = Vec::new();
        e.drain_outbox_into(&mut out);
        assert!(
            out.iter()
                .any(|(to, m)| *to == ip(4) && matches!(m, SideMsg::ClusterHb { epoch: 1, .. })),
            "the new primary announces its reign to the survivors at once"
        );
    }

    #[test]
    fn rank2_waits_out_its_stagger_and_re_anchors_on_the_new_primary() {
        let mut e = ClusterEngine::new(cfg(), ip(4), topo(), 1024, SimTime::ZERO);
        let mut s = stack_for(4, true);
        // Rank 2's deadline is 150 + 100 = 250 ms; at 200 ms it still
        // waits even though rank 1 would have promoted already.
        e.on_tick(t(200), &mut s);
        assert_eq!(e.role(), ClusterRole::Backup);
        assert!(s.is_suppressed(VIP));
        // The new primary's heartbeat arrives: adopt, reset the clock.
        e.on_side_msg(
            t(205),
            ip(3),
            SideMsg::ClusterHb { seq: 1, epoch: 1, sender_rank: 0, members: vec![ip(3), ip(4)] },
            &mut s,
        );
        assert_eq!(e.topology().epoch(), 1);
        assert_eq!(e.rank(), Some(1), "rank 2 became rank 1 under the new reign");
        // Old deadline instant passes harmlessly — the clock restarted.
        e.on_tick(t(260), &mut s);
        assert_eq!(e.role(), ClusterRole::Backup);
        // But the new primary's silence is detected on the rank-1
        // deadline measured from the adoption.
        e.on_tick(t(400), &mut s);
        assert_eq!(e.role(), ClusterRole::Primary, "cascade: promoted over the new reign");
        assert_eq!(e.topology().epoch(), 2, "epoch-by-rank: both paths converge on 2");
        assert_eq!(e.topology().members(), &[ip(4)]);
    }

    #[test]
    fn superseded_primary_yields_the_vip() {
        let mut e = ClusterEngine::new(cfg(), ip(2), topo(), 1024, SimTime::ZERO);
        let mut s = stack_for(2, false);
        assert!(!s.is_suppressed(VIP));
        // A higher reign that still lists us (e.g. we were wrongly
        // suspected): we yield and fall in line as a backup.
        e.on_side_msg(
            t(300),
            ip(3),
            SideMsg::ClusterHb { seq: 9, epoch: 3, sender_rank: 0, members: vec![ip(3), ip(2)] },
            &mut s,
        );
        assert_eq!(e.role(), ClusterRole::Backup);
        assert!(s.is_suppressed(VIP), "at most one server sources the VIP");
        // And a reign that drops us entirely retires us.
        e.on_side_msg(
            t(400),
            ip(4),
            SideMsg::ClusterHb { seq: 1, epoch: 5, sender_rank: 0, members: vec![ip(4)] },
            &mut s,
        );
        assert_eq!(e.role(), ClusterRole::Retired);
    }

    #[test]
    fn planned_migration_hands_over_with_matching_epochs() {
        let mut p = ClusterEngine::new(cfg(), ip(2), topo(), 1024, SimTime::ZERO);
        let mut b = ClusterEngine::new(cfg(), ip(3), topo(), 1024, SimTime::ZERO);
        let mut ps = stack_for(2, false);
        let mut bs = stack_for(3, true);
        p.schedule_drain(t(100), 1);
        // Tick the primary past the schedule: it announces the drain.
        p.on_tick(t(100), &mut ps);
        assert_eq!(p.drain_phase(), DrainPhase::Draining);
        let mut out = Vec::new();
        p.drain_outbox_into(&mut out);
        let drain = out
            .iter()
            .find(|(to, m)| *to == ip(3) && matches!(m, SideMsg::Drain { .. }))
            .expect("drain announced to the successor")
            .1
            .clone();
        // The successor (no lag: no connections) accepts and reports
        // ready on its next tick.
        b.on_side_msg(t(101), ip(2), drain, &mut bs);
        b.on_tick(t(150), &mut bs);
        out.clear();
        b.drain_outbox_into(&mut out);
        let ready = out
            .iter()
            .find(|(to, m)| *to == ip(2) && matches!(m, SideMsg::DrainReady { .. }))
            .expect("successor reports ready")
            .1
            .clone();
        // The primary hands over and fences itself.
        p.on_side_msg(t(151), ip(3), ready, &mut ps);
        assert_eq!(p.role(), ClusterRole::Retired);
        assert!(ps.is_suppressed(VIP), "the retiring primary fences its VIP");
        assert_eq!(p.stats.migrations, 1);
        out.clear();
        p.drain_outbox_into(&mut out);
        let handover = out
            .iter()
            .find(|(to, m)| *to == ip(3) && matches!(m, SideMsg::Handover { .. }))
            .expect("handover sent")
            .1
            .clone();
        // The successor promotes under the agreed epoch.
        b.on_side_msg(t(152), ip(2), handover, &mut bs);
        assert_eq!(b.role(), ClusterRole::Primary);
        assert!(!bs.is_suppressed(VIP));
        assert_eq!(b.topology().epoch(), 1);
        assert_eq!(b.topology().members(), &[ip(3), ip(4)]);
        // The retired primary adopts the new reign without reclaiming.
        out.clear();
        b.drain_outbox_into(&mut out);
        let hb = out
            .iter()
            .find(|(_, m)| matches!(m, SideMsg::ClusterHb { .. }))
            .expect("new reign announced")
            .1
            .clone();
        p.on_side_msg(t(153), ip(3), hb, &mut ps);
        assert_eq!(p.role(), ClusterRole::Retired);
        assert!(ps.is_suppressed(VIP));
    }

    #[test]
    fn deep_ranks_only_flush_on_the_sync_tick() {
        let mut e = ClusterEngine::new(cfg(), ip(4), topo(), 1024, SimTime::ZERO);
        let mut s = stack_for(4, true);
        // No connections: the point here is purely the gating — a
        // non-forced scan must be a no-op for rank ≥ 2 regardless.
        e.maybe_send_acks(&mut s, false);
        let mut out = Vec::new();
        e.drain_outbox_into(&mut out);
        assert!(out.is_empty());
    }
}
