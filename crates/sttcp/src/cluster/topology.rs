//! The replication-topology descriptor: an epoch plus a rank-ordered
//! member list.
//!
//! Rank 0 is the serving primary; ranks 1..N are backups in
//! deterministic promotion order. The whole list (with the epoch) rides
//! on every [`crate::messages::SideMsg::ClusterHb`], so every member —
//! and every late joiner — always knows who takes over next without
//! any election round.
//!
//! # The epoch-by-rank rule
//!
//! Promoting the rank-`r` member produces `epoch + r` and the member
//! suffix `members[r..]`. Because the epoch advances by exactly the
//! number of members removed, *any* cascade path that ends at the same
//! surviving suffix computes the same epoch: if B1 promotes (epoch+1)
//! and then dies so B2 promotes again (epoch+1+1), B2 lands on the
//! same `(epoch+2, members[2..])` it would have computed promoting
//! directly past both corpses. Equal epochs therefore imply identical
//! topologies, and "higher epoch wins" is a complete, tie-break-free
//! adoption rule.

use std::net::Ipv4Addr;

/// See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    epoch: u32,
    members: Vec<Ipv4Addr>,
}

impl Topology {
    /// An epoch-0 topology. Panics on an empty or duplicated member
    /// list — both are configuration errors, not runtime states.
    pub fn new(members: Vec<Ipv4Addr>) -> Self {
        Topology::with_epoch(0, members)
    }

    /// A topology at an explicit epoch (adoption from a heartbeat).
    pub fn with_epoch(epoch: u32, members: Vec<Ipv4Addr>) -> Self {
        assert!(!members.is_empty(), "a topology needs at least a primary");
        let mut uniq = members.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), members.len(), "duplicate member in topology");
        Topology { epoch, members }
    }

    /// The reign counter. Strictly higher epochs supersede.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// All members, rank order (index = rank).
    pub fn members(&self) -> &[Ipv4Addr] {
        &self.members
    }

    /// The serving primary (rank 0).
    pub fn primary(&self) -> Ipv4Addr {
        self.members[0]
    }

    /// The backups, promotion order (rank 1 first).
    pub fn backups(&self) -> &[Ipv4Addr] {
        &self.members[1..]
    }

    /// This member's rank, if it is one.
    pub fn rank_of(&self, ip: Ipv4Addr) -> Option<u8> {
        self.members.iter().position(|&m| m == ip).map(|r| r as u8)
    }

    /// The topology after the rank-`r` member takes over: epoch
    /// advances by `r` (one per member removed), survivors are the
    /// suffix from `r`. See the module docs for why this is
    /// cascade-path independent.
    pub fn promoted(&self, rank: u8) -> Topology {
        let r = usize::from(rank);
        assert!(r < self.members.len(), "promotion rank {rank} out of range");
        Topology { epoch: self.epoch + u32::from(rank), members: self.members[r..].to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn topo3() -> Topology {
        Topology::new(vec![ip(2), ip(3), ip(4), ip(5)])
    }

    #[test]
    fn ranks_follow_list_order() {
        let t = topo3();
        assert_eq!(t.primary(), ip(2));
        assert_eq!(t.backups(), &[ip(3), ip(4), ip(5)]);
        assert_eq!(t.rank_of(ip(2)), Some(0));
        assert_eq!(t.rank_of(ip(4)), Some(2));
        assert_eq!(t.rank_of(ip(99)), None);
    }

    #[test]
    fn promotion_drops_the_prefix_and_advances_the_epoch() {
        let t = topo3().promoted(1);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.members(), &[ip(3), ip(4), ip(5)]);
        assert_eq!(t.rank_of(ip(2)), None, "the dead primary is out");
    }

    #[test]
    fn cascade_paths_converge_on_the_same_epoch() {
        // Path A: B1 promotes, then B2 promotes over the fresh topology.
        let via_b1 = topo3().promoted(1).promoted(1);
        // Path B: B2 promotes directly past both corpses.
        let direct = topo3().promoted(2);
        assert_eq!(via_b1, direct);
        assert_eq!(direct.epoch(), 2);
        assert_eq!(direct.primary(), ip(4));
    }

    #[test]
    #[should_panic(expected = "at least a primary")]
    fn empty_topology_rejected() {
        Topology::new(vec![]);
    }
}
