//! Planned migration: `drain_and_handover()` between a *healthy*
//! primary and its designated successor.
//!
//! Crash takeover is reactive: the successor waits out a detection
//! window and promotes into whatever state its shadow holds. Planned
//! migration inverts that — the primary itself fences its service at
//! a moment of its choosing, but only after the successor has proven
//! it is shadow-consistent, so the client-visible pause collapses to
//! one side-channel round trip:
//!
//! ```text
//!  primary                                 successor (rank r)
//!     | -- Drain{epoch+r, r} ------------------>|   (per tick until ready)
//!     |     ...successor closes residual lag...  |
//!     |<------------------ DrainReady{r, epoch+r}|
//!     | -- Handover{epoch+r} ------------------>|
//!     |  suppress VIP, retire                   |  unsuppress VIP, epoch+r
//! ```
//!
//! The epoch carried in `Drain` is computed with the same
//! epoch-by-rank rule as a crash promotion
//! ([`super::Topology::promoted`]), so a node that learns of the
//! handover via heartbeat instead of `Handover` adopts the identical
//! topology. The retiring primary keeps its retention buffers and
//! keeps answering missing-segment requests — that is the "residual
//! retained bytes" transfer: whatever the surviving backups still
//! miss, they pull from it after the switch.

use netsim::SimTime;

/// Primary-side drain progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPhase {
    /// No migration scheduled or underway.
    Idle,
    /// Announcing `Drain` each tick, waiting for `DrainReady`.
    Draining,
    /// `Handover` sent; this node has retired.
    HandedOver,
}

/// Primary-side coordinator. Owns the schedule and the phase; the
/// engine supplies topology and transport.
#[derive(Debug, Clone, Copy)]
pub struct DrainCoordinator {
    scheduled: Option<(SimTime, u8)>,
    phase: DrainPhase,
    /// The handover epoch (base epoch + successor rank), fixed when
    /// the drain starts so a concurrent crash promotion cannot
    /// retarget it mid-flight.
    epoch: u32,
    successor_rank: u8,
}

impl DrainCoordinator {
    /// An idle coordinator.
    pub fn new() -> Self {
        DrainCoordinator { scheduled: None, phase: DrainPhase::Idle, epoch: 0, successor_rank: 0 }
    }

    /// Schedules `drain_and_handover()` to the rank-`successor_rank`
    /// backup at `at`.
    pub fn schedule(&mut self, at: SimTime, successor_rank: u8) {
        assert!(successor_rank >= 1, "the successor must be a backup rank");
        self.scheduled = Some((at, successor_rank));
    }

    /// Current phase.
    pub fn phase(&self) -> DrainPhase {
        self.phase
    }

    /// The epoch the successor will serve under (valid once draining).
    pub fn handover_epoch(&self) -> u32 {
        self.epoch
    }

    /// The designated successor's rank (valid once draining).
    pub fn successor_rank(&self) -> u8 {
        self.successor_rank
    }

    /// Tick: returns `Some(successor_rank)` while the drain is active
    /// (the engine re-announces `Drain` every tick — the side channel
    /// is lossy). Starts the drain when the scheduled instant passes;
    /// returns whether this call started it via the second flag.
    pub fn on_tick(&mut self, now: SimTime, base_epoch: u32) -> (Option<u8>, bool) {
        let mut started = false;
        if let Some((at, rank)) = self.scheduled {
            if now >= at && self.phase == DrainPhase::Idle {
                self.phase = DrainPhase::Draining;
                self.successor_rank = rank;
                self.epoch = base_epoch + u32::from(rank);
                self.scheduled = None;
                started = true;
            }
        }
        match self.phase {
            DrainPhase::Draining => (Some(self.successor_rank), started),
            _ => (None, started),
        }
    }

    /// `DrainReady` arrived. Returns true when it matches the active
    /// drain — the engine then sends `Handover` and retires.
    pub fn on_drain_ready(&mut self, rank: u8, epoch: u32) -> bool {
        if self.phase != DrainPhase::Draining || rank != self.successor_rank || epoch != self.epoch
        {
            return false;
        }
        self.phase = DrainPhase::HandedOver;
        true
    }
}

impl Default for DrainCoordinator {
    fn default() -> Self {
        DrainCoordinator::new()
    }
}

/// Successor-side follower: remembers the drain it accepted and
/// validates the handover against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainFollower {
    /// `(epoch, own rank)` of the accepted drain.
    pending: Option<(u32, u8)>,
}

impl DrainFollower {
    /// An idle follower.
    pub fn new() -> Self {
        DrainFollower::default()
    }

    /// A `Drain` arrived naming this node (rank `my_rank`). Accepts it
    /// when the epoch matches the epoch-by-rank rule for this rank.
    pub fn on_drain(
        &mut self,
        my_rank: u8,
        base_epoch: u32,
        epoch: u32,
        successor_rank: u8,
    ) -> bool {
        if successor_rank != my_rank || epoch != base_epoch + u32::from(my_rank) {
            return false;
        }
        let fresh = self.pending != Some((epoch, my_rank));
        self.pending = Some((epoch, my_rank));
        fresh
    }

    /// Whether a drain is pending; the engine answers `DrainReady`
    /// each tick while eligible (lag zero).
    pub fn pending(&self) -> Option<(u32, u8)> {
        self.pending
    }

    /// `Handover` arrived. Returns the epoch to promote under when it
    /// matches the pending drain; clears the pending state either way
    /// (a mismatched handover belongs to a reign this node already
    /// left behind).
    pub fn on_handover(&mut self, epoch: u32) -> Option<u32> {
        let matched = self.pending.map(|(e, _)| e == epoch).unwrap_or(false);
        self.pending = None;
        matched.then_some(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn coordinator_walks_idle_draining_handed_over() {
        let mut c = DrainCoordinator::new();
        c.schedule(t(100), 1);
        assert_eq!(c.on_tick(t(50), 7), (None, false), "not due yet");
        let (announce, started) = c.on_tick(t(100), 7);
        assert_eq!(announce, Some(1));
        assert!(started, "exactly one tick reports the start");
        assert_eq!(c.handover_epoch(), 8, "epoch-by-rank: 7 + rank 1");
        let (again, started_again) = c.on_tick(t(150), 7);
        assert_eq!(again, Some(1), "re-announces until ready");
        assert!(!started_again);
        assert!(!c.on_drain_ready(2, 8), "wrong rank refused");
        assert!(!c.on_drain_ready(1, 9), "wrong epoch refused");
        assert!(c.on_drain_ready(1, 8));
        assert_eq!(c.phase(), DrainPhase::HandedOver);
        assert!(!c.on_drain_ready(1, 8), "handover happens once");
    }

    #[test]
    fn follower_validates_epoch_by_rank() {
        let mut f = DrainFollower::new();
        assert!(!f.on_drain(2, 7, 8, 1), "drain names rank 1, we are rank 2");
        assert!(!f.on_drain(2, 7, 8, 2), "epoch must be base + rank");
        assert!(f.on_drain(2, 7, 9, 2));
        assert!(!f.on_drain(2, 7, 9, 2), "re-announcement is not fresh");
        assert_eq!(f.on_handover(3), None, "stale handover epoch refused");
        assert!(f.on_drain(2, 7, 9, 2), "cleared state accepts the drain anew");
        assert_eq!(f.on_handover(9), Some(9));
    }
}
