//! Cluster-scale scenario builder: one primary, N chained backups,
//! and a seeded client fleet behind a port-mirroring switch.
//!
//! Extends [`crate::fleet`] from the fixed pair to a
//! [`super::Topology`] chain. The client plans (workload mix, stagger,
//! ISNs, addresses) are *exactly* the two-node fleet's — the same
//! seed drives the same bytes — so results compare across backup
//! counts.
//!
//! # Wiring
//!
//! Server `i` sits on switch port `i` (the primary optionally behind
//! the inline packet logger); clients follow. Every server port is
//! mirrored to every *backup* port: whoever currently sources the VIP,
//! all shadows keep seeing both directions of the client conversation
//! — that is what lets a cascade (kill the primary, then kill its
//! successor mid-takeover) keep converging without re-wiring.
//!
//! Clients keep a static `VIP → initial primary MAC` ARP entry
//! (clients are unmodified, §2); after any number of failovers their
//! frames still flow to port 0, and the mirrors carry them to the
//! survivors.

use super::{ClusterEngine, Topology};
use crate::config::SttcpConfig;
use crate::fleet::{
    add_fleet_services, FleetSpec, BULK_PORT, ECHO_PORT, INTERACTIVE_PORT, UPLOAD_PORT,
};
use crate::node::{ClientNode, ServerNode, LAN};
use crate::scenario::addrs;
use apps::{EchoServer, Workload, WorkloadClient};
use netsim::logger::PacketLogger;
use netsim::node::{NodeId, PortId};
use netsim::{LinkProfile, LinkSpec, SimDuration, SimTime, Simulator, Switch};
use obs::{Actor, FlightRecorder, ObsSink, SharedRecorder};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tcpstack::{CongestionAlgo, StackConfig, TcpConfig};
use wire::MacAddr;

/// The address of cluster server `rank`: `10.0.0.2 + rank` (the
/// two-node constants [`addrs::PRIMARY`]/[`addrs::BACKUP`] are ranks
/// 0 and 1 of this plan).
pub fn server_ip(rank: usize) -> Ipv4Addr {
    assert!(rank < 90, "cluster address plan holds 90 servers");
    Ipv4Addr::new(10, 0, 0, 2 + rank as u8)
}

/// The MAC of cluster server `rank` (matches the two-node fleet's
/// primary/backup MACs for ranks 0 and 1).
pub fn server_mac(rank: usize) -> MacAddr {
    MacAddr::local(2 + rank as u32)
}

/// Everything needed to build one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterFleetSpec {
    /// Number of workload clients.
    pub clients: usize,
    /// Number of backups (chain length N; 1 reproduces the paper's
    /// pair).
    pub backups: usize,
    /// Master seed: workload mix, request counts, stagger jitter, ISNs.
    pub seed: u64,
    /// Per-hop link characteristics.
    pub link: LinkSpec,
    /// ST-TCP protocol configuration (heartbeats, thresholds).
    pub st_tcp: SttcpConfig,
    /// TCP tuning template (role flags applied automatically).
    pub tcp: TcpConfig,
    /// Window over which client connects are staggered.
    pub connect_spread: SimDuration,
    /// Give every client this workload instead of the seeded mix
    /// (single-scenario demos like `examples/double_failure_logger`).
    pub workload: Option<Workload>,
    /// Crash schedule: `(server rank, instant)` pairs — rank 0 is the
    /// initial primary, rank 1 its first successor, and so on.
    pub crashes: Vec<(usize, SimTime)>,
    /// Planned migration: `drain_and_handover()` to the rank-`r`
    /// backup starting at the instant.
    pub migrate: Option<(SimTime, u8)>,
    /// Insert the in-network packet logger inline on the primary's
    /// uplink (and enable logger catch-up in the engines).
    pub use_logger: bool,
    /// Record protocol counters into a shared [`ObsSink`].
    pub record_obs: bool,
    /// Flight-recorder ring capacity, when tracing.
    pub trace_capacity: Option<usize>,
}

impl ClusterFleetSpec {
    /// A fleet of `clients` against a primary + `backups` chain.
    pub fn new(clients: usize, backups: usize) -> Self {
        assert!(backups >= 1, "a chain needs at least one backup");
        ClusterFleetSpec {
            clients,
            backups,
            seed: 0xF1EE7,
            link: LinkSpec::lan(),
            st_tcp: SttcpConfig::new(addrs::VIP, ECHO_PORT),
            tcp: TcpConfig::default(),
            connect_spread: SimDuration::from_millis(200),
            workload: None,
            crashes: Vec::new(),
            migrate: None,
            use_logger: false,
            record_obs: false,
            trace_capacity: None,
        }
    }

    /// Sets the master seed (builder style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the seeded workload mix with one uniform workload
    /// (builder style).
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Schedules a server crash (builder style; repeatable).
    #[must_use]
    pub fn crash(mut self, rank: usize, at: SimTime) -> Self {
        self.crashes.push((rank, at));
        self
    }

    /// Schedules a planned migration (builder style).
    #[must_use]
    pub fn migrate_at(mut self, at: SimTime, successor_rank: u8) -> Self {
        self.migrate = Some((at, successor_rank));
        self
    }

    /// Inserts the in-network packet logger (builder style).
    #[must_use]
    pub fn with_logger(mut self) -> Self {
        self.use_logger = true;
        self
    }

    /// Records protocol counters (builder style).
    #[must_use]
    pub fn recording(mut self) -> Self {
        self.record_obs = true;
        self
    }

    /// Records structured trace events (builder style).
    #[must_use]
    pub fn tracing(mut self) -> Self {
        self.trace_capacity = Some(obs::DEFAULT_TRACE_CAPACITY);
        self
    }

    /// Applies a canned [`LinkProfile`] to every hop (builder style).
    #[must_use]
    pub fn link_profile(mut self, profile: LinkProfile) -> Self {
        self.link = profile.spec();
        self
    }

    /// Selects the congestion-control algorithm on every host (builder
    /// style).
    #[must_use]
    pub fn congestion(mut self, algo: CongestionAlgo) -> Self {
        self.tcp.congestion = algo;
        self
    }

    /// Negotiates RFC 2018 SACK on every host (builder style).
    #[must_use]
    pub fn with_sack(mut self) -> Self {
        self.tcp.sack = true;
        self
    }

    /// The initial topology this spec builds.
    pub fn topology(&self) -> Topology {
        Topology::new((0..=self.backups).map(server_ip).collect())
    }

    /// The two-node fleet spec that shares this spec's client plans.
    fn plan_spec(&self) -> FleetSpec {
        let mut spec = FleetSpec::new(self.clients).seed(self.seed);
        spec.link = self.link;
        spec.st_tcp = self.st_tcp.clone();
        spec.tcp = self.tcp.clone();
        spec.connect_spread = self.connect_spread;
        spec
    }
}

/// A built cluster fleet.
pub struct ClusterFleet {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Workload clients, in index order.
    pub clients: Vec<NodeId>,
    /// Servers in rank order (index 0 = initial primary).
    pub servers: Vec<NodeId>,
    /// The mirroring switch.
    pub fabric: NodeId,
    /// The inline packet logger, when requested.
    pub logger: Option<NodeId>,
    /// Shared counter sink, when `record_obs` was set.
    pub obs: Option<Arc<ObsSink>>,
    /// Flight-recorder ring, when tracing was on.
    pub flight: Option<Arc<FlightRecorder>>,
}

/// Builds the simulator for `spec`. See the module docs for the
/// wiring.
pub fn build_cluster(spec: &ClusterFleetSpec) -> ClusterFleet {
    let n = spec.clients;
    let servers_total = 1 + spec.backups;
    let mut sim = Simulator::with_seed(spec.seed);
    let obs = spec.record_obs.then(|| Arc::new(ObsSink::new()));
    let flight = spec.trace_capacity.map(|cap| Arc::new(FlightRecorder::new(cap)));
    let recorder_for = |actor: Actor| -> Option<SharedRecorder> {
        let metrics: SharedRecorder = match &obs {
            Some(sink) => sink.clone(),
            None => obs::nop(),
        };
        match &flight {
            Some(ring) => Some(obs::for_actor(actor, metrics, ring.clone())),
            None => obs.as_ref().map(|sink| sink.clone() as SharedRecorder),
        }
    };
    if let Some(rec) = recorder_for(Actor::Net) {
        sim.set_recorder(rec);
    }

    let mut st_tcp = spec.st_tcp.clone();
    if spec.use_logger {
        st_tcp = st_tcp.with_logger();
    }
    let topology = spec.topology();

    // --- servers ----------------------------------------------------
    let mut servers = Vec::with_capacity(servers_total);
    for rank in 0..servers_total {
        let mut tcp = spec.tcp.clone();
        // Every member retains ("double the space", §4.2): the primary
        // to serve its backups, each backup to serve the *deeper*
        // ranks after a promotion.
        tcp.retention_buf = tcp.recv_buf;
        if rank > 0 {
            tcp.shadow = true;
        }
        let mut cfg = StackConfig::host(server_mac(rank), server_ip(rank));
        cfg.extra_ips = vec![addrs::VIP];
        cfg.learn_from_ip = true;
        cfg.netmask_bits = 8;
        cfg.isn_seed = spec.seed ^ (0x2222u64.wrapping_add(rank as u64 * 0x1111));
        if rank > 0 {
            cfg.promiscuous = true; // taps the mirror copies
            cfg.suppressed_ips = vec![addrs::VIP];
        }
        // Full-mesh static ARP among the servers: the side channel is
        // unicast UDP and must not depend on broadcast resolution.
        for other in 0..servers_total {
            if other != rank {
                cfg.static_arp.push((server_ip(other), server_mac(other)));
            }
        }
        cfg.tcp = tcp;
        let mut node = ServerNode::cluster(
            cfg,
            st_tcp.clone(),
            topology.clone(),
            Box::new(|| Box::new(EchoServer::new())),
        );
        add_fleet_services(&mut node);
        let actor = if rank == 0 { Actor::Primary } else { Actor::Backup };
        if let Some(rec) = recorder_for(actor) {
            node.set_recorder(rec);
        }
        let name = if rank == 0 { "primary".to_string() } else { format!("backup{rank}") };
        servers.push(sim.add_node(name, node));
    }

    // --- fabric -----------------------------------------------------
    let mut sw = Switch::new(servers_total + n);
    // Every server port mirrors to every backup port: the shadows tap
    // whichever member currently sources the VIP.
    for from in 0..servers_total {
        for to in 1..servers_total {
            if from != to {
                sw.add_mirror(PortId(from), PortId(to));
            }
        }
    }
    let fabric = sim.add_node("switch", sw);
    let mut logger = None;
    for (rank, &server) in servers.iter().enumerate() {
        if rank == 0 && spec.use_logger {
            // Inline on the primary's uplink, splitting the hop latency
            // so the end-to-end RTT is unchanged (§3.2). Replayed
            // frames re-enter the switch on port 0 and ride the same
            // mirrors as live traffic.
            let half = spec.link.with_latency(spec.link.latency / 2);
            let lg = sim.add_node("logger", PacketLogger::with_defaults());
            sim.connect(server, LAN, lg, PortId(0), half);
            sim.connect(lg, PortId(1), fabric, PortId(rank), half);
            logger = Some(lg);
        } else {
            sim.connect(server, LAN, fabric, PortId(rank), spec.link);
        }
    }

    // --- clients ----------------------------------------------------
    let plan_spec = spec.plan_spec();
    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let mut plan = plan_spec.client_plan(i);
        if let Some(workload) = spec.workload {
            plan.workload = workload;
            plan.port = match workload {
                Workload::Echo { .. } => ECHO_PORT,
                Workload::Interactive { .. } => INTERACTIVE_PORT,
                Workload::Bulk { .. } => BULK_PORT,
                Workload::Upload { .. } => UPLOAD_PORT,
            };
        }
        let mut c_cfg = StackConfig::host(MacAddr::local(100 + i as u32), plan.ip);
        c_cfg.netmask_bits = 8;
        c_cfg.isn_seed = plan.isn_seed;
        // Static VIP→initial-primary entry: unmodified clients keep
        // addressing the original MAC across every failover; the
        // mirrors carry their frames to whoever serves.
        c_cfg.static_arp.push((addrs::VIP, server_mac(0)));
        c_cfg.tcp = spec.tcp.clone();
        let node = ClientNode::new(
            c_cfg,
            (addrs::VIP, plan.port),
            plan.connect_at,
            WorkloadClient::new(plan.workload).closing(),
        );
        let id = sim.add_node(format!("client{i}"), node);
        sim.connect(id, LAN, fabric, PortId(servers_total + i), spec.link);
        clients.push(id);
    }

    // --- faults and migrations --------------------------------------
    for &(rank, at) in &spec.crashes {
        sim.schedule_crash(servers[rank], at);
    }
    if let Some((at, successor_rank)) = spec.migrate {
        sim.node_mut::<ServerNode>(servers[0])
            .cluster_engine_mut()
            .expect("rank 0 runs the cluster engine")
            .schedule_drain(at, successor_rank);
    }

    ClusterFleet { sim, clients, servers, fabric, logger, obs, flight }
}

impl ClusterFleet {
    /// The workload driver of client `index`.
    pub fn client_app(&self, index: usize) -> &WorkloadClient {
        self.sim
            .node_ref::<ClientNode>(self.clients[index])
            .app::<WorkloadClient>()
            .expect("cluster fleet clients run WorkloadClient")
    }

    /// The cluster engine of server `rank`.
    pub fn engine(&self, rank: usize) -> &ClusterEngine {
        self.sim
            .node_ref::<ServerNode>(self.servers[rank])
            .cluster_engine()
            .expect("cluster fleet servers run the cluster engine")
    }

    /// How many clients have finished their workload.
    pub fn done_count(&self) -> usize {
        (0..self.clients.len()).filter(|&i| self.client_app(i).is_done()).count()
    }

    /// True when every client has finished.
    pub fn all_done(&self) -> bool {
        (0..self.clients.len()).all(|i| self.client_app(i).is_done())
    }

    /// True when every client's byte stream verified clean so far.
    pub fn verified_clean(&self) -> bool {
        (0..self.clients.len()).all(|i| self.client_app(i).metrics.verified_clean())
    }

    /// Aggregate progress: response bytes received / expected.
    pub fn progress(&self) -> (u64, u64) {
        (0..self.clients.len())
            .map(|i| self.client_app(i).progress())
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    }

    /// Drives the fleet until every client finishes or `limit` virtual
    /// time passes; returns whether all finished.
    pub fn run_until_done(&mut self, limit: SimDuration) -> bool {
        let deadline = self.sim.now() + limit;
        while self.sim.now() < deadline {
            self.sim.run_for(SimDuration::from_millis(50));
            if self.all_done() {
                return true;
            }
            if self.sim.pending_events() == 0 {
                return false;
            }
        }
        self.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_plans_match_the_two_node_fleet() {
        let spec = ClusterFleetSpec::new(20, 3).seed(77);
        let pair = FleetSpec::new(20).seed(77);
        for i in 0..20 {
            assert_eq!(
                spec.plan_spec().client_plan(i),
                pair.client_plan(i),
                "same seed, same client plans, regardless of backup count"
            );
        }
    }

    #[test]
    fn fault_free_chain_completes_clean() {
        let mut fleet = build_cluster(&ClusterFleetSpec::new(8, 2));
        assert!(
            fleet.run_until_done(SimDuration::from_secs(30)),
            "8-client, 2-backup fleet must finish"
        );
        assert!(fleet.verified_clean());
        let (got, want) = fleet.progress();
        assert_eq!(got, want);
        // The chain stayed intact: nobody promoted.
        for rank in 0..3 {
            assert!(!fleet.engine(rank).has_taken_over(), "rank {rank} must not take over");
        }
    }

    #[test]
    fn crash_failover_promotes_rank1_and_finishes() {
        // Crash mid-connect-spread, while the workloads are in flight
        // (the default echo mix drains within a few hundred ms).
        let spec =
            ClusterFleetSpec::new(8, 2).crash(0, SimTime::ZERO + SimDuration::from_millis(150));
        let mut fleet = build_cluster(&spec);
        assert!(
            fleet.run_until_done(SimDuration::from_secs(60)),
            "fleet must finish across the failover"
        );
        assert!(fleet.verified_clean(), "no client-visible stream corruption");
        assert!(fleet.engine(1).has_taken_over(), "rank 1 takes over");
        assert!(!fleet.engine(2).has_taken_over(), "rank 2 stays a backup");
        assert_eq!(fleet.engine(1).topology().epoch(), 1);
    }
}
