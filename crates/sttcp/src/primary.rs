//! The primary-side ST-TCP engine.
//!
//! Beyond running an unmodified service over the (retention-extended)
//! TCP stack, the primary:
//!
//! * applies the backup's cumulative acknowledgments to each
//!   connection's retention buffer (`LastByteAcked`, §4.2);
//! * serves missing-segment requests from retained bytes;
//! * emits periodic heartbeats and monitors the backup, transitioning
//!   to **non-fault-tolerant mode** (retention off) when the backup
//!   misses its heartbeat deadline (§4.4).

use crate::config::SttcpConfig;
use crate::messages::{ConnKey, SideMsg};
use bytes::Bytes;
use netsim::SimTime;
use obs::{Counter, SharedRecorder, TraceEvent};
use std::collections::HashMap;
use tcpstack::{NetStack, SeqNum, TcpState};

/// Primary-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimaryStats {
    /// Backup acks applied.
    pub backup_acks: u64,
    /// Missing-segment requests served (fully or partially).
    pub missing_served: u64,
    /// Missing-segment requests refused.
    pub missing_nacked: u64,
    /// Heartbeats sent.
    pub hbs_sent: u64,
    /// Bytes re-sent over the side channel.
    pub missing_bytes_sent: u64,
    /// Times a silent backup came back (reintegration, an extension —
    /// the paper stops at the transition to non-fault-tolerant mode).
    pub reintegrations: u64,
}

/// See the module docs.
#[derive(Debug)]
pub struct PrimaryEngine {
    cfg: SttcpConfig,
    backup_alive: bool,
    last_backup_heard: Option<SimTime>,
    backup_dead_at: Option<SimTime>,
    hb_seq: u64,
    outbox: Vec<SideMsg>,
    /// Last congestion snapshot mirrored per connection, so a sync tick
    /// only spends side-channel bytes on windows that actually moved.
    cong_sent: HashMap<ConnKey, (u32, u32)>,
    recorder: SharedRecorder,
    /// Counters.
    pub stats: PrimaryStats,
}

/// Side-channel datagrams are kept under this payload size.
pub const SIDE_CHUNK: usize = 1024;

impl PrimaryEngine {
    /// Creates the engine; `now` starts the backup-liveness clock (the
    /// backup gets a full detection window to say hello).
    pub fn new(cfg: SttcpConfig, now: SimTime) -> Self {
        PrimaryEngine {
            cfg,
            backup_alive: true,
            last_backup_heard: Some(now),
            backup_dead_at: None,
            hb_seq: 0,
            outbox: Vec::new(),
            cong_sent: HashMap::new(),
            recorder: obs::nop(),
            stats: PrimaryStats::default(),
        }
    }

    /// Installs an observability recorder (no-op by default).
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Whether the backup is considered alive (fault-tolerant mode).
    pub fn backup_alive(&self) -> bool {
        self.backup_alive
    }

    /// When the backup was declared dead, if it was.
    pub fn backup_dead_at(&self) -> Option<SimTime> {
        self.backup_dead_at
    }

    /// Handles one side-channel message from the backup.
    pub fn on_side_msg(&mut self, now: SimTime, msg: SideMsg, stack: &mut NetStack) {
        self.last_backup_heard = Some(now);
        if !self.backup_alive {
            // Reintegration (extension beyond the paper): a backup that
            // returns — typically rebooted — resumes protecting *new*
            // connections. Existing connections stay unprotected: their
            // retention was released when the backup was declared dead,
            // so their history is unrecoverable (short of the logger).
            self.backup_alive = true;
            self.backup_dead_at = None;
            self.stats.reintegrations += 1;
        }
        match msg {
            SideMsg::Heartbeat { .. } => {}
            SideMsg::BackupAck { conn, acked_next } => {
                self.stats.backup_acks += 1;
                self.recorder.count(Counter::BackupAcksReceived, 1);
                if let Some(sock) = stack.sock_by_quad(conn.server_quad()) {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.set_backup_acked(SeqNum(acked_next));
                    }
                }
            }
            SideMsg::MissingReq { conn, from, len } => {
                self.serve_missing(conn, SeqNum(from), len as usize, stack);
            }
            // Primary-bound only; a primary never receives these.
            SideMsg::MissingData { .. }
            | SideMsg::MissingNack { .. }
            | SideMsg::CongSync { .. } => {}
            // Cluster-subsystem messages; the two-node engine ignores them.
            SideMsg::ClusterHb { .. }
            | SideMsg::AckBatch { .. }
            | SideMsg::Drain { .. }
            | SideMsg::DrainReady { .. }
            | SideMsg::Handover { .. } => {}
        }
    }

    fn serve_missing(&mut self, conn: ConnKey, from: SeqNum, len: usize, stack: &mut NetStack) {
        let Some(sock) = stack.sock_by_quad(conn.server_quad()) else {
            self.stats.missing_nacked += 1;
            self.recorder.count(Counter::MissingNacks, 1);
            self.outbox.push(SideMsg::MissingNack { conn, from: from.raw() });
            return;
        };
        let Some(tcb) = stack.tcb(sock) else {
            self.stats.missing_nacked += 1;
            self.recorder.count(Counter::MissingNacks, 1);
            self.outbox.push(SideMsg::MissingNack { conn, from: from.raw() });
            return;
        };
        // Clamp the request to what we actually hold: [floor, rcv_nxt).
        let rcv_nxt = tcb.rcv_nxt();
        let want_end = from.add(len as u32).min(rcv_nxt);
        let avail = want_end.distance(from);
        if avail <= 0 {
            self.stats.missing_nacked += 1;
            self.recorder.count(Counter::MissingNacks, 1);
            self.outbox.push(SideMsg::MissingNack { conn, from: from.raw() });
            return;
        }
        match tcb.fetch_rx(from, avail as usize) {
            Some(bytes) => {
                self.stats.missing_served += 1;
                self.recorder.count(Counter::MissingRepliesServed, 1);
                self.stats.missing_bytes_sent += bytes.len() as u64;
                for (i, chunk) in bytes.chunks(SIDE_CHUNK).enumerate() {
                    let seq = from.add((i * SIDE_CHUNK) as u32);
                    self.outbox.push(SideMsg::MissingData {
                        conn,
                        seq: seq.raw(),
                        data: Bytes::copy_from_slice(chunk),
                    });
                }
            }
            None => {
                // The range fell below the retention floor — should not
                // happen while retention is on (that is the §4.2
                // guarantee), but can after a transition to
                // non-fault-tolerant mode.
                self.stats.missing_nacked += 1;
                self.recorder.count(Counter::MissingNacks, 1);
                self.outbox.push(SideMsg::MissingNack { conn, from: from.raw() });
            }
        }
    }

    /// Periodic tick (every `hb_interval`): emit a heartbeat, check the
    /// backup's liveness.
    pub fn on_tick(&mut self, now: SimTime, stack: &mut NetStack) {
        self.hb_seq += 1;
        self.stats.hbs_sent += 1;
        self.recorder.count(Counter::HeartbeatsSent, 1);
        self.outbox.push(SideMsg::Heartbeat { seq: self.hb_seq });
        if self.backup_alive {
            if self.cfg.cong_sync {
                self.mirror_congestion(stack);
            }
            let deadline =
                self.cfg.hb_interval.saturating_mul(u64::from(self.cfg.missed_hb_threshold));
            let silence = self.last_backup_heard.and_then(|t| now.checked_duration_since(t));
            let silent = silence.map(|d| d > deadline).unwrap_or(false);
            if silent {
                // §4.4: "On detecting failure of the backup, the primary
                // transitions to non-fault-tolerant mode."
                self.backup_alive = false;
                self.backup_dead_at = Some(now);
                self.recorder.trace(
                    now.as_nanos(),
                    &TraceEvent::BackupDead {
                        silent_ns: silence.map(|d| d.as_nanos()).unwrap_or(0),
                    },
                );
                let socks: Vec<_> = stack.socks().collect();
                for sock in socks {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.disable_retention();
                    }
                }
            }
        }
    }

    /// Mirrors each established connection's congestion snapshot to the
    /// backup when it changed since the last tick, so a promoted shadow
    /// resumes near the primary's operating point.
    fn mirror_congestion(&mut self, stack: &mut NetStack) {
        let socks: Vec<_> = stack.socks().collect();
        for sock in socks {
            let Some(tcb) = stack.tcb(sock) else {
                continue;
            };
            if tcb.state() != TcpState::Established {
                continue;
            }
            let conn = ConnKey::from_server_quad(tcb.quad());
            let snap = tcb.export_congestion();
            let pair = (snap.cwnd, snap.ssthresh);
            if self.cong_sent.insert(conn, pair) != Some(pair) {
                self.recorder.count(Counter::CongSyncsSent, 1);
                self.outbox.push(SideMsg::CongSync {
                    conn,
                    cwnd: snap.cwnd,
                    ssthresh: snap.ssthresh,
                });
            }
        }
    }

    /// Drains queued side-channel messages.
    pub fn take_outbox(&mut self) -> Vec<SideMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// Moves queued side-channel messages into `out`, reusing its
    /// storage (the allocation-free flavour of
    /// [`PrimaryEngine::take_outbox`] for per-tick callers).
    pub fn drain_outbox_into(&mut self, out: &mut Vec<SideMsg>) {
        out.append(&mut self.outbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;
    use std::net::Ipv4Addr;
    use tcpstack::StackConfig;
    use wire::MacAddr;

    const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn cfg() -> SttcpConfig {
        SttcpConfig::new(VIP, 80)
    }

    fn stack() -> NetStack {
        let mut c = StackConfig::host(MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 2));
        c.extra_ips = vec![VIP];
        NetStack::new(c)
    }

    fn key() -> ConnKey {
        ConnKey {
            client_ip: Ipv4Addr::new(10, 0, 0, 1),
            client_port: 40000,
            server_ip: VIP,
            server_port: 80,
        }
    }

    #[test]
    fn heartbeats_flow_every_tick() {
        let mut e = PrimaryEngine::new(cfg(), SimTime::ZERO);
        let mut s = stack();
        e.on_tick(SimTime::ZERO + SimDuration::from_millis(50), &mut s);
        e.on_tick(SimTime::ZERO + SimDuration::from_millis(100), &mut s);
        let out = e.take_outbox();
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], SideMsg::Heartbeat { seq: 1 }));
        assert!(matches!(out[1], SideMsg::Heartbeat { seq: 2 }));
        assert_eq!(e.stats.hbs_sent, 2);
    }

    #[test]
    fn backup_declared_dead_after_threshold() {
        let mut e = PrimaryEngine::new(cfg(), SimTime::ZERO);
        let mut s = stack();
        // Backup says hello at t=0 (constructor). Threshold = 3 * 50ms.
        let t1 = SimTime::ZERO + SimDuration::from_millis(100);
        e.on_side_msg(t1, SideMsg::Heartbeat { seq: 1 }, &mut s);
        // Still fine at t1 + 150ms.
        e.on_tick(t1 + SimDuration::from_millis(150), &mut s);
        assert!(e.backup_alive());
        // Dead after more than 150ms of silence.
        e.on_tick(t1 + SimDuration::from_millis(151), &mut s);
        assert!(!e.backup_alive());
        assert_eq!(e.backup_dead_at(), Some(t1 + SimDuration::from_millis(151)));
    }

    #[test]
    fn missing_req_for_unknown_conn_nacks() {
        let mut e = PrimaryEngine::new(cfg(), SimTime::ZERO);
        let mut s = stack();
        e.on_side_msg(
            SimTime::ZERO,
            SideMsg::MissingReq { conn: key(), from: 0, len: 100 },
            &mut s,
        );
        let out = e.take_outbox();
        assert_eq!(out, vec![SideMsg::MissingNack { conn: key(), from: 0 }]);
        assert_eq!(e.stats.missing_nacked, 1);
    }

    #[test]
    fn any_side_message_counts_as_liveness() {
        let mut e = PrimaryEngine::new(cfg(), SimTime::ZERO);
        let mut s = stack();
        let late = SimTime::ZERO + SimDuration::from_secs(10);
        // Without this message the backup would be long dead.
        e.on_side_msg(late, SideMsg::BackupAck { conn: key(), acked_next: 0 }, &mut s);
        e.on_tick(late + SimDuration::from_millis(100), &mut s);
        assert!(e.backup_alive());
    }
}
