//! Simulation-node adapters: hosts that plug the sans-io stacks,
//! engines, and applications into the `netsim` event loop.
//!
//! * [`ServerNode`] — a service host in one of three roles:
//!   standard-TCP solo server (the paper's baseline), ST-TCP primary,
//!   or ST-TCP backup.
//! * [`ClientNode`] — an *unmodified* TCP client driving a workload;
//!   deliberately built from the plain [`NetStack`] with no ST-TCP
//!   code, because client transparency is the paper's core claim.
//! * [`GatewayNode`] — the two-interface IP gateway of the tapping
//!   architecture.
//!
//! Port conventions: port 0 is the LAN NIC; port 1 (servers only) is
//! the management segment holding the power switch.

use crate::backup::BackupEngine;
use crate::cluster::{ClusterEngine, ClusterRole, Topology};
use crate::config::SttcpConfig;
use crate::messages::{ConnKey, SideMsg};
use crate::primary::PrimaryEngine;
use apps::{Application, StackApi};
use bytes::Bytes;
use netsim::node::{Context, Node, PortId};
use netsim::power::power_off_frame;
use netsim::{SimDuration, SimTime};
use obs::{SharedRecorder, TraceEvent};
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use tcpstack::{Gateway, NetStack, SeqNum, Side, SockId, StackConfig, UdpId};
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpFlags, TcpSegment};

/// LAN-facing port of every host node.
pub const LAN: PortId = PortId(0);
/// Management port (servers): power switch segment.
pub const MGMT: PortId = PortId(1);

const TOK_STACK: u64 = 1;
const TOK_TICK: u64 = 2;
const TOK_CONNECT: u64 = 3;
/// Application wake tokens: `TOK_APP_BASE + SockId::raw()`. Raw socket
/// handles carry a non-zero generation in their high 32 bits, so they
/// never collide with the low control tokens. Wakes may be spurious
/// (timers cannot be cancelled); applications guard.
const TOK_APP_BASE: u64 = 1000;

/// Creates fresh application instances, one per accepted connection.
pub type AppFactory = Box<dyn FnMut() -> Box<dyn Application> + Send>;

/// The ST-TCP role a [`ServerNode`] plays.
// One `Role` per node; the variant size spread is irrelevant here.
#[allow(clippy::large_enum_variant)]
enum Role {
    Solo,
    Primary(PrimaryEngine),
    Backup(BackupEngine),
    Cluster(ClusterEngine),
}

struct ConnState {
    app: Box<dyn Application>,
    connected: bool,
    peer_closed: bool,
}

/// Tracks the single timer the node keeps armed for stack deadlines,
/// ignoring stale wake-ups.
#[derive(Debug, Default)]
struct StackTimer {
    armed: Option<SimTime>,
}

impl StackTimer {
    fn rearm(&mut self, ctx: &mut Context, deadline: Option<SimTime>) {
        if let Some(d) = deadline {
            if self.armed.is_none_or(|a| d < a) {
                ctx.set_timer_at(d, TOK_STACK);
                self.armed = Some(d);
            }
        }
    }

    fn fired(&mut self) {
        self.armed = None;
    }
}

/// A service host (solo / primary / backup). See the module docs.
pub struct ServerNode {
    stack: NetStack,
    stack_cfg: StackConfig,
    role: Role,
    cfg: Option<SttcpConfig>,
    peer_side_addr: Option<(Ipv4Addr, u16)>,
    side_udp: Option<UdpId>,
    /// Listening services: `(port, app factory)`. Every constructor
    /// installs one; [`ServerNode::add_service`] appends more (a fleet
    /// server offering several workload classes on distinct ports).
    services: Vec<(u16, AppFactory)>,
    conns: HashMap<SockId, ConnState>,
    timer: StackTimer,
    booted: bool,
    /// Observability recorder, re-applied to the fresh stack/engine on
    /// every (re)boot.
    recorder: SharedRecorder,
    /// Reused frame staging buffer for [`NetStack::poll_into`].
    tx: Vec<Bytes>,
    /// Reused buffer for the stack's per-pump activity drain.
    active: Vec<SockId>,
    /// Reused buffer for draining the engine's side-channel outbox.
    side_out: Vec<SideMsg>,
    /// Reused buffer for the cluster engine's targeted outbox.
    cluster_out: Vec<(Ipv4Addr, SideMsg)>,
    /// The initial topology, re-applied on an amnesia reboot (cluster
    /// role only; the rebooted node rejoins at epoch 0 and adopts the
    /// current reign from the first heartbeat it hears).
    cluster_topo: Option<Topology>,
    /// Times this node has booted (1 after a normal start).
    pub boot_count: u32,
    /// Accepted connections in order (diagnostics / tests).
    pub accepted: Vec<SockId>,
}

impl ServerNode {
    /// A standard-TCP server: the paper's baseline.
    pub fn solo(stack_cfg: StackConfig, listen_port: u16, factory: AppFactory) -> Self {
        ServerNode {
            stack: NetStack::new(stack_cfg.clone()),
            stack_cfg,
            role: Role::Solo,
            cfg: None,
            peer_side_addr: None,
            side_udp: None,
            services: vec![(listen_port, factory)],
            conns: HashMap::new(),
            timer: StackTimer::default(),
            booted: false,
            recorder: obs::nop(),
            tx: Vec::new(),
            active: Vec::new(),
            side_out: Vec::new(),
            cluster_out: Vec::new(),
            cluster_topo: None,
            boot_count: 0,
            accepted: Vec::new(),
        }
    }

    /// An ST-TCP primary; `backup_addr` is the backup's own (non-VIP)
    /// address for the side channel.
    pub fn primary(
        stack_cfg: StackConfig,
        cfg: SttcpConfig,
        backup_addr: Ipv4Addr,
        factory: AppFactory,
    ) -> Self {
        let engine = PrimaryEngine::new(cfg.clone(), SimTime::ZERO);
        let peer = (backup_addr, cfg.side_channel_port);
        ServerNode {
            stack: NetStack::new(stack_cfg.clone()),
            stack_cfg,
            role: Role::Primary(engine),
            peer_side_addr: Some(peer),
            side_udp: None,
            services: vec![(cfg.service_port, factory)],
            conns: HashMap::new(),
            timer: StackTimer::default(),
            booted: false,
            recorder: obs::nop(),
            tx: Vec::new(),
            active: Vec::new(),
            side_out: Vec::new(),
            cluster_out: Vec::new(),
            cluster_topo: None,
            boot_count: 0,
            accepted: Vec::new(),
            cfg: Some(cfg),
        }
    }

    /// An ST-TCP backup; `primary_addr` is the primary's own (non-VIP)
    /// address for the side channel.
    pub fn backup(
        stack_cfg: StackConfig,
        cfg: SttcpConfig,
        primary_addr: Ipv4Addr,
        factory: AppFactory,
    ) -> Self {
        let x = cfg.effective_ack_threshold(stack_cfg.tcp.recv_buf);
        let engine = BackupEngine::new(cfg.clone(), x, SimTime::ZERO);
        let peer = (primary_addr, cfg.side_channel_port);
        ServerNode {
            stack: NetStack::new(stack_cfg.clone()),
            stack_cfg,
            role: Role::Backup(engine),
            peer_side_addr: Some(peer),
            side_udp: None,
            services: vec![(cfg.service_port, factory)],
            conns: HashMap::new(),
            timer: StackTimer::default(),
            booted: false,
            recorder: obs::nop(),
            tx: Vec::new(),
            active: Vec::new(),
            side_out: Vec::new(),
            cluster_out: Vec::new(),
            cluster_topo: None,
            boot_count: 0,
            accepted: Vec::new(),
            cfg: Some(cfg),
        }
    }

    /// A cluster-chain member (primary + N backups); the role follows
    /// from this node's rank in `topology` (its own IP must be a
    /// member). Side-channel datagrams are targeted per the topology,
    /// so no peer address parameter is needed.
    pub fn cluster(
        stack_cfg: StackConfig,
        cfg: SttcpConfig,
        topology: Topology,
        factory: AppFactory,
    ) -> Self {
        let x = cfg.effective_ack_threshold(stack_cfg.tcp.recv_buf);
        let engine =
            ClusterEngine::new(cfg.clone(), stack_cfg.ip, topology.clone(), x, SimTime::ZERO);
        ServerNode {
            stack: NetStack::new(stack_cfg.clone()),
            stack_cfg,
            role: Role::Cluster(engine),
            peer_side_addr: None,
            side_udp: None,
            services: vec![(cfg.service_port, factory)],
            conns: HashMap::new(),
            timer: StackTimer::default(),
            booted: false,
            recorder: obs::nop(),
            tx: Vec::new(),
            active: Vec::new(),
            side_out: Vec::new(),
            cluster_out: Vec::new(),
            cluster_topo: Some(topology),
            boot_count: 0,
            accepted: Vec::new(),
            cfg: Some(cfg),
        }
    }

    /// The node's network stack (inspection).
    pub fn stack(&self) -> &NetStack {
        &self.stack
    }

    /// Registers an additional listening service (port + per-connection
    /// app factory). Call before the simulation starts; services
    /// survive a crash/reboot cycle like the constructor's service
    /// does. The ST-TCP engines are port-agnostic ([`ConnKey`] carries
    /// the server port), so every service is shadowed and migrated the
    /// same way.
    pub fn add_service(&mut self, port: u16, factory: AppFactory) {
        self.services.push((port, factory));
    }

    /// Installs an observability recorder on the stack and engine. The
    /// node keeps the handle and re-applies it after a reboot (the
    /// rebuilt stack and engine would otherwise silently revert to the
    /// no-op recorder).
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
        self.apply_recorder();
    }

    fn apply_recorder(&mut self) {
        self.stack.set_recorder(self.recorder.clone());
        match &mut self.role {
            Role::Primary(e) => e.set_recorder(self.recorder.clone()),
            Role::Backup(e) => e.set_recorder(self.recorder.clone()),
            Role::Cluster(e) => e.set_recorder(self.recorder.clone()),
            Role::Solo => {}
        }
    }

    /// The primary engine, if this node is a primary.
    pub fn primary_engine(&self) -> Option<&PrimaryEngine> {
        match &self.role {
            Role::Primary(e) => Some(e),
            _ => None,
        }
    }

    /// The backup engine, if this node is a backup.
    pub fn backup_engine(&self) -> Option<&BackupEngine> {
        match &self.role {
            Role::Backup(e) => Some(e),
            _ => None,
        }
    }

    /// The cluster engine, if this node is a chain member.
    pub fn cluster_engine(&self) -> Option<&ClusterEngine> {
        match &self.role {
            Role::Cluster(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable cluster engine access (scheduling a planned migration).
    pub fn cluster_engine_mut(&mut self) -> Option<&mut ClusterEngine> {
        match &mut self.role {
            Role::Cluster(e) => Some(e),
            _ => None,
        }
    }

    /// Concrete application instance attached to `sock`.
    pub fn app<T: Application>(&self, sock: SockId) -> Option<&T> {
        let app: &dyn Any = self.conns.get(&sock)?.app.as_ref();
        app.downcast_ref::<T>()
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        match &self.role {
            Role::Solo => None,
            Role::Primary(_) => self.cfg.as_ref().map(|c| c.hb_interval),
            Role::Backup(_) => self.cfg.as_ref().map(|c| c.effective_sync_time()),
            // One tick serves every cluster role (broadcast cadence for
            // the primary, sync/detection cadence for backups), so use
            // the finer of the two.
            Role::Cluster(_) => {
                self.cfg.as_ref().map(|c| c.hb_interval.min(c.effective_sync_time()))
            }
        }
    }

    /// Backup pre-inspection of raw frames: tapped primary→client
    /// segments carry the primary's cumulative ACK. Cluster members
    /// share the path (the engine ignores taps unless it is a backup).
    fn inspect_tapped(&mut self, now: SimTime, frame: &Bytes) {
        if !matches!(self.role, Role::Backup(_) | Role::Cluster(_)) {
            return;
        }
        let Some(cfg) = &self.cfg else {
            return;
        };
        let Ok(eth) = EthernetFrame::parse(frame.clone()) else {
            return;
        };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(ip) = Ipv4Packet::parse(eth.payload) else {
            return;
        };
        if ip.src != cfg.vip || ip.protocol != IpProtocol::Tcp {
            return;
        }
        let Ok(seg) = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst) else {
            return;
        };
        if !seg.flags.contains(TcpFlags::ACK) {
            return;
        }
        let key = ConnKey {
            client_ip: ip.dst,
            client_port: seg.dst_port,
            server_ip: ip.src,
            server_port: seg.src_port,
        };
        let (seq, ack, syn) = (SeqNum(seg.seq), SeqNum(seg.ack), seg.flags.contains(TcpFlags::SYN));
        match &mut self.role {
            Role::Backup(engine) => {
                engine.on_tapped_primary_segment(now, key, seq, ack, syn, &mut self.stack)
            }
            Role::Cluster(engine) => {
                engine.on_tapped_primary_segment(now, key, seq, ack, syn, &mut self.stack)
            }
            _ => unreachable!("gated above"),
        }
    }

    fn pump(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        // 1. Adopt newly established (or shadowed) connections.
        for si in 0..self.services.len() {
            while let Some(sock) = self.stack.accept(self.services[si].0) {
                let app = (self.services[si].1)();
                self.conns.insert(sock, ConnState { app, connected: false, peer_closed: false });
                self.accepted.push(sock);
                match &mut self.role {
                    Role::Backup(engine) => {
                        if let Some(tcb) = self.stack.tcb(sock) {
                            // Baseline at the start of the client's stream,
                            // NOT the current rcv_nxt: when the client
                            // piggybacks its handshake ACK on the first
                            // request, the shadow establishes on a
                            // data-carrying frame and rcv_nxt already covers
                            // bytes the primary must not discard before we
                            // acknowledge them.
                            engine.register_conn(
                                ConnKey::from_server_quad(tcb.quad()),
                                tcb.irs().add(1),
                            );
                        }
                    }
                    Role::Cluster(engine) if engine.role() == ClusterRole::Backup => {
                        if let Some(tcb) = self.stack.tcb(sock) {
                            engine.register_conn(
                                ConnKey::from_server_quad(tcb.quad()),
                                tcb.irs().add(1),
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        // 2. Drain the side channel.
        if let Some(side) = self.side_udp {
            while let Some(dgram) = self.stack.udp_recv(side) {
                let src_ip = dgram.src_ip;
                let Some(msg) = SideMsg::decode(dgram.payload) else {
                    continue;
                };
                let (kind, conn, seq, len) = msg.trace_parts();
                self.recorder
                    .trace(now.as_nanos(), &TraceEvent::SideRecv { msg: kind, conn, seq, len });
                match &mut self.role {
                    Role::Primary(e) => e.on_side_msg(now, msg, &mut self.stack),
                    Role::Backup(e) => e.on_side_msg(now, msg, &mut self.stack),
                    Role::Cluster(e) => e.on_side_msg(now, src_ip, msg, &mut self.stack),
                    Role::Solo => {}
                }
            }
        }
        // 3. Pump applications — only over sockets the stack reports as
        // touched since the last pump (ingress, timers, engine injection).
        // Idle connections cost nothing here, which is what keeps a pump
        // O(active) with thousands of open connections.
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        self.stack.drain_activity(&mut active);
        // Feed receive progress to the backup's ack strategy (the engine
        // dedups; acks themselves go out in step 4).
        match &mut self.role {
            Role::Backup(engine) => {
                for &sock in &active {
                    if let Some(tcb) = self.stack.tcb(sock) {
                        engine.note_activity(ConnKey::from_server_quad(tcb.quad()));
                    }
                }
            }
            Role::Cluster(engine) => {
                for &sock in &active {
                    if let Some(tcb) = self.stack.tcb(sock) {
                        engine.note_activity(ConnKey::from_server_quad(tcb.quad()));
                    }
                }
            }
            _ => {}
        }
        let mut buf = [0u8; 4096];
        for &sock in &active {
            let Some(conn) = self.conns.get_mut(&sock) else {
                continue; // side-channel / unadopted socket
            };
            let Some(state) = self.stack.state(sock) else {
                continue;
            };
            if !conn.connected && state.is_synchronized() {
                conn.connected = true;
                let mut api = StackApi::new(&mut self.stack, sock, now);
                conn.app.on_connected(&mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE + sock.raw());
                }
            }
            loop {
                let n = self.stack.read(sock, &mut buf).unwrap_or(0);
                if n == 0 {
                    break;
                }
                let mut api = StackApi::new(&mut self.stack, sock, now);
                conn.app.on_data(&buf[..n], &mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE + sock.raw());
                }
            }
            if self.stack.tcb(sock).map(|t| t.writable() > 0).unwrap_or(false) {
                let mut api = StackApi::new(&mut self.stack, sock, now);
                conn.app.on_writable(&mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE + sock.raw());
                }
            }
            if !conn.peer_closed && self.stack.tcb(sock).map(|t| t.peer_closed()).unwrap_or(false) {
                conn.peer_closed = true;
                let mut api = StackApi::new(&mut self.stack, sock, now);
                conn.app.on_peer_closed(&mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE + sock.raw());
                }
            }
        }
        // 3b. Reap connections that have fully closed: drop the app and
        // release the TCB slot (long-running servers must not grow
        // without bound). Closure is always driven by a segment or timer
        // that marks the socket active, so checking the active set is
        // enough — no full-map sweep. `accepted` keeps the historical
        // handle; the reused `active` buffer keeps this allocation-free.
        for &sock in &active {
            if matches!(self.stack.state(sock), None | Some(tcpstack::TcpState::Closed))
                && self.conns.remove(&sock).is_some()
            {
                self.stack.release(sock);
            }
        }
        active.clear();
        self.active = active;
        // 4. Event-driven backup acks (the X-threshold rule).
        match &mut self.role {
            Role::Backup(engine) => engine.maybe_send_acks(&mut self.stack, false),
            Role::Cluster(engine) => engine.maybe_send_acks(&mut self.stack, false),
            _ => {}
        }
        // 5. Flush engine messages / fencing / logger queries.
        self.flush_engine(now, ctx);
        // 6. Transmit stack output and rearm the stack timer.
        self.stack.poll_into(now, &mut self.tx);
        for frame in self.tx.drain(..) {
            ctx.send_frame(LAN, frame);
        }
        self.timer.rearm(ctx, self.stack.next_deadline());
    }

    fn flush_engine(&mut self, now: SimTime, ctx: &mut Context) {
        // Cluster role first: its outbox is targeted per message, and
        // it has no single `peer_side_addr`.
        if let Role::Cluster(engine) = &mut self.role {
            let Some(side) = self.side_udp else {
                return;
            };
            let Some(cfg) = &self.cfg else {
                return;
            };
            let port = cfg.side_channel_port;
            let mut msgs = std::mem::take(&mut self.cluster_out);
            msgs.clear();
            engine.drain_outbox_into(&mut msgs);
            for (dst, msg) in &msgs {
                let (kind, conn, seq, len) = msg.trace_parts();
                self.recorder
                    .trace(now.as_nanos(), &TraceEvent::SideSend { msg: kind, conn, seq, len });
                self.stack.udp_send(now, side, *dst, port, msg.encode());
            }
            msgs.clear();
            self.cluster_out = msgs;
            let Role::Cluster(engine) = &mut self.role else {
                unreachable!();
            };
            if let Some(outlet) = engine.take_fence_request() {
                let mac = self.stack.config().mac;
                ctx.send_frame(MGMT, power_off_frame(mac, outlet));
            }
            let mac = self.stack.config().mac;
            for query in engine.take_logger_queries() {
                ctx.send_frame(LAN, query.to_frame(mac));
            }
            return;
        }
        let Some((peer_ip, peer_port)) = self.peer_side_addr else {
            return;
        };
        let Some(side) = self.side_udp else {
            return;
        };
        let mut msgs = std::mem::take(&mut self.side_out);
        msgs.clear();
        match &mut self.role {
            Role::Primary(e) => e.drain_outbox_into(&mut msgs),
            Role::Backup(e) => e.drain_outbox_into(&mut msgs),
            Role::Solo | Role::Cluster(_) => {}
        }
        for msg in &msgs {
            let (kind, conn, seq, len) = msg.trace_parts();
            self.recorder
                .trace(now.as_nanos(), &TraceEvent::SideSend { msg: kind, conn, seq, len });
            self.stack.udp_send(now, side, peer_ip, peer_port, msg.encode());
        }
        msgs.clear();
        self.side_out = msgs;
        if let Role::Backup(engine) = &mut self.role {
            if let Some(outlet) = engine.take_fence_request() {
                let mac = self.stack.config().mac;
                ctx.send_frame(MGMT, power_off_frame(mac, outlet));
            }
            let mac = self.stack.config().mac;
            for query in engine.take_logger_queries() {
                ctx.send_frame(LAN, query.to_frame(mac));
            }
        }
    }
}

impl Node for ServerNode {
    fn on_start(&mut self, ctx: &mut Context) {
        if self.booted {
            // Power-on after a crash: a rebooted machine has lost every
            // TCB, every application, and every engine state — model the
            // amnesia faithfully. (Note the hazard this implies: a
            // rebooted ex-primary knows nothing of connections that
            // migrated away and will RST clients that still address it;
            // see tests/primary_reboot.rs.)
            self.stack = NetStack::new(self.stack_cfg.clone());
            self.conns.clear();
            self.accepted.clear();
            self.timer = StackTimer::default();
            let now = ctx.now();
            self.role = match (&self.role, &self.cfg, self.peer_side_addr) {
                (Role::Primary(_), Some(cfg), Some(_)) => {
                    Role::Primary(PrimaryEngine::new(cfg.clone(), now))
                }
                (Role::Backup(_), Some(cfg), Some(_)) => {
                    let x = cfg.effective_ack_threshold(self.stack_cfg.tcp.recv_buf);
                    Role::Backup(BackupEngine::new(cfg.clone(), x, now))
                }
                (Role::Cluster(_), Some(cfg), _) => {
                    // Rejoin under the *initial* topology: an amnesiac
                    // node cannot know the current reign, so it comes
                    // back at epoch 0 and adopts whatever higher epoch
                    // the first heartbeat it hears announces.
                    let topo = self.cluster_topo.clone().expect("cluster role keeps its topology");
                    let x = cfg.effective_ack_threshold(self.stack_cfg.tcp.recv_buf);
                    Role::Cluster(ClusterEngine::new(cfg.clone(), self.stack_cfg.ip, topo, x, now))
                }
                _ => Role::Solo,
            };
            self.apply_recorder();
        }
        self.booted = true;
        self.boot_count += 1;
        // The server pump is activity-driven; the client node stays on
        // the always-pump path (single connection, nothing to win).
        self.stack.set_activity_tracking(true);
        for &(port, _) in &self.services {
            self.stack.listen(port);
        }
        if let Some(cfg) = &self.cfg {
            self.side_udp = Some(self.stack.udp_bind(cfg.side_channel_port));
        }
        if let Some(tick) = self.tick_interval() {
            ctx.set_timer_after(tick, TOK_TICK);
        }
        self.pump(ctx);
    }

    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        if port != LAN {
            return; // nothing listens on the management port
        }
        self.inspect_tapped(ctx.now(), &frame);
        self.stack.handle_frame(ctx.now(), frame);
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOK_TICK => {
                let now = ctx.now();
                match &mut self.role {
                    Role::Primary(e) => e.on_tick(now, &mut self.stack),
                    Role::Backup(e) => e.on_tick(now, &mut self.stack),
                    Role::Cluster(e) => e.on_tick(now, &mut self.stack),
                    Role::Solo => {}
                }
                if let Some(tick) = self.tick_interval() {
                    ctx.set_timer_after(tick, TOK_TICK);
                }
            }
            TOK_STACK => self.timer.fired(),
            t if t >= TOK_APP_BASE => {
                let sock = SockId::from_raw(t - TOK_APP_BASE);
                let now = ctx.now();
                if let Some(conn) = self.conns.get_mut(&sock) {
                    let mut api = StackApi::new(&mut self.stack, sock, now);
                    conn.app.on_wake(&mut api);
                    if let Some(after) = api.take_wake() {
                        ctx.set_timer_after(after, TOK_APP_BASE + sock.raw());
                    }
                }
            }
            _ => {}
        }
        self.pump(ctx);
    }
}

/// An unmodified TCP client driving one application over one connection.
pub struct ClientNode {
    stack: NetStack,
    target: (Ipv4Addr, u16),
    connect_delay: SimDuration,
    app: Box<dyn Application>,
    sock: Option<SockId>,
    connected: bool,
    peer_closed: bool,
    timer: StackTimer,
    /// Reused frame staging buffer for [`NetStack::poll_into`].
    tx: Vec<Bytes>,
}

impl ClientNode {
    /// A client that connects to `target` `connect_delay` after start.
    pub fn new(
        stack_cfg: StackConfig,
        target: (Ipv4Addr, u16),
        connect_delay: SimDuration,
        app: impl Application,
    ) -> Self {
        ClientNode {
            stack: NetStack::new(stack_cfg),
            target,
            connect_delay,
            app: Box::new(app),
            sock: None,
            connected: false,
            peer_closed: false,
            timer: StackTimer::default(),
            tx: Vec::new(),
        }
    }

    /// The client's stack (inspection).
    pub fn stack(&self) -> &NetStack {
        &self.stack
    }

    /// Installs an observability recorder on the client's stack.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.stack.set_recorder(recorder);
    }

    /// The client's socket handle once connected.
    pub fn sock(&self) -> Option<SockId> {
        self.sock
    }

    /// The application, downcast to its concrete type.
    pub fn app<T: Application>(&self) -> Option<&T> {
        let app: &dyn Any = self.app.as_ref();
        app.downcast_ref::<T>()
    }

    fn pump(&mut self, ctx: &mut Context) {
        let now = ctx.now();
        if let Some(sock) = self.sock {
            if let Some(state) = self.stack.state(sock) {
                if !self.connected && state.is_synchronized() {
                    self.connected = true;
                    let mut api = StackApi::new(&mut self.stack, sock, now);
                    self.app.on_connected(&mut api);
                    if let Some(after) = api.take_wake() {
                        ctx.set_timer_after(after, TOK_APP_BASE);
                    }
                }
            }
            let mut buf = [0u8; 4096];
            loop {
                let n = self.stack.read(sock, &mut buf).unwrap_or(0);
                if n == 0 {
                    break;
                }
                let mut api = StackApi::new(&mut self.stack, sock, now);
                self.app.on_data(&buf[..n], &mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE);
                }
            }
            if self.stack.tcb(sock).map(|t| t.writable() > 0).unwrap_or(false) {
                let mut api = StackApi::new(&mut self.stack, sock, now);
                self.app.on_writable(&mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE);
                }
            }
            if !self.peer_closed && self.stack.tcb(sock).map(|t| t.peer_closed()).unwrap_or(false) {
                self.peer_closed = true;
                let mut api = StackApi::new(&mut self.stack, sock, now);
                self.app.on_peer_closed(&mut api);
                if let Some(after) = api.take_wake() {
                    ctx.set_timer_after(after, TOK_APP_BASE);
                }
            }
        }
        self.stack.poll_into(now, &mut self.tx);
        for frame in self.tx.drain(..) {
            ctx.send_frame(LAN, frame);
        }
        self.timer.rearm(ctx, self.stack.next_deadline());
    }
}

impl Node for ClientNode {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.set_timer_after(self.connect_delay, TOK_CONNECT);
    }

    fn on_frame(&mut self, _port: PortId, frame: Bytes, ctx: &mut Context) {
        self.stack.handle_frame(ctx.now(), frame);
        self.pump(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        match token {
            TOK_CONNECT if self.sock.is_none() => {
                self.sock = self.stack.connect(ctx.now(), self.target.0, self.target.1).ok();
            }
            TOK_STACK => self.timer.fired(),
            t if t >= TOK_APP_BASE => {
                if let Some(sock) = self.sock {
                    let now = ctx.now();
                    let mut api = StackApi::new(&mut self.stack, sock, now);
                    self.app.on_wake(&mut api);
                    if let Some(after) = api.take_wake() {
                        ctx.set_timer_after(after, TOK_APP_BASE);
                    }
                }
            }
            _ => {}
        }
        self.pump(ctx);
    }
}

/// The two-interface gateway as a simulation node: port 0 = side A
/// (clients), port 1 = side B (server LAN).
pub struct GatewayNode {
    gw: Gateway,
}

impl GatewayNode {
    /// Wraps a configured [`Gateway`].
    pub fn new(gw: Gateway) -> Self {
        GatewayNode { gw }
    }

    /// The inner gateway (inspection).
    pub fn gateway(&self) -> &Gateway {
        &self.gw
    }
}

impl Node for GatewayNode {
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        let side = if port == PortId(0) { Side::A } else { Side::B };
        self.gw.handle_frame(side, frame);
        for (out_side, out_frame) in self.gw.poll() {
            let out_port = PortId(out_side.index());
            ctx.send_frame(out_port, out_frame);
        }
    }
}
