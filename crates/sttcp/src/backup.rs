//! The backup-side ST-TCP engine.
//!
//! The backup shadows every service connection through the tap (handled
//! by the shadow-mode TCP stack) and this engine adds the protocol
//! machinery of §4.2–§4.4:
//!
//! * the **acknowledgment strategy**: ack when ≥ X in-order bytes
//!   arrived since the last ack, or when `SyncTime` elapsed;
//! * **missing-segment detection**: tapped primary→client segments
//!   reveal the primary's cumulative ACK; anything the primary has
//!   acknowledged that the shadow lacks was lost on the tap and is
//!   requested over the side channel;
//! * **failure detection**: the primary is suspected after
//!   `missed_hb_threshold` heartbeat intervals of side-channel silence;
//! * **takeover**: optional fencing via the power switch, lifting the
//!   egress suppression of the VIP, and (optionally) asking the packet
//!   logger to replay client segments that a tap omission plus the
//!   crash made otherwise unrecoverable (double failures, §3.2).

use crate::config::{Fencing, SttcpConfig, TakeoverPolicy};
use crate::messages::{ConnKey, SideMsg};
use netsim::logger::ReplayQuery;
use netsim::{SimDuration, SimTime};
use obs::{Counter, Mark, SharedRecorder, TraceEvent};
use tcpstack::{NetStack, SeqNum, TimerWheel};

/// Backup-side counters and timeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackupStats {
    /// Backup acks sent.
    pub acks_sent: u64,
    /// Acks triggered by the X-byte threshold (vs. the SyncTime timer).
    pub acks_threshold_triggered: u64,
    /// Missing-segment requests sent.
    pub missing_reqs: u64,
    /// Bytes recovered over the side channel.
    pub missing_bytes_recovered: u64,
    /// Heartbeats received from the primary.
    pub hbs_received: u64,
    /// Logger replay queries issued at takeover.
    pub logger_queries: u64,
    /// Full-history logger queries issued to bootstrap a shadow whose
    /// SYN was missed on the tap (late-join extension).
    pub bootstrap_queries: u64,
}

#[derive(Debug, Clone, Copy)]
struct ConnTrack {
    last_acked_next: SeqNum,
    highest_primary_ack: Option<SeqNum>,
    outstanding_req: Option<(SeqNum, SimTime)>,
    /// Whether the key already sits on the `pending` ack list.
    pending_ack: bool,
    /// Whether the key already sits on the `deferred` ack list.
    deferred: bool,
}

/// See the module docs.
#[derive(Debug)]
pub struct BackupEngine {
    cfg: SttcpConfig,
    x_threshold: usize,
    conns: std::collections::HashMap<ConnKey, ConnTrack>,
    last_primary_heard: Option<SimTime>,
    suspected_at: Option<SimTime>,
    /// Cold-replay policy: when state reconstruction completes.
    replay_ready_at: Option<SimTime>,
    takeover_at: Option<SimTime>,
    hb_seq: u64,
    /// Connections with possibly-unacked receive progress: the ack scan
    /// visits only these, so a pump costs O(active), not O(connections).
    /// Deduplicated via `ConnTrack::pending_ack`.
    pending: Vec<ConnKey>,
    /// Reused swap buffer for the pending scan (no per-pump allocation).
    pending_scratch: Vec<ConnKey>,
    /// Connections with unacked progress still below the X threshold,
    /// parked until the periodic forced tick. Keeping these off the
    /// `pending` list is what makes a pump O(new activity): otherwise
    /// every frame event would rescan every in-flight connection.
    /// Fresh activity re-queues a parked key via [`Self::note_activity`].
    deferred: Vec<ConnKey>,
    /// Wake index for missing-request retries — replaces the per-tick
    /// scan over every connection's `outstanding_req`.
    retry_wheel: TimerWheel<ConnKey>,
    /// Reused pop buffer for `retry_wheel`.
    retry_expired: Vec<ConnKey>,
    outbox: Vec<SideMsg>,
    fence_request: Option<u32>,
    logger_queries: Vec<ReplayQuery>,
    last_logger_query: Option<SimTime>,
    bootstrap_attempts: std::collections::HashMap<ConnKey, SimTime>,
    recorder: SharedRecorder,
    /// Counters.
    pub stats: BackupStats,
}

impl BackupEngine {
    /// Creates the engine. `x_threshold` is the ack byte threshold `X`
    /// (typically ¾ of the primary's second buffer); `now` starts the
    /// primary-liveness clock.
    pub fn new(cfg: SttcpConfig, x_threshold: usize, now: SimTime) -> Self {
        BackupEngine {
            cfg,
            x_threshold,
            conns: std::collections::HashMap::new(),
            last_primary_heard: Some(now),
            suspected_at: None,
            replay_ready_at: None,
            takeover_at: None,
            hb_seq: 0,
            pending: Vec::new(),
            pending_scratch: Vec::new(),
            deferred: Vec::new(),
            retry_wheel: TimerWheel::new(),
            retry_expired: Vec::new(),
            outbox: Vec::new(),
            fence_request: None,
            logger_queries: Vec::new(),
            last_logger_query: None,
            bootstrap_attempts: std::collections::HashMap::new(),
            recorder: obs::nop(),
            stats: BackupStats::default(),
        }
    }

    /// Installs an observability recorder (no-op by default).
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Whether this backup has taken over as primary.
    pub fn has_taken_over(&self) -> bool {
        self.takeover_at.is_some()
    }

    /// When the primary was first suspected.
    pub fn suspected_at(&self) -> Option<SimTime> {
        self.suspected_at
    }

    /// When the takeover completed (suppression lifted).
    pub fn takeover_at(&self) -> Option<SimTime> {
        self.takeover_at
    }

    /// Registers a newly shadowed connection (the node adapter calls
    /// this when the shadow listener produces a socket).
    pub fn register_conn(&mut self, key: ConnKey, initial_next: SeqNum) {
        self.conns.entry(key).or_insert(ConnTrack {
            last_acked_next: initial_next,
            highest_primary_ack: None,
            outstanding_req: None,
            pending_ack: false,
            deferred: false,
        });
    }

    /// Notes that `key`'s shadow made receive progress (the node adapter
    /// feeds this from the stack's activity list). Queues the connection
    /// for the next ack scan; idempotent until the scan runs.
    pub fn note_activity(&mut self, key: ConnKey) {
        if let Some(track) = self.conns.get_mut(&key) {
            if !track.pending_ack {
                track.pending_ack = true;
                self.pending.push(key);
            }
        }
    }

    /// Handles one side-channel message from the primary.
    pub fn on_side_msg(&mut self, now: SimTime, msg: SideMsg, stack: &mut NetStack) {
        self.last_primary_heard = Some(now);
        self.recorder.mark_latest(Mark::LastPrimaryHeard, now.as_nanos());
        match msg {
            SideMsg::Heartbeat { .. } => {
                self.stats.hbs_received += 1;
                self.recorder.count(Counter::HeartbeatsReceived, 1);
            }
            SideMsg::MissingData { conn, seq, data } => {
                if let Some(sock) = stack.sock_by_quad(conn.server_quad()) {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.inject_rx(now, SeqNum(seq), &data);
                        self.stats.missing_bytes_recovered += data.len() as u64;
                    }
                }
                if let Some(track) = self.conns.get_mut(&conn) {
                    track.outstanding_req = None;
                }
                // Injected bytes are receive progress: queue the ack check.
                self.note_activity(conn);
            }
            SideMsg::MissingNack { conn, .. } => {
                if let Some(track) = self.conns.get_mut(&conn) {
                    track.outstanding_req = None;
                }
            }
            SideMsg::CongSync { conn, cwnd, ssthresh } => {
                // Adopt the primary's operating point so a takeover does
                // not cold-start from the initial window. Advisory: the
                // shadow works fine without ever seeing one.
                if let Some(sock) = stack.sock_by_quad(conn.server_quad()) {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.import_congestion(tcpstack::CongSnapshot { cwnd, ssthresh });
                    }
                }
            }
            // Backup-bound only; a backup never receives these.
            SideMsg::BackupAck { .. } | SideMsg::MissingReq { .. } => {}
            // Cluster-subsystem messages; the two-node engine ignores them.
            SideMsg::ClusterHb { .. }
            | SideMsg::AckBatch { .. }
            | SideMsg::Drain { .. }
            | SideMsg::DrainReady { .. }
            | SideMsg::Handover { .. } => {}
        }
    }

    /// Inspects a tapped primary→client TCP segment.
    ///
    /// * A SYN/ACK reveals the primary's ISN — the authoritative source
    ///   for the shadow's sequence-space resynchronization (robust
    ///   against the client piggybacking its handshake ACK onto data).
    /// * The cumulative ACK (`primary_ack`, the primary's
    ///   `NextByteExpected`) exposes tap omissions (§4.2).
    pub fn on_tapped_primary_segment(
        &mut self,
        now: SimTime,
        key: ConnKey,
        primary_seq: SeqNum,
        primary_ack: SeqNum,
        is_syn: bool,
        stack: &mut NetStack,
    ) {
        if is_syn {
            match stack.sock_by_quad(key.server_quad()) {
                Some(sock) => {
                    if let Some(tcb) = stack.tcb_mut(sock) {
                        tcb.shadow_resync_iss(now, primary_seq);
                    }
                }
                // A SYN/ACK for a quad we have no shadow of means the
                // client's SYN was lost on the tap. Bootstrap right away:
                // if the primary dies before sending any data segment
                // (e.g. while the application prepares a reply), this
                // SYN/ACK is the only tapped evidence the connection
                // exists. Its ack field (client ISN + 1) anchors the
                // replay window.
                None => self.maybe_bootstrap(now, key, primary_ack),
            }
            return; // a SYN/ACK's ack field is the handshake, not data
        }
        if stack.sock_by_quad(key.server_quad()).is_none() {
            // The primary is serving a connection we have no shadow for:
            // its SYN was lost on the tap. Late-join extension (beyond
            // the paper): ask the logger to replay the connection's
            // entire client-side history — the replayed SYN builds the
            // shadow, the replayed handshake ACK resynchronizes its ISN,
            // and the replayed data catches the application up.
            self.maybe_bootstrap(now, key, primary_ack);
            return;
        }
        let Some(track) = self.conns.get_mut(&key) else {
            return;
        };
        track.highest_primary_ack = Some(match track.highest_primary_ack {
            Some(prev) => prev.max(primary_ack),
            None => primary_ack,
        });
        self.maybe_request_missing(now, key, stack);
    }

    /// Fires a full-history replay query for a connection with no
    /// shadow (rate-limited per connection).
    fn maybe_bootstrap(&mut self, now: SimTime, key: ConnKey, primary_ack: SeqNum) {
        if !self.cfg.use_logger {
            return; // without a logger the history is unrecoverable
        }
        let retry = self.cfg.effective_sync_time().saturating_mul(2);
        if let Some(&last) = self.bootstrap_attempts.get(&key) {
            let due = now.checked_duration_since(last).map(|d| d >= retry).unwrap_or(false);
            if !due {
                return;
            }
        }
        self.bootstrap_attempts.insert(key, now);
        self.stats.bootstrap_queries += 1;
        self.recorder.count(Counter::BootstrapQueries, 1);
        // The client's sequence space is anchored by the primary's
        // cumulative ACK; a half-space window backwards covers the whole
        // connection history including the SYN.
        self.logger_queries.push(ReplayQuery {
            src_ip: key.client_ip,
            dst_ip: key.server_ip,
            src_port: key.client_port,
            dst_port: key.server_port,
            seq_from: primary_ack.sub(1 << 30).raw(),
            seq_to: primary_ack.add(1 << 20).raw(),
        });
    }

    fn maybe_request_missing(&mut self, now: SimTime, key: ConnKey, stack: &mut NetStack) {
        let Some(track) = self.conns.get_mut(&key) else {
            return;
        };
        let Some(primary_ack) = track.highest_primary_ack else {
            return;
        };
        let Some(sock) = stack.sock_by_quad(key.server_quad()) else {
            return;
        };
        let Some(tcb) = stack.tcb(sock) else {
            return;
        };
        // Compare against ack_seq (payload + consumed FIN) so a consumed
        // FIN does not read as one missing byte forever.
        let have = tcb.ack_seq();
        let gap = primary_ack.distance(have);
        if gap <= 0 {
            track.outstanding_req = None;
            return;
        }
        // One request in flight per connection; retried by the tick.
        if track.outstanding_req.is_some() {
            return;
        }
        let from = tcb.rcv_nxt();
        let len = (gap as usize).min(self.cfg.missing_req_chunk) as u32;
        track.outstanding_req = Some((from, now));
        // Arm the retry check just past the staleness window; the pop
        // re-verifies against `outstanding_req` (lazy cancellation).
        let window = self.cfg.effective_sync_time().saturating_mul(2);
        self.retry_wheel.schedule((now + window).as_nanos() + 1, key);
        self.stats.missing_reqs += 1;
        self.recorder.count(Counter::MissingReqsSent, 1);
        self.outbox.push(SideMsg::MissingReq { conn: key, from: from.raw(), len });
    }

    /// The backup's acknowledgment strategy (§4.3). Called after every
    /// batch of tapped input with `force = false` (X-threshold rule) and
    /// from the SyncTime tick with `force = true`.
    ///
    /// Visits only connections queued by [`BackupEngine::note_activity`]
    /// — an idle shadow costs nothing. A connection with progress below
    /// the threshold stays queued so the SyncTime tick can force-ack it;
    /// the swap buffer is reused, so steady state allocates nothing.
    pub fn maybe_send_acks(&mut self, stack: &mut NetStack, force: bool) {
        debug_assert!(self.pending_scratch.is_empty());
        std::mem::swap(&mut self.pending, &mut self.pending_scratch);
        for i in 0..self.pending_scratch.len() {
            let key = self.pending_scratch[i];
            let Some(track) = self.conns.get_mut(&key) else {
                continue; // untracked: flag died with the entry
            };
            track.pending_ack = false;
            let Some(next) = stack
                .sock_by_quad(key.server_quad())
                .and_then(|sock| stack.tcb(sock))
                .map(|tcb| tcb.rcv_nxt())
            else {
                continue; // shadow gone; drop from the set
            };
            let progress = next.distance(track.last_acked_next);
            if progress <= 0 {
                continue; // fully acked; re-queued on activity
            }
            // Careful with the comparison: `usize::MAX as i64` is -1, so
            // cast the (known-positive) progress up instead.
            let threshold_hit = progress as u128 >= self.x_threshold as u128;
            if threshold_hit || force {
                self.outbox.push(SideMsg::BackupAck { conn: key, acked_next: next.raw() });
                track.last_acked_next = next;
                self.stats.acks_sent += 1;
                self.recorder.count(Counter::BackupAcksSent, 1);
                if threshold_hit && !force {
                    self.stats.acks_threshold_triggered += 1;
                }
            } else if !track.deferred {
                // Below threshold, not forced: park it for the periodic
                // tick. Re-queueing onto `pending` here would make every
                // pump rescan every in-flight connection — O(fleet) per
                // frame event. Progress can only grow via new activity,
                // which re-queues the key, so nothing is lost by parking.
                track.deferred = true;
                self.deferred.push(key);
            }
        }
        self.pending_scratch.clear();
        if force {
            // The periodic tick flushes every parked sub-threshold ack.
            std::mem::swap(&mut self.deferred, &mut self.pending_scratch);
            for i in 0..self.pending_scratch.len() {
                let key = self.pending_scratch[i];
                let Some(track) = self.conns.get_mut(&key) else {
                    continue;
                };
                track.deferred = false;
                let Some(next) = stack
                    .sock_by_quad(key.server_quad())
                    .and_then(|sock| stack.tcb(sock))
                    .map(|tcb| tcb.rcv_nxt())
                else {
                    continue;
                };
                let progress = next.distance(track.last_acked_next);
                if progress <= 0 {
                    continue; // already acked via the pending scan
                }
                self.outbox.push(SideMsg::BackupAck { conn: key, acked_next: next.raw() });
                track.last_acked_next = next;
                self.stats.acks_sent += 1;
                self.recorder.count(Counter::BackupAcksSent, 1);
            }
            self.pending_scratch.clear();
        }
    }

    /// Periodic tick (every `SyncTime`): acknowledgments, heartbeat,
    /// missing-request retry, failure detection.
    pub fn on_tick(&mut self, now: SimTime, stack: &mut NetStack) {
        self.maybe_send_acks(stack, true);
        self.hb_seq += 1;
        self.outbox.push(SideMsg::Heartbeat { seq: self.hb_seq });
        // Retry stale missing-segment requests: the wheel pops exactly
        // the candidates whose staleness window has passed — no scan.
        // Each pop re-verifies against the live request (an answered or
        // re-issued request leaves a stale entry that pops harmlessly).
        let window = self.cfg.effective_sync_time().saturating_mul(2);
        let mut popped = std::mem::take(&mut self.retry_expired);
        popped.clear();
        self.retry_wheel.advance(now.as_nanos(), &mut popped);
        for &key in &popped {
            let stale = self
                .conns
                .get(&key)
                .and_then(|t| t.outstanding_req)
                .map(|(_, at)| now.checked_duration_since(at).map(|d| d > window).unwrap_or(false))
                .unwrap_or(false);
            if stale {
                if let Some(track) = self.conns.get_mut(&key) {
                    track.outstanding_req = None;
                }
                self.maybe_request_missing(now, key, stack);
            }
        }
        self.retry_expired = popped;
        self.check_detection(now, stack);
        // After a takeover, re-ask the logger while gaps remain: the
        // replayed frames themselves ride the lossy tap path.
        if self.takeover_at.is_some() && self.cfg.use_logger {
            let due = self
                .last_logger_query
                .map(|t| {
                    now.checked_duration_since(t)
                        .map(|d| d >= self.cfg.effective_sync_time().saturating_mul(2))
                        .unwrap_or(false)
                })
                .unwrap_or(true);
            if due {
                self.queue_logger_queries(now, stack);
            }
        }
    }

    fn check_detection(&mut self, now: SimTime, stack: &mut NetStack) {
        if self.takeover_at.is_some() {
            return;
        }
        // Cold-replay in progress? Promote once reconstruction is done.
        if let Some(ready_at) = self.replay_ready_at {
            if now >= ready_at {
                self.take_over(now, stack);
            }
            return;
        }
        let deadline: SimDuration =
            self.cfg.hb_interval.saturating_mul(u64::from(self.cfg.missed_hb_threshold));
        let silence = self.last_primary_heard.and_then(|t| now.checked_duration_since(t));
        let silent = silence.map(|d| d > deadline).unwrap_or(false);
        if !silent {
            return;
        }
        // Suspect → fence → take over (§4.4).
        self.suspected_at = Some(now);
        self.recorder.mark_first(Mark::SuspectedPrimaryDead, now.as_nanos());
        self.recorder.trace(
            now.as_nanos(),
            &TraceEvent::Suspected { silent_ns: silence.map(|d| d.as_nanos()).unwrap_or(0) },
        );
        if let Fencing::PowerSwitch { outlet } = self.cfg.fencing {
            self.fence_request = Some(outlet);
            self.recorder.mark_first(Mark::FenceRequested, now.as_nanos());
            self.recorder.trace(now.as_nanos(), &TraceEvent::Fence { outlet });
        }
        match self.cfg.takeover_policy {
            TakeoverPolicy::Active => self.take_over(now, stack),
            TakeoverPolicy::ColdReplay { restart_delay, replay_rate_bps } => {
                // FT-TCP-style recovery (paper §2): start a replacement
                // process and replay the connection history through the
                // application before serving. The history is the input
                // stream plus the output the app must regenerate (and
                // discard) to reach the crash-point state. We model the
                // cost; the shadow state itself is already correct.
                let total_bytes: u64 = self
                    .conns
                    .keys()
                    .filter_map(|k| stack.sock_by_quad(k.server_quad()))
                    .filter_map(|s| stack.tcb(s))
                    .map(|t| t.stats.bytes_in + t.stats.bytes_out)
                    .sum();
                let replay = SimDuration::from_nanos(
                    total_bytes.saturating_mul(1_000_000_000) / replay_rate_bps.max(1),
                );
                self.replay_ready_at = Some(now + restart_delay + replay);
            }
        }
    }

    fn take_over(&mut self, now: SimTime, stack: &mut NetStack) {
        stack.unsuppress(now, self.cfg.vip);
        self.takeover_at = Some(now);
        self.recorder.mark_first(Mark::TakeoverUnsuppressed, now.as_nanos());
        self.recorder.trace(now.as_nanos(), &TraceEvent::Promoted);
        if self.cfg.use_logger {
            self.queue_logger_queries(now, stack);
        }
    }

    /// Double-failure masking: any gap between what the primary
    /// acknowledged and what we hold can only be healed by the
    /// in-network logger once the primary is gone.
    fn queue_logger_queries(&mut self, now: SimTime, stack: &mut NetStack) {
        self.last_logger_query = Some(now);
        for (key, track) in &self.conns {
            let Some(primary_ack) = track.highest_primary_ack else {
                continue;
            };
            let Some(sock) = stack.sock_by_quad(key.server_quad()) else {
                continue;
            };
            let Some(tcb) = stack.tcb(sock) else {
                continue;
            };
            if primary_ack.gt(tcb.ack_seq()) {
                self.logger_queries.push(ReplayQuery {
                    src_ip: key.client_ip,
                    dst_ip: key.server_ip,
                    src_port: key.client_port,
                    dst_port: key.server_port,
                    seq_from: tcb.rcv_nxt().raw(),
                    seq_to: primary_ack.raw(),
                });
                self.stats.logger_queries += 1;
                self.recorder.count(Counter::LoggerQueries, 1);
            }
        }
    }

    /// Drains queued side-channel messages.
    pub fn take_outbox(&mut self) -> Vec<SideMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// Moves queued side-channel messages into `out`, reusing its
    /// storage (the allocation-free flavour of
    /// [`BackupEngine::take_outbox`] for per-tick callers).
    pub fn drain_outbox_into(&mut self, out: &mut Vec<SideMsg>) {
        out.append(&mut self.outbox);
    }

    /// Takes a pending fencing request (power-switch outlet), if any.
    pub fn take_fence_request(&mut self) -> Option<u32> {
        self.fence_request.take()
    }

    /// Drains pending logger replay queries.
    pub fn take_logger_queries(&mut self) -> Vec<ReplayQuery> {
        std::mem::take(&mut self.logger_queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;
    use std::net::Ipv4Addr;
    use tcpstack::{StackConfig, TcpConfig};
    use wire::MacAddr;

    const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn cfg() -> SttcpConfig {
        SttcpConfig::new(VIP, 80)
    }

    fn backup_stack() -> NetStack {
        let mut c = StackConfig::host(MacAddr::local(3), Ipv4Addr::new(10, 0, 0, 3));
        c.extra_ips = vec![VIP];
        c.suppressed_ips = vec![VIP];
        c.tcp = TcpConfig::st_tcp_backup();
        NetStack::new(c)
    }

    fn key() -> ConnKey {
        ConnKey {
            client_ip: Ipv4Addr::new(10, 0, 0, 1),
            client_port: 40000,
            server_ip: VIP,
            server_port: 80,
        }
    }

    #[test]
    fn detection_fires_after_three_silent_intervals() {
        let mut e = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        let hb = SimDuration::from_millis(50);
        e.on_side_msg(SimTime::ZERO, SideMsg::Heartbeat { seq: 1 }, &mut s);
        // Tick just inside the window: no suspicion.
        e.on_tick(SimTime::ZERO + hb * 3, &mut s);
        assert!(!e.has_taken_over());
        assert!(s.is_suppressed(VIP));
        // One more silent tick: takeover.
        e.on_tick(SimTime::ZERO + hb * 4, &mut s);
        assert!(e.has_taken_over());
        assert!(!s.is_suppressed(VIP), "takeover lifts the suppression");
        assert_eq!(e.suspected_at(), Some(SimTime::ZERO + hb * 4));
        assert_eq!(e.takeover_at(), e.suspected_at());
    }

    #[test]
    fn heartbeats_defer_detection() {
        let mut e = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        let hb = SimDuration::from_millis(50);
        for i in 1..100u64 {
            let t = SimTime::ZERO + hb * i;
            e.on_side_msg(t, SideMsg::Heartbeat { seq: i }, &mut s);
            e.on_tick(t, &mut s);
        }
        assert!(!e.has_taken_over());
        assert_eq!(e.stats.hbs_received, 99);
    }

    #[test]
    fn fencing_requested_when_configured() {
        let mut e = BackupEngine::new(cfg().with_fencing(7), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        e.on_tick(SimTime::ZERO + SimDuration::from_secs(1), &mut s);
        assert!(e.has_taken_over());
        assert_eq!(e.take_fence_request(), Some(7));
        assert_eq!(e.take_fence_request(), None, "fence request is one-shot");
    }

    #[test]
    fn tick_sends_heartbeat() {
        let mut e = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        e.on_side_msg(SimTime::ZERO, SideMsg::Heartbeat { seq: 1 }, &mut s);
        e.on_tick(SimTime::ZERO + SimDuration::from_millis(50), &mut s);
        let out = e.take_outbox();
        assert!(out.iter().any(|m| matches!(m, SideMsg::Heartbeat { .. })));
    }

    #[test]
    fn unknown_conn_tapped_ack_is_ignored() {
        let mut e = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        e.on_tapped_primary_segment(SimTime::ZERO, key(), SeqNum(0), SeqNum(1000), false, &mut s);
        assert!(e.take_outbox().is_empty());
        assert_eq!(e.stats.missing_reqs, 0);
    }

    #[test]
    fn unknown_conn_syn_ack_triggers_bootstrap() {
        // A tapped SYN/ACK for a quad with no shadow is sometimes the
        // ONLY evidence a connection exists (primary crashes before its
        // first data segment), so it must fire the logger bootstrap.
        let mut e = BackupEngine::new(cfg().with_logger(), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        e.on_tapped_primary_segment(SimTime::ZERO, key(), SeqNum(5000), SeqNum(1001), true, &mut s);
        assert_eq!(e.stats.bootstrap_queries, 1);
        let queries = e.take_logger_queries();
        assert_eq!(queries.len(), 1);
        // The replay window is anchored by the SYN/ACK's ack field and
        // must cover the client's ISN (1000, one below the ack).
        let q = &queries[0];
        assert!(q.seq_from.wrapping_sub(1000) as i32 <= 0, "window must reach back to the ISN");
        assert!(1000u32.wrapping_sub(q.seq_to) as i32 <= 0, "window must extend past the ISN");
    }

    #[test]
    fn unknown_conn_syn_ack_without_logger_is_ignored() {
        let mut e = BackupEngine::new(cfg(), 12 * 1024, SimTime::ZERO);
        let mut s = backup_stack();
        e.on_tapped_primary_segment(SimTime::ZERO, key(), SeqNum(5000), SeqNum(1001), true, &mut s);
        assert_eq!(e.stats.bootstrap_queries, 0);
        assert!(e.take_logger_queries().is_empty());
    }
}
