//! Fleet-scale workload generator: hundreds to thousands of clients on
//! one ST-TCP server pair.
//!
//! The paper's evaluation drives a single client; the protocol,
//! however, is per-connection, and the interesting regime for a
//! backup that shadows *every* connection of a busy primary is
//! thousands of live TCBs (cf. the NF-backup and service-migration
//! scale framings in PAPERS.md). This module builds that regime as a
//! deterministic scenario, netbench-style: a seeded mix of short echo,
//! interactive, bulk-download, and upload clients against a
//! primary/backup pair behind a port-mirroring switch.
//!
//! # Workload classes and ports
//!
//! The server cannot tell workload classes apart by content — every
//! downstream workload opens with the same 150-byte request — so each
//! class gets its own service port ([`ECHO_PORT`] … [`UPLOAD_PORT`])
//! and both servers register the same four services. Class membership,
//! per-client request counts, and connect stagger all derive from
//! [`FleetSpec::seed`] via SplitMix64, so the primary, the backup, and
//! any re-run of the same spec agree on every byte — across a failover
//! too, because the service table (not per-run state) determines the
//! app a migrated connection lands on.
//!
//! # Determinism
//!
//! Everything is derived from the spec: client addresses, MACs, ISN
//! seeds, workloads, connect times. Two [`build`]s of the same spec
//! replay bit-identically (see `tests/determinism.rs`).

use crate::config::SttcpConfig;
use crate::node::{ClientNode, ServerNode, LAN};
use crate::scenario::addrs;
use apps::{
    BulkServer, EchoServer, InteractiveServer, UploadServer, Workload, WorkloadClient, REQUEST_SIZE,
};
use netsim::node::{NodeId, PortId};
use netsim::{LinkProfile, LinkSpec, SimDuration, SimTime, Simulator, SplitMix64, Switch};
use obs::{Actor, FlightRecorder, ObsSink, SharedRecorder};
use std::net::Ipv4Addr;
use std::sync::Arc;
use tcpstack::{CongestionAlgo, StackConfig, TcpConfig};
use wire::MacAddr;

/// Echo service port (150 B ↔ 150 B exchanges).
pub const ECHO_PORT: u16 = 80;
/// Interactive service port (150 B → [`INTERACTIVE_REPLY`] B).
pub const INTERACTIVE_PORT: u16 = 81;
/// Bulk-download service port (one request → [`BULK_FILE`] B).
pub const BULK_PORT: u16 = 82;
/// Upload service port ([`UPLOAD_FILE`] B up → 150 B confirmation).
pub const UPLOAD_PORT: u16 = 83;

/// Reply size of the fleet's interactive class. Class-wide (not
/// per-client): the server app on [`INTERACTIVE_PORT`] must agree with
/// every client that connects there.
pub const INTERACTIVE_REPLY: usize = 2048;
/// Download size of the fleet's bulk class.
pub const BULK_FILE: u64 = 16 * 1024;
/// Upload size of the fleet's upload class.
pub const UPLOAD_FILE: u64 = 8 * 1024;

/// Everything needed to build one fleet run.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of workload clients.
    pub clients: usize,
    /// Master seed: workload mix, request counts, stagger jitter, ISNs.
    pub seed: u64,
    /// Per-hop link characteristics.
    pub link: LinkSpec,
    /// ST-TCP protocol configuration (heartbeats, thresholds).
    pub st_tcp: SttcpConfig,
    /// TCP tuning template (role flags applied automatically).
    pub tcp: TcpConfig,
    /// Window over which client connects are staggered (first connect
    /// at 1 ms, last at 1 ms + spread).
    pub connect_spread: SimDuration,
    /// Crash the primary at this instant, if set.
    pub crash_primary_at: Option<SimTime>,
    /// Record protocol counters into a shared [`ObsSink`].
    pub record_obs: bool,
    /// Flight-recorder ring capacity, when tracing.
    pub trace_capacity: Option<usize>,
}

impl FleetSpec {
    /// A fleet of `clients` with the standard seed and calibrated LAN
    /// links.
    pub fn new(clients: usize) -> Self {
        FleetSpec {
            clients,
            seed: 0xF1EE7,
            link: LinkSpec::lan(),
            st_tcp: SttcpConfig::new(addrs::VIP, ECHO_PORT),
            tcp: TcpConfig::default(),
            connect_spread: SimDuration::from_millis(200),
            crash_primary_at: None,
            record_obs: false,
            trace_capacity: None,
        }
    }

    /// Sets the master seed (builder style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedules a primary crash (builder style).
    #[must_use]
    pub fn crash_primary_at(mut self, at: SimTime) -> Self {
        self.crash_primary_at = Some(at);
        self
    }

    /// Staggers connects over `spread` (builder style).
    #[must_use]
    pub fn connect_spread(mut self, spread: SimDuration) -> Self {
        self.connect_spread = spread;
        self
    }

    /// Records protocol counters into a shared [`ObsSink`] (builder
    /// style).
    #[must_use]
    pub fn recording(mut self) -> Self {
        self.record_obs = true;
        self
    }

    /// Records structured trace events into a flight-recorder ring of
    /// the default capacity (builder style).
    #[must_use]
    pub fn tracing(self) -> Self {
        self.tracing_with_capacity(obs::DEFAULT_TRACE_CAPACITY)
    }

    /// Records structured trace events into a flight-recorder ring of
    /// `capacity` (builder style).
    #[must_use]
    pub fn tracing_with_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Applies a canned [`LinkProfile`] to every hop (builder style).
    #[must_use]
    pub fn link_profile(mut self, profile: LinkProfile) -> Self {
        self.link = profile.spec();
        self
    }

    /// Selects the congestion-control algorithm on every host (builder
    /// style).
    #[must_use]
    pub fn congestion(mut self, algo: CongestionAlgo) -> Self {
        self.tcp.congestion = algo;
        self
    }

    /// Negotiates RFC 2018 SACK on every host (builder style).
    #[must_use]
    pub fn with_sack(mut self) -> Self {
        self.tcp.sack = true;
        self
    }

    /// The deterministic plan for client `index` under this spec.
    pub fn client_plan(&self, index: usize) -> ClientPlan {
        let mut rng = SplitMix64::new(
            self.seed
                ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x00C0_FFEE),
        );
        let (workload, port) = match rng.next_below(100) {
            0..=44 => (Workload::Echo { requests: 2 + rng.next_below(9) as usize }, ECHO_PORT),
            45..=69 => (
                Workload::Interactive {
                    requests: 1 + rng.next_below(4) as usize,
                    reply_size: INTERACTIVE_REPLY,
                },
                INTERACTIVE_PORT,
            ),
            70..=84 => (Workload::Bulk { file_size: BULK_FILE }, BULK_PORT),
            _ => (Workload::Upload { file_size: UPLOAD_FILE }, UPLOAD_PORT),
        };
        let spread_ns = self.connect_spread.as_nanos();
        let slot =
            if self.clients > 1 { spread_ns * index as u64 / (self.clients as u64 - 1) } else { 0 };
        let jitter = rng.next_below(997_000); // < 1 ms, breaks phase locks
        ClientPlan {
            workload,
            port,
            connect_at: SimDuration::from_millis(1)
                + SimDuration::from_nanos(slot)
                + SimDuration::from_nanos(jitter),
            ip: client_ip(index),
            isn_seed: rng.next_u64(),
        }
    }
}

/// One client's deterministic assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientPlan {
    /// The workload the client drives.
    pub workload: Workload,
    /// The service port it connects to (encodes the workload class).
    pub port: u16,
    /// When it connects, relative to simulation start.
    pub connect_at: SimDuration,
    /// Its address.
    pub ip: Ipv4Addr,
    /// Its ISN seed.
    pub isn_seed: u64,
}

/// The address of fleet client `index`: `10.1.x.y`, disjoint from the
/// servers' `10.0.0.0/24` corner of the `10/8` LAN.
pub fn client_ip(index: usize) -> Ipv4Addr {
    assert!(index < 250 * 256, "fleet address plan holds 64 000 clients");
    Ipv4Addr::new(10, 1, (index / 250) as u8, 1 + (index % 250) as u8)
}

/// The four-service factory table both servers register. Keeping it in
/// one place is what makes a migrated connection land on the same app
/// type on the backup.
pub(crate) fn add_fleet_services(node: &mut ServerNode) {
    // The constructor installed ECHO_PORT; append the rest.
    node.add_service(
        INTERACTIVE_PORT,
        Box::new(|| Box::new(InteractiveServer::with_sizes(REQUEST_SIZE, INTERACTIVE_REPLY))),
    );
    node.add_service(BULK_PORT, Box::new(|| Box::new(BulkServer::new(BULK_FILE))));
    node.add_service(UPLOAD_PORT, Box::new(|| Box::new(UploadServer::new(UPLOAD_FILE))));
}

/// A built fleet: the simulator plus every node of interest.
pub struct Fleet {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// Workload clients, in index order.
    pub clients: Vec<NodeId>,
    /// The ST-TCP primary.
    pub primary: NodeId,
    /// The ST-TCP backup.
    pub backup: NodeId,
    /// The mirroring switch.
    pub fabric: NodeId,
    /// Shared counter sink, when `record_obs` was set.
    pub obs: Option<Arc<ObsSink>>,
    /// Flight-recorder ring, when tracing was on.
    pub flight: Option<Arc<FlightRecorder>>,
}

/// Builds the simulator for `spec`: primary on switch port 0 (mirrored
/// to the backup on port 1), clients on ports 2…; static ARP
/// everywhere it prevents an O(clients) broadcast storm.
pub fn build(spec: &FleetSpec) -> Fleet {
    let n = spec.clients;
    let mut sim = Simulator::with_seed(spec.seed);
    let obs = spec.record_obs.then(|| Arc::new(ObsSink::new()));
    let flight = spec.trace_capacity.map(|cap| Arc::new(FlightRecorder::new(cap)));
    let recorder_for = |actor: Actor| -> Option<SharedRecorder> {
        let metrics: SharedRecorder = match &obs {
            Some(sink) => sink.clone(),
            None => obs::nop(),
        };
        match &flight {
            Some(ring) => Some(obs::for_actor(actor, metrics, ring.clone())),
            None => obs.as_ref().map(|sink| sink.clone() as SharedRecorder),
        }
    };
    if let Some(rec) = recorder_for(Actor::Net) {
        sim.set_recorder(rec);
    }

    let primary_mac = MacAddr::local(2);
    let backup_mac = MacAddr::local(3);

    // --- servers ----------------------------------------------------
    let mut p_tcp = spec.tcp.clone();
    p_tcp.retention_buf = p_tcp.recv_buf; // "double the space" (§4.2)
    let mut p_cfg = StackConfig::host(primary_mac, addrs::PRIMARY);
    p_cfg.extra_ips = vec![addrs::VIP];
    p_cfg.learn_from_ip = true;
    p_cfg.netmask_bits = 8;
    p_cfg.isn_seed = spec.seed ^ 0x2222;
    p_cfg.static_arp.push((addrs::BACKUP, backup_mac));
    p_cfg.tcp = p_tcp;
    let mut p_node = ServerNode::primary(
        p_cfg,
        spec.st_tcp.clone(),
        addrs::BACKUP,
        Box::new(|| Box::new(EchoServer::new())),
    );
    add_fleet_services(&mut p_node);
    if let Some(rec) = recorder_for(Actor::Primary) {
        p_node.set_recorder(rec);
    }
    let primary = sim.add_node("primary", p_node);

    let mut b_tcp = spec.tcp.clone();
    b_tcp.shadow = true;
    let mut b_cfg = StackConfig::host(backup_mac, addrs::BACKUP);
    b_cfg.extra_ips = vec![addrs::VIP];
    b_cfg.learn_from_ip = true;
    b_cfg.netmask_bits = 8;
    b_cfg.promiscuous = true; // taps the mirror port
    b_cfg.suppressed_ips = vec![addrs::VIP];
    b_cfg.isn_seed = spec.seed ^ 0x3333;
    b_cfg.static_arp.push((addrs::PRIMARY, primary_mac));
    b_cfg.tcp = b_tcp;
    let mut b_node = ServerNode::backup(
        b_cfg,
        spec.st_tcp.clone(),
        addrs::PRIMARY,
        Box::new(|| Box::new(EchoServer::new())),
    );
    add_fleet_services(&mut b_node);
    if let Some(rec) = recorder_for(Actor::Backup) {
        b_node.set_recorder(rec);
    }
    let backup = sim.add_node("backup", b_node);

    // --- fabric -----------------------------------------------------
    let mut sw = Switch::new(2 + n);
    sw.add_mirror(PortId(0), PortId(1)); // primary's port → backup tap
    let fabric = sim.add_node("switch", sw);
    sim.connect(primary, LAN, fabric, PortId(0), spec.link);
    sim.connect(backup, LAN, fabric, PortId(1), spec.link);

    // --- clients ----------------------------------------------------
    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let plan = spec.client_plan(i);
        let mut c_cfg = StackConfig::host(MacAddr::local(100 + i as u32), plan.ip);
        c_cfg.netmask_bits = 8;
        c_cfg.isn_seed = plan.isn_seed;
        // Static VIP→primary entry: no per-client ARP broadcast, and
        // after a failover the mirror keeps carrying these frames to
        // the backup (clients are deliberately unmodified, §2).
        c_cfg.static_arp.push((addrs::VIP, primary_mac));
        c_cfg.tcp = spec.tcp.clone();
        let node = ClientNode::new(
            c_cfg,
            (addrs::VIP, plan.port),
            plan.connect_at,
            WorkloadClient::new(plan.workload),
        );
        let id = sim.add_node(format!("client{i}"), node);
        sim.connect(id, LAN, fabric, PortId(2 + i), spec.link);
        clients.push(id);
    }

    if let Some(at) = spec.crash_primary_at {
        sim.schedule_crash(primary, at);
    }

    Fleet { sim, clients, primary, backup, fabric, obs, flight }
}

impl Fleet {
    /// The workload driver of client `index`.
    pub fn client_app(&self, index: usize) -> &WorkloadClient {
        self.sim
            .node_ref::<ClientNode>(self.clients[index])
            .app::<WorkloadClient>()
            .expect("fleet clients run WorkloadClient")
    }

    /// How many clients have finished their workload.
    pub fn done_count(&self) -> usize {
        (0..self.clients.len()).filter(|&i| self.client_app(i).is_done()).count()
    }

    /// True when every client has finished.
    pub fn all_done(&self) -> bool {
        (0..self.clients.len()).all(|i| self.client_app(i).is_done())
    }

    /// True when every client's byte stream verified clean so far.
    pub fn verified_clean(&self) -> bool {
        (0..self.clients.len()).all(|i| self.client_app(i).metrics.verified_clean())
    }

    /// Aggregate progress: response bytes received / expected, summed
    /// over the fleet.
    pub fn progress(&self) -> (u64, u64) {
        (0..self.clients.len())
            .map(|i| self.client_app(i).progress())
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    }

    /// Drives the fleet until every client finishes or `limit` virtual
    /// time passes; returns whether all finished. Exits early if the
    /// event queue drains (nothing will ever complete the stragglers).
    pub fn run_until_done(&mut self, limit: SimDuration) -> bool {
        let deadline = self.sim.now() + limit;
        while self.sim.now() < deadline {
            self.sim.run_for(SimDuration::from_millis(50));
            if self.all_done() {
                return true;
            }
            if self.sim.pending_events() == 0 {
                return false;
            }
        }
        self.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_mixed() {
        let spec = FleetSpec::new(200);
        let again = FleetSpec::new(200);
        let mut ports = [0usize; 4];
        for i in 0..200 {
            let plan = spec.client_plan(i);
            assert_eq!(plan, again.client_plan(i), "plan must be a pure function of the spec");
            let slot = match plan.port {
                ECHO_PORT => 0,
                INTERACTIVE_PORT => 1,
                BULK_PORT => 2,
                UPLOAD_PORT => 3,
                other => panic!("unexpected service port {other}"),
            };
            ports[slot] += 1;
        }
        assert!(ports.iter().all(|&c| c > 0), "all four classes present: {ports:?}");
        assert!(ports[0] > ports[3], "echo dominates the mix: {ports:?}");
    }

    #[test]
    fn client_addresses_are_unique_and_off_server_subnet() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let ip = client_ip(i);
            assert!(seen.insert(ip), "duplicate client ip {ip}");
            assert_eq!(ip.octets()[0], 10);
            assert_ne!((ip.octets()[0], ip.octets()[1]), (10, 0), "servers own 10.0.0.0/24");
        }
    }

    #[test]
    fn connect_times_are_staggered_within_spread() {
        let spec = FleetSpec::new(50);
        let first = spec.client_plan(0).connect_at;
        let last = spec.client_plan(49).connect_at;
        assert!(last > first, "stagger must spread connects");
        let cap = SimDuration::from_millis(1) + spec.connect_spread + SimDuration::from_millis(1);
        assert!(last <= cap, "last connect {last:?} beyond spread cap {cap:?}");
    }

    #[test]
    fn small_fleet_completes_clean() {
        let mut fleet = build(&FleetSpec::new(12));
        assert!(fleet.run_until_done(SimDuration::from_secs(30)), "12-client fleet must finish");
        assert!(fleet.verified_clean());
        let (got, want) = fleet.progress();
        assert_eq!(got, want);
    }
}
