//! Ready-made experiment topologies.
//!
//! Builds the paper's testbed (§6: client, primary, backup on a
//! 10/100 Mbit hub) and the switched-Ethernet tapping architectures of
//! §3.1, wiring [`crate::node`] adapters into a [`netsim::Simulator`].
//!
//! Calibration: 100 Mbit links with 2.5 ms one-way latency per hop give
//! a ≈10 ms client↔server RTT; with the 12×MSS (17 520 B) receive window this
//! reproduces the paper's measured bulk throughput (≈1.56 MB/s — 100 MB
//! in ≈64 s) and echo exchange time (≈9–10 ms), so Tables 1–2 can be
//! compared in absolute terms. See DESIGN.md §2.

use crate::config::SttcpConfig;
use crate::node::{ClientNode, GatewayNode, ServerNode, LAN, MGMT};
use apps::{
    Application, BulkServer, EchoServer, InteractiveServer, RunMetrics, UploadServer, Workload,
    WorkloadClient,
};
use netsim::node::{NodeId, PortId};
use netsim::{
    Hub, LinkProfile, LinkSpec, PacketLogger, PowerSwitch, SharedHub, SimDuration, SimTime,
    Simulator, Switch,
};
use obs::{
    Actor, FlightRecorder, ObsSink, SharedRecorder, Snapshot, TakeoverBreakdown, TraceExport,
    DEFAULT_TRACE_CAPACITY,
};
use std::sync::Arc;
use tcpstack::{CongestionAlgo, Gateway, GatewayIface, StackConfig, TcpConfig};
use wire::MacAddr;

/// Standard experiment addresses.
pub mod addrs {
    use std::net::Ipv4Addr;

    /// The client's address (hub/switch topologies).
    pub const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    /// The primary's own (non-service) address.
    pub const PRIMARY: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    /// The backup's own address.
    pub const BACKUP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
    /// The virtual service IP (`SVI`).
    pub const VIP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
    /// Client address in the gateway topology (remote subnet).
    pub const REMOTE_CLIENT: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    /// Gateway address on the client subnet.
    pub const GW_CLIENT_SIDE: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
    /// Gateway address on the server LAN (`GVI`).
    pub const GW_LAN_SIDE: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 254);
}

/// How the backup taps the service traffic (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Broadcast hub — the paper's actual testbed (§6). Idealized: each
    /// port serializes independently (no shared-medium contention).
    Hub,
    /// A half-duplex shared-medium hub at the given line rate: one
    /// frame on the wire at a time, so data, ACKs and the side channel
    /// contend — the device the paper actually measured on, and the
    /// reason §6 notes "using an Ethernet switch will lead to a higher
    /// throughput".
    SharedMediumHub {
        /// Medium line rate in bits/s (the paper's hub: 10/100 Mbit).
        medium_bps: u64,
    },
    /// Managed switch with port mirroring of the primary's port.
    SwitchMirror,
    /// Switch + unicast-IP→multicast-MAC mapping (`SVI→SME`,
    /// client→`CME`), no management features needed.
    SwitchMulticast,
    /// The full §3.1 architecture: remote client behind a gateway whose
    /// static ARP maps `SVI→SME`; the server LAN switch floods the
    /// multicast tap; server→client traffic rides `GVI→GME`.
    GatewaySwitch,
}

/// What kind of server deployment to build.
#[derive(Debug, Clone)]
pub enum Deployment {
    /// A single standard-TCP server — the paper's baseline rows.
    StandardTcp,
    /// Primary + active backup running ST-TCP.
    StTcp(SttcpConfig),
}

/// One scheduled fault, in absolute virtual time.
///
/// This is the same vocabulary the chaos engine's `FaultPlan` resolves
/// into: quantile-relative chaos ops become absolute [`Fault`]s once a
/// probe pass has measured the fault-free duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Crash the primary at this instant. It stays down (amnesia reboot
    /// is scheduled separately via [`netsim::Simulator::schedule_power_on`]).
    CrashPrimary {
        /// The instant of the crash.
        at: SimTime,
    },
    /// Freeze the primary for a window — a gray failure: the node
    /// neither crashes nor answers, then resumes with its state intact.
    PausePrimary {
        /// Start of the freeze.
        at: SimTime,
        /// How long the node stays frozen.
        duration: SimDuration,
    },
}

/// A composable fault schedule accepted by [`ScenarioSpec::faults`].
///
/// Replaces the old single-purpose `crash_primary_at` field and the
/// ad-hoc toggles around it: faults compose with [`FaultSpec::and`] and
/// are installed in order at build time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Scheduled faults, installed in order at build time.
    pub faults: Vec<Fault>,
}

impl FaultSpec {
    /// No faults — the fault-free baseline.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// The classic experiment: crash the primary at `at`.
    pub fn crash_primary_at(at: SimTime) -> Self {
        FaultSpec { faults: vec![Fault::CrashPrimary { at }] }
    }

    /// Appends another fault (builder style).
    #[must_use]
    pub fn and(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Earliest instant a fault incapacitates the primary, if any.
    pub fn incapacitated_at(&self) -> Option<SimTime> {
        self.faults
            .iter()
            .map(|f| match *f {
                Fault::CrashPrimary { at } | Fault::PausePrimary { at, .. } => at,
            })
            .min()
    }
}

/// Everything needed to build one experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Tapping architecture.
    pub topology: Topology,
    /// Baseline or ST-TCP.
    pub deployment: Deployment,
    /// Client workload.
    pub workload: Workload,
    /// Per-hop link characteristics.
    pub link: LinkSpec,
    /// Scheduled faults (virtual time).
    pub faults: FaultSpec,
    /// Record protocol events into a shared [`ObsSink`] (off by
    /// default: the no-op recorder keeps the hot path allocation- and
    /// atomics-free).
    pub record_obs: bool,
    /// Capacity of the flight-recorder trace ring, when tracing is on
    /// (off by default for the same hot-path reason as `record_obs`).
    pub trace_capacity: Option<usize>,
    /// Insert the in-network packet logger (§3.2).
    pub with_logger: bool,
    /// Attach a power switch on the management segment.
    pub with_power_switch: bool,
    /// TCP tuning template for all hosts (retention/shadow flags are set
    /// per role automatically).
    pub tcp: TcpConfig,
    /// Have the client close the connection after its final response
    /// (exercises FIN choreography, §4-adjacent).
    pub close_when_done: bool,
    /// Per-request server compute ("think") time for the Interactive
    /// workload. The paper's measured 20 ms/exchange implies ≈9 ms of
    /// server-side work its text does not model; this knob reproduces
    /// their absolute numbers when desired.
    pub interactive_think: SimDuration,
    /// Simulator RNG seed.
    pub seed: u64,
}

impl ScenarioSpec {
    /// The paper's testbed defaults: hub topology, calibrated LAN links,
    /// standard TCP, no faults.
    pub fn new(workload: Workload) -> Self {
        ScenarioSpec {
            topology: Topology::Hub,
            deployment: Deployment::StandardTcp,
            workload,
            link: LinkSpec::lan(),
            faults: FaultSpec::none(),
            record_obs: false,
            trace_capacity: None,
            with_logger: false,
            with_power_switch: false,
            tcp: TcpConfig::default(),
            close_when_done: false,
            interactive_think: SimDuration::ZERO,
            seed: 0xE4A1,
        }
    }

    /// Switches to an ST-TCP deployment (builder style).
    #[must_use]
    pub fn st_tcp(mut self, cfg: SttcpConfig) -> Self {
        self.deployment = Deployment::StTcp(cfg);
        self
    }

    /// Installs a fault schedule (builder style).
    #[must_use]
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Records protocol events into a shared [`ObsSink`] (builder
    /// style). The built [`Scenario`] then exposes
    /// [`Scenario::snapshot`] and [`Scenario::takeover_breakdown`].
    #[must_use]
    pub fn recording(mut self) -> Self {
        self.record_obs = true;
        self
    }

    /// Records structured trace events into a per-run
    /// [`FlightRecorder`] ring (builder style). The built [`Scenario`]
    /// then exposes [`Scenario::trace_export`]. Composes with
    /// [`ScenarioSpec::recording`]; either works alone.
    #[must_use]
    pub fn tracing(self) -> Self {
        self.tracing_with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Like [`ScenarioSpec::tracing`] with an explicit ring capacity
    /// (builder style). Long campaigns keep only the newest `capacity`
    /// events; the export's `dropped` counter records the loss.
    #[must_use]
    pub fn tracing_with_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects the tapping topology (builder style).
    #[must_use]
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Adds the packet logger (builder style).
    #[must_use]
    pub fn with_logger(mut self) -> Self {
        self.with_logger = true;
        self
    }

    /// Adds the power switch (builder style).
    #[must_use]
    pub fn with_power_switch(mut self) -> Self {
        self.with_power_switch = true;
        self
    }

    /// The client closes after its final response (builder style).
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close_when_done = true;
        self
    }

    /// Applies a canned [`LinkProfile`] to every hop (builder style).
    #[must_use]
    pub fn link_profile(mut self, profile: LinkProfile) -> Self {
        self.link = profile.spec();
        self
    }

    /// Selects the congestion-control algorithm on every host (builder
    /// style).
    #[must_use]
    pub fn congestion(mut self, algo: CongestionAlgo) -> Self {
        self.tcp.congestion = algo;
        self
    }

    /// Negotiates RFC 2018 SACK on every host (builder style).
    #[must_use]
    pub fn with_sack(mut self) -> Self {
        self.tcp.sack = true;
        self
    }
}

/// A built scenario: the simulator plus the ids of every node of
/// interest.
pub struct Scenario {
    /// The simulator, ready to run.
    pub sim: Simulator,
    /// The workload client.
    pub client: NodeId,
    /// The primary (or the solo standard-TCP server).
    pub primary: NodeId,
    /// The backup, when deployed.
    pub backup: Option<NodeId>,
    /// The hub or switch at the LAN core.
    pub fabric: NodeId,
    /// The in-network logger, when present.
    pub logger: Option<NodeId>,
    /// The power switch, when present.
    pub power: Option<NodeId>,
    /// The gateway, in the gateway topology.
    pub gateway: Option<NodeId>,
    /// The shared observability sink, when built with
    /// [`ScenarioSpec::recording`].
    pub obs: Option<Arc<ObsSink>>,
    /// The flight-recorder trace ring, when built with
    /// [`ScenarioSpec::tracing`].
    pub flight: Option<Arc<FlightRecorder>>,
}

fn make_server_app(workload: Workload, think: SimDuration) -> Box<dyn Application> {
    match workload {
        Workload::Echo { .. } => Box::new(EchoServer::new()),
        Workload::Interactive { requests: _, reply_size } => Box::new(
            InteractiveServer::with_sizes(apps::REQUEST_SIZE, reply_size).with_think_time(think),
        ),
        Workload::Bulk { file_size } => Box::new(BulkServer::new(file_size)),
        Workload::Upload { file_size } => Box::new(UploadServer::new(file_size)),
    }
}

/// Builds the simulator for `spec`.
pub fn build(spec: &ScenarioSpec) -> Scenario {
    let sme = MacAddr::multicast_for_ip(addrs::VIP);
    let cme = MacAddr::multicast_for_ip(addrs::CLIENT);
    let gme = MacAddr::multicast_for_ip(addrs::GW_LAN_SIDE);
    let mut sim = Simulator::with_seed(spec.seed);
    let workload = spec.workload;
    let obs = spec.record_obs.then(|| Arc::new(ObsSink::new()));
    let flight = spec.trace_capacity.map(|cap| Arc::new(FlightRecorder::new(cap)));
    // One recorder per role: metrics go to the shared sink (when
    // recording), traces into the flight ring tagged with the actor.
    let recorder_for = |actor: Actor| -> Option<SharedRecorder> {
        let metrics: SharedRecorder = match &obs {
            Some(sink) => sink.clone(),
            None => obs::nop(),
        };
        match &flight {
            Some(ring) => Some(obs::for_actor(actor, metrics, ring.clone())),
            None => obs.as_ref().map(|sink| sink.clone() as SharedRecorder),
        }
    };
    if let Some(rec) = recorder_for(Actor::Net) {
        sim.set_recorder(rec);
    }

    // --- client -----------------------------------------------------
    let gateway_topology = spec.topology == Topology::GatewaySwitch;
    let client_ip = if gateway_topology { addrs::REMOTE_CLIENT } else { addrs::CLIENT };
    let mut client_cfg = StackConfig::host(MacAddr::local(1), client_ip);
    client_cfg.isn_seed = spec.seed ^ 0x1111;
    client_cfg.tcp = spec.tcp.clone();
    match spec.topology {
        Topology::Hub | Topology::SharedMediumHub { .. } | Topology::SwitchMirror => {}
        Topology::SwitchMulticast => {
            // The client plays the gateway's role: static SVI→SME entry,
            // and it accepts the multicast MAC the servers use to reach it.
            client_cfg.static_arp.push((addrs::VIP, sme));
            client_cfg.accept_macs.push(cme);
        }
        Topology::GatewaySwitch => {
            client_cfg.gateway = Some(addrs::GW_CLIENT_SIDE);
        }
    }
    let client_app = if spec.close_when_done {
        WorkloadClient::new(workload).closing()
    } else {
        WorkloadClient::new(workload)
    };
    let mut client_node =
        ClientNode::new(client_cfg, (addrs::VIP, 80), SimDuration::from_millis(1), client_app);
    if let Some(rec) = recorder_for(Actor::Client) {
        client_node.set_recorder(rec);
    }
    let client = sim.add_node("client", client_node);

    // --- servers ----------------------------------------------------
    let think = spec.interactive_think;
    let mk_factory =
        move || -> crate::node::AppFactory { Box::new(move || make_server_app(workload, think)) };

    let mut primary_cfg = StackConfig::host(MacAddr::local(2), addrs::PRIMARY);
    primary_cfg.extra_ips = vec![addrs::VIP];
    primary_cfg.isn_seed = spec.seed ^ 0x2222;
    primary_cfg.learn_from_ip = true;
    primary_cfg.tcp = spec.tcp.clone();
    match spec.topology {
        Topology::Hub | Topology::SharedMediumHub { .. } | Topology::SwitchMirror => {}
        Topology::SwitchMulticast => {
            primary_cfg.accept_macs.push(sme);
            primary_cfg.static_arp.push((addrs::CLIENT, cme));
        }
        Topology::GatewaySwitch => {
            primary_cfg.accept_macs.push(sme);
            primary_cfg.gateway = Some(addrs::GW_LAN_SIDE);
            primary_cfg.static_arp.push((addrs::GW_LAN_SIDE, gme));
        }
    }

    let (primary, backup) = match &spec.deployment {
        Deployment::StandardTcp => {
            let mut node = ServerNode::solo(primary_cfg, 80, mk_factory());
            if let Some(rec) = recorder_for(Actor::Primary) {
                node.set_recorder(rec);
            }
            (sim.add_node("server", node), None)
        }
        Deployment::StTcp(sttcp_cfg) => {
            let mut p_tcp = spec.tcp.clone();
            p_tcp.retention_buf = p_tcp.recv_buf; // "double the space" (§4.2)
            let mut p_cfg = primary_cfg.clone();
            p_cfg.tcp = p_tcp;
            let mut p_node =
                ServerNode::primary(p_cfg, sttcp_cfg.clone(), addrs::BACKUP, mk_factory());
            if let Some(rec) = recorder_for(Actor::Primary) {
                p_node.set_recorder(rec);
            }
            let primary = sim.add_node("primary", p_node);

            let mut b_cfg = StackConfig::host(MacAddr::local(3), addrs::BACKUP);
            b_cfg.extra_ips = vec![addrs::VIP];
            b_cfg.isn_seed = spec.seed ^ 0x3333;
            b_cfg.learn_from_ip = true;
            b_cfg.suppressed_ips = vec![addrs::VIP];
            let mut b_tcp = spec.tcp.clone();
            b_tcp.shadow = true;
            b_cfg.tcp = b_tcp;
            match spec.topology {
                Topology::Hub | Topology::SharedMediumHub { .. } | Topology::SwitchMirror => {
                    b_cfg.promiscuous = true;
                }
                Topology::SwitchMulticast => {
                    b_cfg.accept_macs.extend([sme, cme]);
                    b_cfg.static_arp.push((addrs::CLIENT, cme));
                }
                Topology::GatewaySwitch => {
                    b_cfg.accept_macs.extend([sme, gme]);
                    b_cfg.gateway = Some(addrs::GW_LAN_SIDE);
                    b_cfg.static_arp.push((addrs::GW_LAN_SIDE, gme));
                }
            }
            let mut b_node =
                ServerNode::backup(b_cfg, sttcp_cfg.clone(), addrs::PRIMARY, mk_factory());
            if let Some(rec) = recorder_for(Actor::Backup) {
                b_node.set_recorder(rec);
            }
            (primary, Some(sim.add_node("backup", b_node)))
        }
    };

    // --- fabric and wiring -------------------------------------------
    let mut logger = None;
    let mut gateway = None;
    let fabric = match spec.topology {
        Topology::SharedMediumHub { medium_bps } => {
            // The medium does the serialization; port cables carry
            // latency only (no double-counted bandwidth).
            let cable = LinkSpec {
                latency: spec.link.latency,
                bandwidth_bps: None,
                reverse_bandwidth_bps: None,
                loss: spec.link.loss,
                max_queue: None,
                jitter: spec.link.jitter,
            };
            let fabric = sim.add_node("shared-hub", SharedHub::new(4, medium_bps));
            if spec.with_logger {
                let half = cable.with_latency(spec.link.latency / 2);
                let lg = sim.add_node("logger", PacketLogger::with_defaults());
                sim.connect(client, LAN, lg, PortId(0), half);
                sim.connect(lg, PortId(1), fabric, PortId(0), half);
                logger = Some(lg);
            } else {
                sim.connect(client, LAN, fabric, PortId(0), cable);
            }
            sim.connect(primary, LAN, fabric, PortId(1), cable);
            if let Some(b) = backup {
                sim.connect(b, LAN, fabric, PortId(2), cable);
            }
            fabric
        }
        Topology::Hub => {
            let fabric = sim.add_node("hub", Hub::new(4));
            if spec.with_logger {
                // Inline on the client's path, splitting the hop latency
                // so the end-to-end RTT is unchanged ("the logger
                // introduces a very small delay", §3.2).
                let half = spec.link.with_latency(spec.link.latency / 2);
                let lg = sim.add_node("logger", PacketLogger::with_defaults());
                sim.connect(client, LAN, lg, PortId(0), half);
                sim.connect(lg, PortId(1), fabric, PortId(0), half);
                logger = Some(lg);
            } else {
                sim.connect(client, LAN, fabric, PortId(0), spec.link);
            }
            sim.connect(primary, LAN, fabric, PortId(1), spec.link);
            if let Some(b) = backup {
                sim.connect(b, LAN, fabric, PortId(2), spec.link);
            }
            fabric
        }
        Topology::SwitchMirror | Topology::SwitchMulticast => {
            let mut sw = Switch::new(4);
            if spec.topology == Topology::SwitchMirror {
                sw.add_mirror(PortId(1), PortId(2)); // primary's port → backup
            }
            let fabric = sim.add_node("switch", sw);
            sim.connect(client, LAN, fabric, PortId(0), spec.link);
            sim.connect(primary, LAN, fabric, PortId(1), spec.link);
            if let Some(b) = backup {
                sim.connect(b, LAN, fabric, PortId(2), spec.link);
            }
            fabric
        }
        Topology::GatewaySwitch => {
            let fabric = sim.add_node("switch", Switch::new(4));
            // Gateway between the client subnet and the LAN, static
            // SVI→SME on the LAN side (the paper's key entry).
            let gw = Gateway::new(
                GatewayIface {
                    mac: MacAddr::local(10),
                    ip: addrs::GW_CLIENT_SIDE,
                    netmask_bits: 24,
                },
                GatewayIface { mac: MacAddr::local(11), ip: addrs::GW_LAN_SIDE, netmask_bits: 24 },
                [],
                [(addrs::VIP, sme)],
            );
            let gw_id = sim.add_node("gateway", GatewayNode::new(gw));
            gateway = Some(gw_id);
            sim.connect(client, LAN, gw_id, PortId(0), spec.link);
            if spec.with_logger {
                let lg = sim.add_node("logger", PacketLogger::with_defaults());
                sim.connect(gw_id, PortId(1), lg, PortId(0), spec.link);
                sim.connect(lg, PortId(1), fabric, PortId(0), spec.link);
                logger = Some(lg);
            } else {
                sim.connect(gw_id, PortId(1), fabric, PortId(0), spec.link);
            }
            sim.connect(primary, LAN, fabric, PortId(1), spec.link);
            if let Some(b) = backup {
                sim.connect(b, LAN, fabric, PortId(2), spec.link);
            }
            fabric
        }
    };
    // --- power switch -------------------------------------------------
    let mut power = None;
    if spec.with_power_switch {
        if let Some(b) = backup {
            let psw = sim.add_node("power-switch", PowerSwitch::new(vec![primary]));
            sim.connect(b, MGMT, psw, PortId(0), LinkSpec::lan());
            power = Some(psw);
        }
    }

    // --- faults -------------------------------------------------------
    for fault in &spec.faults.faults {
        match *fault {
            Fault::CrashPrimary { at } => sim.schedule_crash(primary, at),
            Fault::PausePrimary { at, duration } => sim.schedule_pause(primary, at, duration),
        }
    }

    Scenario { sim, client, primary, backup, fabric, logger, power, gateway, obs, flight }
}

/// Why a run stopped before the workload completed.
///
/// A bare "did not finish" is unclassifiable in a fault campaign; these
/// reasons separate "the experiment needed more virtual time" from "the
/// simulation physically cannot make further progress".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The workload finished; metrics are complete.
    Completed,
    /// The virtual-time limit passed with events still pending — a
    /// longer limit might have finished (e.g. retransmission storms).
    TimeLimit,
    /// The event budget ran out before the time limit — a runaway
    /// message loop rather than a slow experiment.
    EventLimit,
    /// The event queue drained with the client unfinished: no timer or
    /// frame will ever fire again, so no limit would help (e.g. the
    /// client's connection was reset and everything went quiet).
    WedgedClient,
}

/// The classified result of driving a scenario: how it stopped, the
/// client metrics so far (partial unless `Completed`), and how much the
/// simulator worked.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Client metrics (complete only when `reason` is `Completed`).
    pub metrics: RunMetrics,
    /// Response bytes the client received out of the expected total.
    pub progress: (u64, u64),
    /// Simulator events processed during this call.
    pub events: u64,
    /// Virtual instant the run stopped at.
    pub stopped_at: SimTime,
}

impl RunOutcome {
    /// True when the workload finished.
    pub fn completed(&self) -> bool {
        self.reason == StopReason::Completed
    }

    /// Unwraps the metrics of a completed run.
    ///
    /// # Panics
    ///
    /// Panics with the stop reason and progress when the workload did
    /// not finish — a hung experiment is a bug worth failing loudly on.
    /// Keep the [`RunOutcome`] instead for experiments where not
    /// finishing is an expected result (e.g. unmasked double failures).
    pub fn expect_completed(self) -> RunMetrics {
        match self.reason {
            StopReason::Completed => self.metrics,
            reason => panic!(
                "workload did not complete by {}: {reason:?} (received {} of {} bytes)",
                self.stopped_at, self.progress.0, self.progress.1
            ),
        }
    }
}

/// Budget for one [`Scenario::run`] call.
///
/// Collapses the old `run_to_completion(limit)` /
/// `try_run_to_completion(limit)` / `run_classified(limit, max_events)`
/// trio into one vocabulary: build the limits, run, then decide whether
/// to [`RunOutcome::expect_completed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Virtual-time budget for this call.
    pub time: SimDuration,
    /// Simulator-event budget (runaway-loop backstop).
    pub max_events: u64,
}

impl Default for RunLimits {
    /// 60 virtual seconds, unlimited events.
    fn default() -> Self {
        RunLimits { time: SimDuration::from_secs(60), max_events: u64::MAX }
    }
}

impl RunLimits {
    /// A budget of `time` virtual time (unlimited events).
    pub fn time(time: SimDuration) -> Self {
        RunLimits { time, ..RunLimits::default() }
    }

    /// Caps the simulator events processed (builder style).
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }
}

impl Scenario {
    /// Drives the scenario until the workload completes, the
    /// [`RunLimits`] budget runs out, or the event queue wedges — and
    /// says which.
    pub fn run(&mut self, limits: RunLimits) -> RunOutcome {
        let deadline = self.sim.now() + limits.time;
        let chunk = SimDuration::from_millis(50);
        let events_before = self.sim.trace().events_processed;
        let spent = |sim: &Simulator| sim.trace().events_processed - events_before;
        let reason = loop {
            if self.workload_client().is_done() {
                break StopReason::Completed;
            }
            if self.sim.now() >= deadline {
                break StopReason::TimeLimit;
            }
            if spent(&self.sim) >= limits.max_events {
                break StopReason::EventLimit;
            }
            if self.sim.pending_events() == 0 {
                break StopReason::WedgedClient;
            }
            self.sim.run_for(chunk);
        };
        RunOutcome {
            reason,
            metrics: self.workload_client().metrics.clone(),
            progress: self.workload_client().progress(),
            events: spent(&self.sim),
            stopped_at: self.sim.now(),
        }
    }

    fn workload_client(&self) -> &WorkloadClient {
        self.client().expect("client runs a WorkloadClient")
    }

    /// The client's workload driver, when the client node runs one.
    pub fn client(&self) -> Option<&WorkloadClient> {
        self.sim.node_ref::<ClientNode>(self.client).app::<WorkloadClient>()
    }

    /// The primary's ST-TCP engine (`None` for a standard-TCP
    /// deployment).
    pub fn primary(&self) -> Option<&crate::primary::PrimaryEngine> {
        self.sim.node_ref::<ServerNode>(self.primary).primary_engine()
    }

    /// The backup's ST-TCP engine, when a backup is deployed.
    pub fn backup(&self) -> Option<&crate::backup::BackupEngine> {
        let b = self.backup?;
        self.sim.node_ref::<ServerNode>(b).backup_engine()
    }

    /// A snapshot of the recorded observability counters; `None` unless
    /// the scenario was built with [`ScenarioSpec::recording`].
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.obs.as_ref().map(|sink| sink.snapshot())
    }

    /// An export of the flight-recorder trace; `None` unless the
    /// scenario was built with [`ScenarioSpec::tracing`].
    pub fn trace_export(&self) -> Option<TraceExport> {
        self.flight.as_ref().map(|ring| ring.export())
    }

    /// The takeover phase breakdown, when recording was on and a
    /// takeover actually happened.
    pub fn takeover_breakdown(&self) -> Option<TakeoverBreakdown> {
        TakeoverBreakdown::from_snapshot(&self.snapshot()?)
    }
}
