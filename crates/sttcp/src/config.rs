//! ST-TCP deployment configuration.

use netsim::SimDuration;
use std::net::Ipv4Addr;

/// When the backup becomes able to serve after detecting the failure.
///
/// ST-TCP's defining choice is [`TakeoverPolicy::Active`]: the backup
/// has been executing all along, so takeover is instantaneous. The
/// paper's §2 contrasts this with FT-TCP, where "a failover … requires
/// failure detection, time for the backup server to start, and time to
/// update the backup server state from all the data saved in the
/// logger (which could be quite large for long running applications)".
/// [`TakeoverPolicy::ColdReplay`] models that family of systems on the
/// same substrate, so the trade-off is measurable (see the
/// `ftcp_comparison` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakeoverPolicy {
    /// Active replication: the backup's state is already current
    /// (ST-TCP).
    Active,
    /// Cold standby: on detection the replacement process must start
    /// and replay the connection's entire received byte stream through
    /// the application before it can serve (FT-TCP-style).
    ColdReplay {
        /// Process start/initialization time.
        restart_delay: SimDuration,
        /// State-replay throughput in bytes per second.
        replay_rate_bps: u64,
    },
}

/// How the backup converts a suspicion into a certainty before taking
/// over the service IP (paper §3.2/§4.4: "we convert wrong suspicions
/// into correct suspicions by switching off the power of a suspected
/// computer").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fencing {
    /// Trust the timeout (valid when crashes are genuine, as in the
    /// simulator's fail-stop model). The paper's alternative: a perfect
    /// failure detector protocol.
    None,
    /// Send a power-off command for this outlet to the power switch on
    /// the management port before taking over.
    PowerSwitch {
        /// Outlet number feeding the primary.
        outlet: u32,
    },
}

/// Tunables of the ST-TCP protocol (paper §4).
#[derive(Debug, Clone)]
pub struct SttcpConfig {
    /// The virtual service IP (`SVI`) clients connect to.
    pub vip: Ipv4Addr,
    /// TCP port of the replicated service.
    pub service_port: u16,
    /// UDP port of the primary↔backup side channel.
    pub side_channel_port: u16,
    /// Heartbeat interval — the experiments' independent variable
    /// (50 ms … 5 s in §6).
    pub hb_interval: SimDuration,
    /// `SyncTime`: maximum time between backup acknowledgments. The
    /// paper couples it to the heartbeat ("we use the acks sent by the
    /// backup server … as heartbeat messages"); `None` means
    /// `hb_interval`.
    pub sync_time: Option<SimDuration>,
    /// `X`: send a backup ack once this many in-order bytes accumulated
    /// since the last one. `None` applies the paper's rule of thumb:
    /// ¾ of the second receive buffer.
    pub ack_threshold: Option<usize>,
    /// Consecutive missed heartbeats before declaring the peer dead
    /// (paper: 3).
    pub missed_hb_threshold: u32,
    /// Fencing mechanism used by the backup.
    pub fencing: Fencing,
    /// Largest missing-byte range requested in one side-channel message.
    pub missing_req_chunk: usize,
    /// Whether a packet logger is present on the path and may be asked
    /// to replay client segments at takeover (double-failure masking,
    /// §3.2).
    pub use_logger: bool,
    /// Active (ST-TCP) vs cold-replay (FT-TCP-style) takeover.
    pub takeover_policy: TakeoverPolicy,
    /// Mirror each connection's congestion snapshot (cwnd/ssthresh) to
    /// the backup on every sync tick, so a promoted shadow resumes near
    /// the primary's operating point instead of cold-starting from the
    /// initial window. Off by default: on a LAN the window rebuilds in a
    /// few RTTs, and the extra datagrams would perturb the pinned
    /// paper-era wire traces. Worth switching on for WAN profiles.
    pub cong_sync: bool,
}

impl SttcpConfig {
    /// Paper-style defaults: VIP `10.0.0.100:80`, 50 ms heartbeats,
    /// threshold 3, no fencing hardware, no logger.
    pub fn new(vip: Ipv4Addr, service_port: u16) -> Self {
        SttcpConfig {
            vip,
            service_port,
            side_channel_port: 7077,
            hb_interval: SimDuration::from_millis(50),
            sync_time: None,
            ack_threshold: None,
            missed_hb_threshold: 3,
            fencing: Fencing::None,
            missing_req_chunk: 16 * 1024,
            use_logger: false,
            takeover_policy: TakeoverPolicy::Active,
            cong_sync: false,
        }
    }

    /// The effective `SyncTime`.
    pub fn effective_sync_time(&self) -> SimDuration {
        self.sync_time.unwrap_or(self.hb_interval)
    }

    /// The effective ack threshold `X` given the primary's second-buffer
    /// capacity.
    pub fn effective_ack_threshold(&self, retention_capacity: usize) -> usize {
        self.ack_threshold.unwrap_or_else(|| (retention_capacity / 4) * 3)
    }

    /// Sets the heartbeat interval (builder style).
    #[must_use]
    pub fn with_hb_interval(mut self, hb: SimDuration) -> Self {
        self.hb_interval = hb;
        self
    }

    /// Sets the missed-heartbeat detection threshold (builder style).
    /// The paper's 3 assumes a loss-free LAN side channel; lossy WAN
    /// deployments must provision a larger budget or bursts of lost
    /// heartbeats read as a dead primary.
    #[must_use]
    pub fn with_missed_hb_threshold(mut self, missed: u32) -> Self {
        self.missed_hb_threshold = missed;
        self
    }

    /// Enables power-switch fencing (builder style).
    #[must_use]
    pub fn with_fencing(mut self, outlet: u32) -> Self {
        self.fencing = Fencing::PowerSwitch { outlet };
        self
    }

    /// Enables logger-assisted recovery (builder style).
    #[must_use]
    pub fn with_logger(mut self) -> Self {
        self.use_logger = true;
        self
    }

    /// Enables the congestion-state mirror (builder style).
    #[must_use]
    pub fn with_cong_sync(mut self) -> Self {
        self.cong_sync = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let cfg = SttcpConfig::new(Ipv4Addr::new(10, 0, 0, 100), 80);
        assert_eq!(cfg.hb_interval, SimDuration::from_millis(50));
        assert_eq!(cfg.missed_hb_threshold, 3);
        assert_eq!(cfg.effective_sync_time(), SimDuration::from_millis(50));
        // X = 3/4 of a 16 KB second buffer = 12 KB.
        assert_eq!(cfg.effective_ack_threshold(16 * 1024), 12 * 1024);
        assert_eq!(cfg.fencing, Fencing::None);
    }

    #[test]
    fn builders() {
        let cfg = SttcpConfig::new(Ipv4Addr::new(10, 0, 0, 100), 80)
            .with_hb_interval(SimDuration::from_secs(5))
            .with_fencing(0)
            .with_logger();
        assert_eq!(cfg.hb_interval, SimDuration::from_secs(5));
        assert_eq!(cfg.fencing, Fencing::PowerSwitch { outlet: 0 });
        assert!(cfg.use_logger);
    }

    #[test]
    fn explicit_overrides_win() {
        let mut cfg = SttcpConfig::new(Ipv4Addr::new(10, 0, 0, 100), 80);
        cfg.sync_time = Some(SimDuration::from_millis(7));
        cfg.ack_threshold = Some(999);
        assert_eq!(cfg.effective_sync_time(), SimDuration::from_millis(7));
        assert_eq!(cfg.effective_ack_threshold(1 << 20), 999);
    }
}
