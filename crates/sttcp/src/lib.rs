//! # ST-TCP — Server fault-Tolerant TCP
//!
//! Reproduction of *"TCP Server Fault Tolerance Using Connection
//! Migration to a Backup Server"* (Marwah, Mishra, Fetzer — DSN 2003).
//!
//! ST-TCP keeps an **active backup server** in lock-step with a primary
//! by *tapping* the Ethernet carrying the client↔primary TCP stream.
//! The backup runs the same deterministic application over a shadow TCP
//! connection that uses the **same sequence numbers** as the primary's
//! (resynchronized from the client's handshake ACK), with all of its
//! output suppressed. When the primary crashes, the backup stops
//! suppressing and *is* the server — no reconnect, no client
//! modification, no visible disruption beyond one retransmission
//! timeout's worth of delay.
//!
//! # Crate layout
//!
//! * [`config`] — protocol tunables (heartbeat interval, `SyncTime`,
//!   ack threshold `X`, fencing, logger use);
//! * [`messages`] — the UDP side-channel protocol (backup acks,
//!   missing-segment recovery, heartbeats — paper §4.2–§4.3);
//! * [`primary`] — retention management, missing-segment server, backup
//!   failure detection (→ non-fault-tolerant mode);
//! * [`backup`] — acknowledgment strategy, tap-omission detection and
//!   recovery, primary failure detection, fencing, takeover, and
//!   logger-assisted double-failure recovery;
//! * [`node`] — simulation hosts ([`node::ServerNode`],
//!   [`node::ClientNode`], [`node::GatewayNode`]);
//! * [`scenario`] — prebuilt experiment topologies (the paper's hub
//!   testbed plus the three switched tapping architectures of §3.1).
//!
//! # Quickstart
//!
//! ```
//! use sttcp::prelude::*;
//!
//! // Echo workload over ST-TCP; crash the primary mid-run.
//! let spec = ScenarioSpec::new(Workload::Echo { requests: 10 })
//!     .st_tcp(SttcpConfig::new(addrs::VIP, 80))
//!     .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(40)));
//! let mut scenario = build(&spec);
//! let metrics = scenario.run(RunLimits::default()).expect_completed();
//! assert!(metrics.verified_clean()); // byte stream intact across failover
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod cluster;
pub mod config;
pub mod fleet;
pub mod messages;
pub mod node;
pub mod prelude;
pub mod primary;
pub mod scenario;

pub use backup::{BackupEngine, BackupStats};
pub use cluster::{build_cluster, ClusterEngine, ClusterFleet, ClusterFleetSpec, ClusterRole};
pub use config::{Fencing, SttcpConfig, TakeoverPolicy};
pub use messages::{ConnKey, SideMsg};
pub use node::{ClientNode, GatewayNode, ServerNode};
pub use primary::{PrimaryEngine, PrimaryStats};
pub use scenario::{
    build, Fault, FaultSpec, RunLimits, RunOutcome, Scenario, ScenarioSpec, StopReason, Topology,
};
