//! The UDP side-channel wire protocol between primary and backup
//! (paper §4.2–§4.3).
//!
//! Four message kinds flow on the channel:
//!
//! * [`SideMsg::Heartbeat`] — periodic liveness, both directions;
//! * [`SideMsg::BackupAck`] — the backup's cumulative acknowledgment of
//!   tapped client bytes ("a sequence number that is one less than its
//!   NextByteExpected value"; we carry `NextByteExpected` itself and
//!   call it `acked_next`), doubling as the backup's heartbeat;
//! * [`SideMsg::MissingReq`]/[`SideMsg::MissingData`]/[`SideMsg::MissingNack`]
//!   — recovery of client bytes the backup's tap missed, served from the
//!   primary's retention buffer.
//!
//! The paper estimates a 128-byte ack per 3 KB of client data ≈ 4.17 %
//! extra LAN traffic; the ablation bench re-measures this with the real
//! encoded sizes below.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;
use tcpstack::Quad;

/// Identifies one shadowed connection on the side channel.
///
/// Server-side view: `server_ip` is the service VIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    /// Client address.
    pub client_ip: Ipv4Addr,
    /// Client port.
    pub client_port: u16,
    /// Service (virtual) IP.
    pub server_ip: Ipv4Addr,
    /// Service port.
    pub server_port: u16,
}

impl ConnKey {
    /// Builds the key from a server-side [`Quad`] (local = service).
    pub fn from_server_quad(q: Quad) -> Self {
        ConnKey {
            client_ip: q.remote_ip,
            client_port: q.remote_port,
            server_ip: q.local_ip,
            server_port: q.local_port,
        }
    }

    /// The server-side [`Quad`] for stack lookups.
    pub fn server_quad(&self) -> Quad {
        Quad::new(self.server_ip, self.server_port, self.client_ip, self.client_port)
    }

    /// The canonical trace identifier for this connection.
    pub fn trace_conn(&self) -> obs::TraceConn {
        obs::TraceConn::new((self.client_ip, self.client_port), (self.server_ip, self.server_port))
    }
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}",
            self.client_ip, self.client_port, self.server_ip, self.server_port
        )
    }
}

/// A side-channel message.
///
/// ```
/// use sttcp::SideMsg;
///
/// let hb = SideMsg::Heartbeat { seq: 42 };
/// assert_eq!(SideMsg::decode(hb.encode()), Some(hb));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SideMsg {
    /// Periodic liveness beacon.
    Heartbeat {
        /// Monotonic sender sequence (diagnostics; detection only uses
        /// arrival times).
        seq: u64,
    },
    /// Backup → primary: "I have every client byte below `acked_next`."
    BackupAck {
        /// Connection the ack applies to.
        conn: ConnKey,
        /// The backup's `NextByteExpected`.
        acked_next: u32,
    },
    /// Backup → primary: "resend client bytes `[from, from+len)`."
    MissingReq {
        /// Connection.
        conn: ConnKey,
        /// First missing sequence number.
        from: u32,
        /// Bytes requested.
        len: u32,
    },
    /// Primary → backup: retained client bytes.
    MissingData {
        /// Connection.
        conn: ConnKey,
        /// Sequence number of `data[0]`.
        seq: u32,
        /// The bytes.
        data: Bytes,
    },
    /// Primary → backup: the requested range is not (fully) available.
    MissingNack {
        /// Connection.
        conn: ConnKey,
        /// The `from` of the request being refused.
        from: u32,
    },
    /// Cluster heartbeat: liveness *plus* the authoritative replication
    /// topology — the epoch and the rank-ordered member list ride on
    /// every beat, so every backup always knows the promotion order
    /// without a separate membership protocol.
    ClusterHb {
        /// Monotonic sender sequence.
        seq: u64,
        /// Topology epoch; a higher epoch supersedes a lower one.
        epoch: u32,
        /// The sender's rank in `members` (0 = primary).
        sender_rank: u8,
        /// Rank-ordered member addresses: `members[0]` is the primary,
        /// `members[1]` the first backup in the promotion order, …
        members: Vec<Ipv4Addr>,
    },
    /// Backup → primary: one *batched* cumulative-ack message carrying
    /// every connection whose shadow progressed since the last batch.
    /// This is what keeps the side channel sub-linear in the backup
    /// count: deep-chain backups coalesce per-connection acks into one
    /// datagram per sync tick instead of one per connection.
    AckBatch {
        /// The sender's rank in the current topology.
        rank: u8,
        /// `(connection, NextByteExpected)` pairs.
        entries: Vec<(ConnKey, u32)>,
    },
    /// Primary → designated successor: planned migration begins — the
    /// primary is draining and will hand the VIP over.
    Drain {
        /// Epoch the handover will establish (current + 1).
        epoch: u32,
        /// Rank of the backup designated to take over.
        successor_rank: u8,
    },
    /// Successor → primary: shadow state is caught up; safe to fence.
    DrainReady {
        /// The responder's rank.
        rank: u8,
        /// Echo of the drain epoch being acknowledged.
        epoch: u32,
    },
    /// Primary → successor: the primary has fenced itself (VIP egress
    /// suppressed); the successor owns the VIP as of this message.
    Handover {
        /// The epoch the successor's reign begins with.
        epoch: u32,
    },
    /// Primary → backups: congestion-controller state mirror, so a
    /// promoted shadow resumes near the primary's operating point
    /// instead of cold-starting from the initial window. Advisory: a
    /// backup that never sees one simply starts conservatively.
    CongSync {
        /// Connection the snapshot applies to.
        conn: ConnKey,
        /// The primary's congestion window, bytes.
        cwnd: u32,
        /// The primary's slow-start threshold, bytes.
        ssthresh: u32,
    },
}

impl SideMsg {
    /// Decomposes the message into the fields a trace event carries:
    /// kind, connection (absent for heartbeats), the kind's sequence
    /// number (heartbeat seq, `acked_next`, `from`, or data `seq`), and
    /// a payload/request length where one exists.
    pub fn trace_parts(&self) -> (obs::trace::SideMsgKind, Option<obs::TraceConn>, u64, u32) {
        use obs::trace::SideMsgKind as K;
        match self {
            SideMsg::Heartbeat { seq } => (K::Heartbeat, None, *seq, 0),
            SideMsg::BackupAck { conn, acked_next } => {
                (K::BackupAck, Some(conn.trace_conn()), u64::from(*acked_next), 0)
            }
            SideMsg::MissingReq { conn, from, len } => {
                (K::MissingReq, Some(conn.trace_conn()), u64::from(*from), *len)
            }
            SideMsg::MissingData { conn, seq, data } => {
                (K::MissingData, Some(conn.trace_conn()), u64::from(*seq), data.len() as u32)
            }
            SideMsg::MissingNack { conn, from } => {
                (K::MissingNack, Some(conn.trace_conn()), u64::from(*from), 0)
            }
            SideMsg::ClusterHb { seq, members, .. } => {
                (K::ClusterHb, None, *seq, members.len() as u32)
            }
            SideMsg::AckBatch { rank, entries } => {
                (K::AckBatch, None, u64::from(*rank), entries.len() as u32)
            }
            SideMsg::Drain { epoch, successor_rank } => {
                (K::Drain, None, u64::from(*epoch), u32::from(*successor_rank))
            }
            SideMsg::DrainReady { rank, epoch } => {
                (K::DrainReady, None, u64::from(*epoch), u32::from(*rank))
            }
            SideMsg::Handover { epoch } => (K::Handover, None, u64::from(*epoch), 0),
            SideMsg::CongSync { conn, cwnd, ssthresh } => {
                (K::CongSync, Some(conn.trace_conn()), u64::from(*cwnd), *ssthresh)
            }
        }
    }
}

const TAG_HEARTBEAT: u8 = 1;
const TAG_BACKUP_ACK: u8 = 2;
const TAG_MISSING_REQ: u8 = 3;
const TAG_MISSING_DATA: u8 = 4;
const TAG_MISSING_NACK: u8 = 5;
const TAG_CLUSTER_HB: u8 = 6;
const TAG_ACK_BATCH: u8 = 7;
const TAG_DRAIN: u8 = 8;
const TAG_DRAIN_READY: u8 = 9;
const TAG_HANDOVER: u8 = 10;
const TAG_CONG_SYNC: u8 = 11;

fn put_key(buf: &mut BytesMut, key: &ConnKey) {
    buf.put_slice(&key.client_ip.octets());
    buf.put_u16(key.client_port);
    buf.put_slice(&key.server_ip.octets());
    buf.put_u16(key.server_port);
}

fn get_key(buf: &mut Bytes) -> Option<ConnKey> {
    if buf.len() < 12 {
        return None;
    }
    let client_ip = Ipv4Addr::new(buf.get_u8(), buf.get_u8(), buf.get_u8(), buf.get_u8());
    let client_port = buf.get_u16();
    let server_ip = Ipv4Addr::new(buf.get_u8(), buf.get_u8(), buf.get_u8(), buf.get_u8());
    let server_port = buf.get_u16();
    Some(ConnKey { client_ip, client_port, server_ip, server_port })
}

impl SideMsg {
    /// Serializes for the UDP channel.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            SideMsg::Heartbeat { seq } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64(*seq);
            }
            SideMsg::BackupAck { conn, acked_next } => {
                buf.put_u8(TAG_BACKUP_ACK);
                put_key(&mut buf, conn);
                buf.put_u32(*acked_next);
            }
            SideMsg::MissingReq { conn, from, len } => {
                buf.put_u8(TAG_MISSING_REQ);
                put_key(&mut buf, conn);
                buf.put_u32(*from);
                buf.put_u32(*len);
            }
            SideMsg::MissingData { conn, seq, data } => {
                buf.put_u8(TAG_MISSING_DATA);
                put_key(&mut buf, conn);
                buf.put_u32(*seq);
                buf.put_slice(data);
            }
            SideMsg::MissingNack { conn, from } => {
                buf.put_u8(TAG_MISSING_NACK);
                put_key(&mut buf, conn);
                buf.put_u32(*from);
            }
            SideMsg::ClusterHb { seq, epoch, sender_rank, members } => {
                buf.put_u8(TAG_CLUSTER_HB);
                buf.put_u64(*seq);
                buf.put_u32(*epoch);
                buf.put_u8(*sender_rank);
                debug_assert!(members.len() <= u8::MAX as usize);
                buf.put_u8(members.len() as u8);
                for ip in members {
                    buf.put_slice(&ip.octets());
                }
            }
            SideMsg::AckBatch { rank, entries } => {
                buf.put_u8(TAG_ACK_BATCH);
                buf.put_u8(*rank);
                debug_assert!(entries.len() <= u16::MAX as usize);
                buf.put_u16(entries.len() as u16);
                for (conn, acked_next) in entries {
                    put_key(&mut buf, conn);
                    buf.put_u32(*acked_next);
                }
            }
            SideMsg::Drain { epoch, successor_rank } => {
                buf.put_u8(TAG_DRAIN);
                buf.put_u32(*epoch);
                buf.put_u8(*successor_rank);
            }
            SideMsg::DrainReady { rank, epoch } => {
                buf.put_u8(TAG_DRAIN_READY);
                buf.put_u8(*rank);
                buf.put_u32(*epoch);
            }
            SideMsg::Handover { epoch } => {
                buf.put_u8(TAG_HANDOVER);
                buf.put_u32(*epoch);
            }
            SideMsg::CongSync { conn, cwnd, ssthresh } => {
                buf.put_u8(TAG_CONG_SYNC);
                put_key(&mut buf, conn);
                buf.put_u32(*cwnd);
                buf.put_u32(*ssthresh);
            }
        }
        buf.freeze()
    }

    /// Parses a datagram payload; `None` on malformed input (the channel
    /// simply drops garbage — it is an optimization path, never a
    /// correctness dependency during failure-free operation).
    pub fn decode(mut raw: Bytes) -> Option<SideMsg> {
        if raw.is_empty() {
            return None;
        }
        let tag = raw.get_u8();
        match tag {
            TAG_HEARTBEAT => {
                if raw.len() < 8 {
                    return None;
                }
                Some(SideMsg::Heartbeat { seq: raw.get_u64() })
            }
            TAG_BACKUP_ACK => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 4 {
                    return None;
                }
                Some(SideMsg::BackupAck { conn, acked_next: raw.get_u32() })
            }
            TAG_MISSING_REQ => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 8 {
                    return None;
                }
                Some(SideMsg::MissingReq { conn, from: raw.get_u32(), len: raw.get_u32() })
            }
            TAG_MISSING_DATA => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 4 {
                    return None;
                }
                let seq = raw.get_u32();
                Some(SideMsg::MissingData { conn, seq, data: raw })
            }
            TAG_MISSING_NACK => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 4 {
                    return None;
                }
                Some(SideMsg::MissingNack { conn, from: raw.get_u32() })
            }
            TAG_CLUSTER_HB => {
                if raw.len() < 14 {
                    return None;
                }
                let seq = raw.get_u64();
                let epoch = raw.get_u32();
                let sender_rank = raw.get_u8();
                let count = raw.get_u8() as usize;
                if raw.len() < count * 4 {
                    return None;
                }
                let mut members = Vec::with_capacity(count);
                for _ in 0..count {
                    members.push(Ipv4Addr::new(
                        raw.get_u8(),
                        raw.get_u8(),
                        raw.get_u8(),
                        raw.get_u8(),
                    ));
                }
                Some(SideMsg::ClusterHb { seq, epoch, sender_rank, members })
            }
            TAG_ACK_BATCH => {
                if raw.len() < 3 {
                    return None;
                }
                let rank = raw.get_u8();
                let count = raw.get_u16() as usize;
                if raw.len() < count * 16 {
                    return None;
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let conn = get_key(&mut raw)?;
                    if raw.len() < 4 {
                        return None;
                    }
                    entries.push((conn, raw.get_u32()));
                }
                Some(SideMsg::AckBatch { rank, entries })
            }
            TAG_DRAIN => {
                if raw.len() < 5 {
                    return None;
                }
                Some(SideMsg::Drain { epoch: raw.get_u32(), successor_rank: raw.get_u8() })
            }
            TAG_DRAIN_READY => {
                if raw.len() < 5 {
                    return None;
                }
                Some(SideMsg::DrainReady { rank: raw.get_u8(), epoch: raw.get_u32() })
            }
            TAG_HANDOVER => {
                if raw.len() < 4 {
                    return None;
                }
                Some(SideMsg::Handover { epoch: raw.get_u32() })
            }
            TAG_CONG_SYNC => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 8 {
                    return None;
                }
                Some(SideMsg::CongSync { conn, cwnd: raw.get_u32(), ssthresh: raw.get_u32() })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ConnKey {
        ConnKey {
            client_ip: Ipv4Addr::new(10, 0, 0, 1),
            client_port: 43210,
            server_ip: Ipv4Addr::new(10, 0, 0, 100),
            server_port: 80,
        }
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            SideMsg::Heartbeat { seq: 42 },
            SideMsg::BackupAck { conn: key(), acked_next: 0xDEADBEEF },
            SideMsg::MissingReq { conn: key(), from: 100, len: 4096 },
            SideMsg::MissingData { conn: key(), seq: 100, data: Bytes::from_static(b"payload") },
            SideMsg::MissingNack { conn: key(), from: 100 },
            SideMsg::ClusterHb {
                seq: 7,
                epoch: 3,
                sender_rank: 0,
                members: vec![
                    Ipv4Addr::new(10, 0, 0, 2),
                    Ipv4Addr::new(10, 0, 0, 3),
                    Ipv4Addr::new(10, 0, 0, 4),
                ],
            },
            SideMsg::AckBatch { rank: 2, entries: vec![(key(), 0xDEAD_BEEF), (key(), 77)] },
            SideMsg::Drain { epoch: 9, successor_rank: 1 },
            SideMsg::DrainReady { rank: 1, epoch: 9 },
            SideMsg::Handover { epoch: 9 },
            SideMsg::CongSync { conn: key(), cwnd: 29_200, ssthresh: 14_600 },
        ];
        for msg in msgs {
            assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
        }
    }

    #[test]
    fn cluster_hb_with_no_members_roundtrips() {
        let msg = SideMsg::ClusterHb { seq: 1, epoch: 0, sender_rank: 0, members: vec![] };
        assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
    }

    #[test]
    fn empty_ack_batch_roundtrips() {
        let msg = SideMsg::AckBatch { rank: 3, entries: vec![] };
        assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
    }

    #[test]
    fn truncated_cluster_messages_rejected() {
        // ClusterHb claiming 3 members but carrying only 1.
        let full = SideMsg::ClusterHb {
            seq: 1,
            epoch: 0,
            sender_rank: 0,
            members: vec![Ipv4Addr::new(10, 0, 0, 2)],
        }
        .encode();
        let mut forged = full.to_vec();
        forged[14] = 3; // member count byte (tag + seq + epoch + rank before it)
        assert_eq!(SideMsg::decode(Bytes::from(forged)), None);
        // AckBatch claiming an entry with no bytes behind it.
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_ACK_BATCH, 0, 0, 1])), None);
        // Truncated drain/handover family.
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_DRAIN, 0, 0])), None);
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_DRAIN_READY, 1])), None);
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_HANDOVER, 9])), None);
        // CongSync with the key but not both u32s behind it.
        let mut short = SideMsg::CongSync { conn: key(), cwnd: 1, ssthresh: 2 }.encode().to_vec();
        short.truncate(short.len() - 5);
        assert_eq!(SideMsg::decode(Bytes::from(short)), None);
    }

    #[test]
    fn ack_batch_is_sublinear_in_connections() {
        // One batch of k entries must undercut k standalone acks: the
        // whole point of piggybacking is amortizing the tag byte and
        // datagram overheads.
        let k = 16;
        let batch =
            SideMsg::AckBatch { rank: 1, entries: (0..k).map(|i| (key(), i as u32)).collect() };
        let standalone: usize =
            (0..k).map(|i| SideMsg::BackupAck { conn: key(), acked_next: i }.encode().len()).sum();
        assert!(batch.encode().len() < standalone);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(SideMsg::decode(Bytes::new()), None);
        assert_eq!(SideMsg::decode(Bytes::from_static(&[99, 1, 2, 3])), None);
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_BACKUP_ACK, 1])), None);
        // Truncated heartbeat.
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_HEARTBEAT, 0, 0])), None);
    }

    #[test]
    fn conn_key_quad_roundtrip() {
        let q = key().server_quad();
        assert_eq!(ConnKey::from_server_quad(q), key());
        assert_eq!(q.local_ip, Ipv4Addr::new(10, 0, 0, 100));
        assert_eq!(q.remote_port, 43210);
    }

    #[test]
    fn ack_message_is_small() {
        // The paper budgets 128 bytes for a full ack packet including
        // all headers; our payload is a fraction of that.
        let ack = SideMsg::BackupAck { conn: key(), acked_next: 1 };
        assert!(ack.encode().len() <= 32, "ack payload stays tiny: {}", ack.encode().len());
    }

    #[test]
    fn empty_missing_data_roundtrips() {
        let msg = SideMsg::MissingData { conn: key(), seq: 5, data: Bytes::new() };
        assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
    }
}
