//! The UDP side-channel wire protocol between primary and backup
//! (paper §4.2–§4.3).
//!
//! Four message kinds flow on the channel:
//!
//! * [`SideMsg::Heartbeat`] — periodic liveness, both directions;
//! * [`SideMsg::BackupAck`] — the backup's cumulative acknowledgment of
//!   tapped client bytes ("a sequence number that is one less than its
//!   NextByteExpected value"; we carry `NextByteExpected` itself and
//!   call it `acked_next`), doubling as the backup's heartbeat;
//! * [`SideMsg::MissingReq`]/[`SideMsg::MissingData`]/[`SideMsg::MissingNack`]
//!   — recovery of client bytes the backup's tap missed, served from the
//!   primary's retention buffer.
//!
//! The paper estimates a 128-byte ack per 3 KB of client data ≈ 4.17 %
//! extra LAN traffic; the ablation bench re-measures this with the real
//! encoded sizes below.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;
use tcpstack::Quad;

/// Identifies one shadowed connection on the side channel.
///
/// Server-side view: `server_ip` is the service VIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    /// Client address.
    pub client_ip: Ipv4Addr,
    /// Client port.
    pub client_port: u16,
    /// Service (virtual) IP.
    pub server_ip: Ipv4Addr,
    /// Service port.
    pub server_port: u16,
}

impl ConnKey {
    /// Builds the key from a server-side [`Quad`] (local = service).
    pub fn from_server_quad(q: Quad) -> Self {
        ConnKey {
            client_ip: q.remote_ip,
            client_port: q.remote_port,
            server_ip: q.local_ip,
            server_port: q.local_port,
        }
    }

    /// The server-side [`Quad`] for stack lookups.
    pub fn server_quad(&self) -> Quad {
        Quad::new(self.server_ip, self.server_port, self.client_ip, self.client_port)
    }

    /// The canonical trace identifier for this connection.
    pub fn trace_conn(&self) -> obs::TraceConn {
        obs::TraceConn::new((self.client_ip, self.client_port), (self.server_ip, self.server_port))
    }
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}",
            self.client_ip, self.client_port, self.server_ip, self.server_port
        )
    }
}

/// A side-channel message.
///
/// ```
/// use sttcp::SideMsg;
///
/// let hb = SideMsg::Heartbeat { seq: 42 };
/// assert_eq!(SideMsg::decode(hb.encode()), Some(hb));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SideMsg {
    /// Periodic liveness beacon.
    Heartbeat {
        /// Monotonic sender sequence (diagnostics; detection only uses
        /// arrival times).
        seq: u64,
    },
    /// Backup → primary: "I have every client byte below `acked_next`."
    BackupAck {
        /// Connection the ack applies to.
        conn: ConnKey,
        /// The backup's `NextByteExpected`.
        acked_next: u32,
    },
    /// Backup → primary: "resend client bytes `[from, from+len)`."
    MissingReq {
        /// Connection.
        conn: ConnKey,
        /// First missing sequence number.
        from: u32,
        /// Bytes requested.
        len: u32,
    },
    /// Primary → backup: retained client bytes.
    MissingData {
        /// Connection.
        conn: ConnKey,
        /// Sequence number of `data[0]`.
        seq: u32,
        /// The bytes.
        data: Bytes,
    },
    /// Primary → backup: the requested range is not (fully) available.
    MissingNack {
        /// Connection.
        conn: ConnKey,
        /// The `from` of the request being refused.
        from: u32,
    },
}

impl SideMsg {
    /// Decomposes the message into the fields a trace event carries:
    /// kind, connection (absent for heartbeats), the kind's sequence
    /// number (heartbeat seq, `acked_next`, `from`, or data `seq`), and
    /// a payload/request length where one exists.
    pub fn trace_parts(&self) -> (obs::trace::SideMsgKind, Option<obs::TraceConn>, u64, u32) {
        use obs::trace::SideMsgKind as K;
        match self {
            SideMsg::Heartbeat { seq } => (K::Heartbeat, None, *seq, 0),
            SideMsg::BackupAck { conn, acked_next } => {
                (K::BackupAck, Some(conn.trace_conn()), u64::from(*acked_next), 0)
            }
            SideMsg::MissingReq { conn, from, len } => {
                (K::MissingReq, Some(conn.trace_conn()), u64::from(*from), *len)
            }
            SideMsg::MissingData { conn, seq, data } => {
                (K::MissingData, Some(conn.trace_conn()), u64::from(*seq), data.len() as u32)
            }
            SideMsg::MissingNack { conn, from } => {
                (K::MissingNack, Some(conn.trace_conn()), u64::from(*from), 0)
            }
        }
    }
}

const TAG_HEARTBEAT: u8 = 1;
const TAG_BACKUP_ACK: u8 = 2;
const TAG_MISSING_REQ: u8 = 3;
const TAG_MISSING_DATA: u8 = 4;
const TAG_MISSING_NACK: u8 = 5;

fn put_key(buf: &mut BytesMut, key: &ConnKey) {
    buf.put_slice(&key.client_ip.octets());
    buf.put_u16(key.client_port);
    buf.put_slice(&key.server_ip.octets());
    buf.put_u16(key.server_port);
}

fn get_key(buf: &mut Bytes) -> Option<ConnKey> {
    if buf.len() < 12 {
        return None;
    }
    let client_ip = Ipv4Addr::new(buf.get_u8(), buf.get_u8(), buf.get_u8(), buf.get_u8());
    let client_port = buf.get_u16();
    let server_ip = Ipv4Addr::new(buf.get_u8(), buf.get_u8(), buf.get_u8(), buf.get_u8());
    let server_port = buf.get_u16();
    Some(ConnKey { client_ip, client_port, server_ip, server_port })
}

impl SideMsg {
    /// Serializes for the UDP channel.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            SideMsg::Heartbeat { seq } => {
                buf.put_u8(TAG_HEARTBEAT);
                buf.put_u64(*seq);
            }
            SideMsg::BackupAck { conn, acked_next } => {
                buf.put_u8(TAG_BACKUP_ACK);
                put_key(&mut buf, conn);
                buf.put_u32(*acked_next);
            }
            SideMsg::MissingReq { conn, from, len } => {
                buf.put_u8(TAG_MISSING_REQ);
                put_key(&mut buf, conn);
                buf.put_u32(*from);
                buf.put_u32(*len);
            }
            SideMsg::MissingData { conn, seq, data } => {
                buf.put_u8(TAG_MISSING_DATA);
                put_key(&mut buf, conn);
                buf.put_u32(*seq);
                buf.put_slice(data);
            }
            SideMsg::MissingNack { conn, from } => {
                buf.put_u8(TAG_MISSING_NACK);
                put_key(&mut buf, conn);
                buf.put_u32(*from);
            }
        }
        buf.freeze()
    }

    /// Parses a datagram payload; `None` on malformed input (the channel
    /// simply drops garbage — it is an optimization path, never a
    /// correctness dependency during failure-free operation).
    pub fn decode(mut raw: Bytes) -> Option<SideMsg> {
        if raw.is_empty() {
            return None;
        }
        let tag = raw.get_u8();
        match tag {
            TAG_HEARTBEAT => {
                if raw.len() < 8 {
                    return None;
                }
                Some(SideMsg::Heartbeat { seq: raw.get_u64() })
            }
            TAG_BACKUP_ACK => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 4 {
                    return None;
                }
                Some(SideMsg::BackupAck { conn, acked_next: raw.get_u32() })
            }
            TAG_MISSING_REQ => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 8 {
                    return None;
                }
                Some(SideMsg::MissingReq { conn, from: raw.get_u32(), len: raw.get_u32() })
            }
            TAG_MISSING_DATA => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 4 {
                    return None;
                }
                let seq = raw.get_u32();
                Some(SideMsg::MissingData { conn, seq, data: raw })
            }
            TAG_MISSING_NACK => {
                let conn = get_key(&mut raw)?;
                if raw.len() < 4 {
                    return None;
                }
                Some(SideMsg::MissingNack { conn, from: raw.get_u32() })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ConnKey {
        ConnKey {
            client_ip: Ipv4Addr::new(10, 0, 0, 1),
            client_port: 43210,
            server_ip: Ipv4Addr::new(10, 0, 0, 100),
            server_port: 80,
        }
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            SideMsg::Heartbeat { seq: 42 },
            SideMsg::BackupAck { conn: key(), acked_next: 0xDEADBEEF },
            SideMsg::MissingReq { conn: key(), from: 100, len: 4096 },
            SideMsg::MissingData { conn: key(), seq: 100, data: Bytes::from_static(b"payload") },
            SideMsg::MissingNack { conn: key(), from: 100 },
        ];
        for msg in msgs {
            assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(SideMsg::decode(Bytes::new()), None);
        assert_eq!(SideMsg::decode(Bytes::from_static(&[99, 1, 2, 3])), None);
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_BACKUP_ACK, 1])), None);
        // Truncated heartbeat.
        assert_eq!(SideMsg::decode(Bytes::from_static(&[TAG_HEARTBEAT, 0, 0])), None);
    }

    #[test]
    fn conn_key_quad_roundtrip() {
        let q = key().server_quad();
        assert_eq!(ConnKey::from_server_quad(q), key());
        assert_eq!(q.local_ip, Ipv4Addr::new(10, 0, 0, 100));
        assert_eq!(q.remote_port, 43210);
    }

    #[test]
    fn ack_message_is_small() {
        // The paper budgets 128 bytes for a full ack packet including
        // all headers; our payload is a fraction of that.
        let ack = SideMsg::BackupAck { conn: key(), acked_next: 1 };
        assert!(ack.encode().len() <= 32, "ack payload stays tiny: {}", ack.encode().len());
    }

    #[test]
    fn empty_missing_data_roundtrips() {
        let msg = SideMsg::MissingData { conn: key(), seq: 5, data: Bytes::new() };
        assert_eq!(SideMsg::decode(msg.encode()), Some(msg));
    }
}
