//! Vendored, minimal reimplementation of the parts of the `bytes` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships its own `Bytes`/`BytesMut` with the same semantics the real
//! crate documents for the operations we rely on:
//!
//! * [`Bytes`] is a cheaply-cloneable, reference-counted, immutable view
//!   into a shared buffer. `clone()` and `slice()` never copy or
//!   allocate.
//! * [`BytesMut`] is a unique writer over the tail of a shared buffer.
//!   [`BytesMut::freeze`] and [`BytesMut::split_to`] hand out views
//!   without copying, and [`BytesMut::reserve`] reclaims the buffer in
//!   place once every view split from it has been dropped — the property
//!   the frame hot path uses to emit frames with zero steady-state
//!   allocations.
//! * [`Buf`]/[`BufMut`] provide the advancing big-endian accessors the
//!   codecs use.
//!
//! Layout: one heap allocation holds the byte buffer, a second (the
//! [`Shared`] header) holds the refcount and buffer metadata. Both are
//! reused for the life of a [`BytesMut`] under the reserve-reclaim rule,
//! so neither is a per-frame cost.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::ManuallyDrop;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::ptr::NonNull;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

/// Refcounted header for one shared buffer.
///
/// The buffer it points at never moves or changes size while more than
/// one reference is alive; that is what makes the raw `ptr`s stored in
/// [`Bytes`] stable.
struct Shared {
    refs: AtomicUsize,
    ptr: *mut u8,
    cap: usize,
}

impl Shared {
    /// Allocates a header plus a buffer of capacity `cap`.
    fn alloc(cap: usize) -> NonNull<Shared> {
        let mut v = ManuallyDrop::new(Vec::<u8>::with_capacity(cap));
        let shared =
            Box::new(Shared { refs: AtomicUsize::new(1), ptr: v.as_mut_ptr(), cap: v.capacity() });
        // SAFETY: Box::into_raw never returns null.
        unsafe { NonNull::new_unchecked(Box::into_raw(shared)) }
    }

    /// Takes ownership of an existing `Vec`'s buffer without copying.
    fn from_vec(vec: Vec<u8>) -> (NonNull<Shared>, usize) {
        let mut v = ManuallyDrop::new(vec);
        let len = v.len();
        let shared =
            Box::new(Shared { refs: AtomicUsize::new(1), ptr: v.as_mut_ptr(), cap: v.capacity() });
        // SAFETY: Box::into_raw never returns null.
        (unsafe { NonNull::new_unchecked(Box::into_raw(shared)) }, len)
    }
}

/// Bumps the refcount of `shared`.
///
/// # Safety
/// `shared` must point at a live `Shared` (refcount ≥ 1).
unsafe fn incref(shared: NonNull<Shared>) {
    shared.as_ref().refs.fetch_add(1, Ordering::Relaxed);
}

/// Drops one reference; frees the buffer and header on the last one.
///
/// # Safety
/// The caller must own one reference and never use `shared` again.
unsafe fn decref(shared: NonNull<Shared>) {
    if shared.as_ref().refs.fetch_sub(1, Ordering::Release) == 1 {
        fence(Ordering::Acquire);
        let boxed = Box::from_raw(shared.as_ptr());
        drop(Vec::from_raw_parts(boxed.ptr, 0, boxed.cap));
    }
}

fn resolve_range(range: impl RangeBounds<usize>, len: usize) -> (usize, usize) {
    let start = match range.start_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n + 1,
        Bound::Unbounded => 0,
    };
    let end = match range.end_bound() {
        Bound::Included(&n) => n + 1,
        Bound::Excluded(&n) => n,
        Bound::Unbounded => len,
    };
    assert!(start <= end, "range start {start} > end {end}");
    assert!(end <= len, "range end {end} out of bounds (len {len})");
    (start, end)
}

// ====================================================================
// Bytes
// ====================================================================

/// A cheaply-cloneable immutable view into a shared byte buffer.
pub struct Bytes {
    /// `None` for views of `'static` data (nothing to free).
    shared: Option<NonNull<Shared>>,
    ptr: *const u8,
    len: usize,
}

// SAFETY: the pointed-at bytes are immutable for the view's lifetime
// (a coexisting `BytesMut` only ever writes its own disjoint region),
// and the refcount is atomic.
unsafe impl Send for Bytes {}
unsafe impl Sync for Bytes {}

impl Bytes {
    /// An empty view. Never allocates.
    pub const fn new() -> Bytes {
        Bytes { shared: None, ptr: NonNull::<u8>::dangling().as_ptr(), len: 0 }
    }

    /// Wraps `'static` data without allocating.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { shared: None, ptr: data.as_ptr(), len: data.len() }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a sub-view; shares the buffer, never copies.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let (start, end) = resolve_range(range, self.len);
        if let Some(shared) = self.shared {
            // SAFETY: we hold a reference, so the header is live.
            unsafe { incref(shared) };
        }
        Bytes {
            shared: self.shared,
            // SAFETY: start ≤ len, so the offset stays in bounds.
            ptr: unsafe { self.ptr.add(start) },
            len: end - start,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        // SAFETY: at ≤ len checked by `slice` above.
        self.ptr = unsafe { self.ptr.add(at) };
        self.len -= at;
        head
    }

    /// Splits off and returns the bytes from `at` on; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        let tail = self.slice(at..);
        self.len = at;
        tail
    }

    /// Shortens the view to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: ptr/len describe initialized bytes that no writer
        // touches (see the `Send`/`Sync` comment).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        if let Some(shared) = self.shared {
            // SAFETY: we hold a reference, so the header is live.
            unsafe { incref(shared) };
        }
        Bytes { shared: self.shared, ptr: self.ptr, len: self.len }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        if let Some(shared) = self.shared {
            // SAFETY: we own exactly one reference.
            unsafe { decref(shared) };
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes_debug(self, f)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Bytes {
        if vec.capacity() == 0 {
            return Bytes::new();
        }
        let (shared, len) = Shared::from_vec(vec);
        // SAFETY: the header was just created and owns the buffer.
        let ptr = unsafe { shared.as_ref().ptr };
        Bytes { shared: Some(shared), ptr, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Bytes {
        Bytes::from_static(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(buf: BytesMut) -> Bytes {
        buf.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

// ====================================================================
// BytesMut
// ====================================================================

/// A unique, growable writer over (a region of) a shared buffer.
///
/// The writer exclusively owns `[off, end)` of the underlying buffer;
/// views split off before `off` are immutable and disjoint, which is
/// what makes sharing sound.
pub struct BytesMut {
    /// `None` until the first write (an empty `BytesMut` is free).
    shared: Option<NonNull<Shared>>,
    /// Start of the exclusively-owned region.
    off: usize,
    /// Exclusive end of the owned region (== cap for an unsplit writer).
    end: usize,
    /// Initialized length within the owned region.
    len: usize,
}

// SAFETY: same argument as `Bytes`, plus the owned region is only ever
// written through the unique `&mut BytesMut`.
unsafe impl Send for BytesMut {}
unsafe impl Sync for BytesMut {}

impl BytesMut {
    /// An empty writer. Never allocates.
    pub const fn new() -> BytesMut {
        BytesMut { shared: None, off: 0, end: 0, len: 0 }
    }

    /// A writer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        if cap == 0 {
            return BytesMut::new();
        }
        let shared = Shared::alloc(cap);
        // SAFETY: freshly allocated header.
        let end = unsafe { shared.as_ref().cap };
        BytesMut { shared: Some(shared), off: 0, end, len: 0 }
    }

    /// Initialized length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writable capacity remaining in the owned region.
    pub fn capacity(&self) -> usize {
        self.end - self.off
    }

    fn base(&self) -> *mut u8 {
        match self.shared {
            // SAFETY: we hold a reference, so the header is live.
            Some(shared) => unsafe { shared.as_ref().ptr },
            None => NonNull::<u8>::dangling().as_ptr(),
        }
    }

    /// Ensures room for `additional` more bytes.
    ///
    /// When every view split from this buffer has been dropped (this
    /// writer holds the only reference) the whole buffer is reclaimed in
    /// place instead of allocating — the steady-state of the frame hot
    /// path. Otherwise a fresh buffer is allocated and the initialized
    /// bytes are moved over.
    pub fn reserve(&mut self, additional: usize) {
        if self.end - self.off - self.len >= additional {
            return;
        }
        let needed = self.len + additional;
        if let Some(shared) = self.shared {
            // SAFETY: we hold a reference, so the header is live.
            let s = unsafe { shared.as_ref() };
            if s.refs.load(Ordering::Acquire) == 1 && self.end == s.cap && s.cap >= needed {
                // Sole owner of the whole buffer: slide our bytes to the
                // front and reuse the allocation.
                if self.len > 0 && self.off > 0 {
                    // SAFETY: both ranges lie inside the same live buffer.
                    unsafe {
                        std::ptr::copy(s.ptr.add(self.off), s.ptr, self.len);
                    }
                }
                self.off = 0;
                return;
            }
        }
        // Grow path: fresh buffer, geometric growth.
        let new_cap = needed.max((self.end - self.off) * 2).max(64);
        let shared = Shared::alloc(new_cap);
        // SAFETY: freshly allocated, disjoint from the old buffer.
        unsafe {
            let dst = shared.as_ref().ptr;
            if self.len > 0 {
                std::ptr::copy_nonoverlapping(self.base().add(self.off), dst, self.len);
            }
        }
        if let Some(old) = self.shared {
            // SAFETY: we owned one reference to the old buffer.
            unsafe { decref(old) };
        }
        // SAFETY: freshly allocated header.
        let end = unsafe { shared.as_ref().cap };
        self.shared = Some(shared);
        self.off = 0;
        self.end = end;
    }

    /// Appends `src`, growing as needed.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.reserve(src.len());
        // SAFETY: reserve guaranteed room; the destination region
        // [off+len, off+len+src.len) is exclusively ours.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.base().add(self.off + self.len),
                src.len(),
            );
        }
        self.len += src.len();
    }

    /// Freezes the writer into an immutable view. Never copies.
    pub fn freeze(self) -> Bytes {
        let this = ManuallyDrop::new(self);
        match this.shared {
            Some(shared) => Bytes {
                shared: Some(shared),
                // SAFETY: off stays within the buffer.
                ptr: unsafe { shared.as_ref().ptr.add(this.off) },
                len: this.len,
            },
            None => Bytes::new(),
        }
    }

    /// Splits off and returns the first `at` initialized bytes as their
    /// own writer; `self` keeps the rest of the region. No copying.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len, "split_to at {at} > len {}", self.len);
        if let Some(shared) = self.shared {
            // SAFETY: we hold a reference, so the header is live.
            unsafe { incref(shared) };
        }
        let head = BytesMut { shared: self.shared, off: self.off, end: self.off + at, len: at };
        self.off += at;
        self.len -= at;
        head
    }

    /// Splits off all initialized bytes (`split_to(len)`).
    pub fn split(&mut self) -> BytesMut {
        self.split_to(self.len)
    }

    /// Clears the initialized bytes; capacity is kept.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Shortens to `len` bytes (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    /// Resizes to `new_len`, filling new bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        if new_len <= self.len {
            self.len = new_len;
            return;
        }
        let grow = new_len - self.len;
        self.reserve(grow);
        // SAFETY: reserve guaranteed room in our exclusive region.
        unsafe {
            std::ptr::write_bytes(self.base().add(self.off + self.len), value, grow);
        }
        self.len = new_len;
    }

    /// Copies the initialized bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: [off, off+len) is initialized and exclusively ours.
        unsafe { std::slice::from_raw_parts(self.base().add(self.off), self.len) }
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: [off, off+len) is initialized and exclusively ours.
        unsafe { std::slice::from_raw_parts_mut(self.base().add(self.off), self.len) }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        self
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        if let Some(shared) = self.shared {
            // SAFETY: we own exactly one reference.
            unsafe { decref(shared) };
        }
    }
}

impl Default for BytesMut {
    fn default() -> BytesMut {
        BytesMut::new()
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> BytesMut {
        let mut out = BytesMut::with_capacity(self.len.max(1));
        out.extend_from_slice(self);
        out
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes_debug(self, f)
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &BytesMut) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for BytesMut {}

impl PartialEq<[u8]> for BytesMut {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        for b in iter {
            self.extend_from_slice(&[b]);
        }
    }
}

impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<I: IntoIterator<Item = &'a u8>>(&mut self, iter: I) {
        for b in iter {
            self.extend_from_slice(&[*b]);
        }
    }
}

// ====================================================================
// Buf / BufMut
// ====================================================================

/// Advancing big-endian reads over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len, "advance {cnt} > remaining {}", self.len);
        // SAFETY: cnt ≤ len keeps the pointer in bounds.
        self.ptr = unsafe { self.ptr.add(cnt) };
        self.len -= cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Appending big-endian writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Shared `Debug` body for `Bytes`/`BytesMut`: `b"..."` escape syntax.
fn fmt_bytes_debug(data: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in data {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\n' => write!(f, "\\n")?,
            b'\r' => write!(f, "\\r")?,
            b'\t' => write!(f, "\\t")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_without_copying() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        drop(b);
        assert_eq!(&s[..], &[2, 3, 4]); // still alive via refcount
    }

    #[test]
    fn bytes_static_and_empty() {
        let e = Bytes::new();
        assert!(e.is_empty());
        let s = Bytes::from_static(b"hello");
        assert_eq!(s, b"hello"[..]);
        assert_eq!(s.slice(1..3), b"el"[..]);
    }

    #[test]
    fn bytesmut_roundtrip_and_freeze() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u16(0xABCD);
        m.put_u8(0x01);
        m.put_slice(b"xyz");
        assert_eq!(m.len(), 6);
        m[0..2].copy_from_slice(&[0x11, 0x22]);
        let b = m.freeze();
        assert_eq!(&b[..], &[0x11, 0x22, 0x01, b'x', b'y', b'z']);
    }

    #[test]
    fn split_to_then_reserve_reclaims_when_unique() {
        let mut m = BytesMut::with_capacity(64);
        let cap = m.capacity();
        m.put_slice(b"frame-one");
        let f1 = m.split_to(9).freeze();
        assert_eq!(f1, b"frame-one"[..]);
        assert_eq!(m.len(), 0);
        m.put_slice(b"frame-two");
        let f2 = m.split().freeze();
        // Views pin the buffer: reserve must not reclaim yet.
        drop(f1);
        drop(f2);
        // All views gone: the same allocation is reclaimed in full.
        m.reserve(cap);
        assert_eq!(m.capacity(), cap);
    }

    #[test]
    fn reserve_copies_when_shared() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"keep");
        let pinned = m.split_to(2).freeze();
        m.reserve(64); // pinned view forces a fresh buffer
        m.put_slice(&[0u8; 60]);
        assert_eq!(pinned, b"ke"[..]);
        assert_eq!(&m[..2], b"ep");
    }

    #[test]
    fn buf_reads_advance() {
        let mut b = Bytes::from(vec![0, 1, 0xAB, 0xCD, 1, 2, 3, 4, 9]);
        assert_eq!(b.get_u16(), 1);
        assert_eq!(b.get_u16(), 0xABCD);
        assert_eq!(b.get_u32(), 0x01020304);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.get_u8(), 9);
        assert!(!b.has_remaining());
    }

    #[test]
    fn resize_truncate_clear() {
        let mut m = BytesMut::new();
        m.resize(4, 0xFF);
        assert_eq!(&m[..], &[0xFF; 4]);
        m.truncate(2);
        assert_eq!(m.len(), 2);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn equality_family() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        assert_eq!(b, Bytes::from_static(&[1, 2, 3]));
        let m = {
            let mut m = BytesMut::new();
            m.extend_from_slice(&[1, 2, 3]);
            m
        };
        assert_eq!(m, b.as_ref()[..]);
    }

    #[test]
    fn freeze_does_not_allocate() {
        // freeze/clone/slice must stay allocation-free: verified
        // indirectly here by checking pointer identity through the chain.
        let mut m = BytesMut::with_capacity(32);
        m.put_slice(b"abcdef");
        let p = m.as_ref().as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_ref().as_ptr(), p);
        let c = b.clone();
        assert_eq!(c.as_ref().as_ptr(), p);
        let s = b.slice(2..4);
        assert_eq!(s.as_ref().as_ptr(), unsafe { p.add(2) });
    }

    #[test]
    fn send_across_threads() {
        let b = Bytes::from(vec![7u8; 1024]);
        let c = b.clone();
        let t = std::thread::spawn(move || c.len());
        assert_eq!(t.join().unwrap(), 1024);
        assert_eq!(b[0], 7);
    }
}
