//! The Echo server: reflect every byte ("similar to telnet", §6).

use crate::api::{Api, Application};

/// Echoes everything it receives. Backpressure-safe: bytes the send
/// buffer rejects are held and retried on `on_writable`.
#[derive(Debug, Default, Clone)]
pub struct EchoServer {
    pending: Vec<u8>,
    /// Total bytes echoed (diagnostics).
    pub echoed: u64,
}

impl EchoServer {
    /// Creates an echo server.
    pub fn new() -> Self {
        Self::default()
    }

    fn flush(&mut self, api: &mut dyn Api) {
        if self.pending.is_empty() {
            return;
        }
        let n = api.write(&self.pending);
        self.pending.drain(..n);
        self.echoed += n as u64;
    }
}

impl Application for EchoServer {
    fn on_data(&mut self, data: &[u8], api: &mut dyn Api) {
        self.pending.extend_from_slice(data);
        self.flush(api);
    }

    fn on_writable(&mut self, api: &mut dyn Api) {
        self.flush(api);
    }

    fn on_peer_closed(&mut self, api: &mut dyn Api) {
        self.flush(api);
        api.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockApi;

    #[test]
    fn echoes_immediately_when_space_allows() {
        let mut app = EchoServer::new();
        let mut api = MockApi::with_budget(1024);
        app.on_data(b"hello", &mut api);
        assert_eq!(api.written, b"hello");
        assert_eq!(app.echoed, 5);
    }

    #[test]
    fn backpressure_holds_bytes_until_writable() {
        let mut app = EchoServer::new();
        let mut api = MockApi::with_budget(3);
        app.on_data(b"hello", &mut api);
        assert_eq!(api.written, b"hel");
        api.budget = 100;
        app.on_writable(&mut api);
        assert_eq!(api.written, b"hello");
        assert_eq!(app.echoed, 5);
    }

    #[test]
    fn closes_after_peer() {
        let mut app = EchoServer::new();
        let mut api = MockApi::with_budget(100);
        app.on_data(b"bye", &mut api);
        app.on_peer_closed(&mut api);
        assert!(api.closed);
    }

    #[test]
    fn determinism_two_instances_same_stream() {
        // The property ST-TCP relies on: same input stream -> same output.
        let mut a = EchoServer::new();
        let mut b = EchoServer::new();
        let mut api_a = MockApi::with_budget(10_000);
        let mut api_b = MockApi::with_budget(10_000);
        for chunk in [b"abc".as_slice(), b"defgh", b"i"] {
            a.on_data(chunk, &mut api_a);
            b.on_data(chunk, &mut api_b);
        }
        assert_eq!(api_a.written, api_b.written);
    }
}
