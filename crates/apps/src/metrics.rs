//! Run metrics captured by the workload client.

use netsim::{SimDuration, SimTime};

/// What one workload run measured — the numbers behind Tables 1–2 and
/// Figures 5–6 of the paper.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// When the first request was issued.
    pub started: Option<SimTime>,
    /// When the final response byte arrived.
    pub finished: Option<SimTime>,
    /// Per-request completion latency, in order.
    pub latencies: Vec<SimDuration>,
    /// Total response bytes received.
    pub bytes_received: u64,
    /// Response bytes that failed content verification (any nonzero
    /// value means the byte stream was corrupted, duplicated, or
    /// spliced — e.g. by a broken failover).
    pub content_errors: u64,
    /// Stream position of the first content error.
    pub first_error_pos: Option<u64>,
}

impl RunMetrics {
    /// Total run time ("Average Total Time" of Table 1), if finished.
    pub fn total_time(&self) -> Option<SimDuration> {
        Some(self.finished?.duration_since(self.started?))
    }

    /// The largest single-request latency — during a failover run this
    /// is the request that straddled the crash.
    pub fn max_latency(&self) -> Option<SimDuration> {
        self.latencies.iter().copied().max()
    }

    /// Mean request latency.
    pub fn mean_latency(&self) -> Option<SimDuration> {
        if self.latencies.is_empty() {
            return None;
        }
        let total: u64 = self.latencies.iter().map(|d| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / self.latencies.len() as u64))
    }

    /// True when the byte stream verified clean end to end.
    pub fn verified_clean(&self) -> bool {
        self.content_errors == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let mut m = RunMetrics::default();
        assert_eq!(m.total_time(), None);
        assert_eq!(m.mean_latency(), None);
        m.started = Some(SimTime::from_nanos(1_000));
        m.finished = Some(SimTime::from_nanos(11_000));
        m.latencies = vec![
            SimDuration::from_nanos(2_000),
            SimDuration::from_nanos(4_000),
            SimDuration::from_nanos(3_000),
        ];
        assert_eq!(m.total_time(), Some(SimDuration::from_nanos(10_000)));
        assert_eq!(m.max_latency(), Some(SimDuration::from_nanos(4_000)));
        assert_eq!(m.mean_latency(), Some(SimDuration::from_nanos(3_000)));
        assert!(m.verified_clean());
        m.content_errors = 1;
        assert!(!m.verified_clean());
    }
}
