//! The Interactive server: small request → moderate reply ("similar to
//! http", §6): 150-byte request, 10 KB response.

use crate::api::{Api, Application};
use crate::pattern::fill_pattern;
use crate::{INTERACTIVE_REPLY, REQUEST_SIZE};
use netsim::SimDuration;

/// Responds to each fixed-size request with a deterministic,
/// pattern-filled reply.
///
/// The reply to request *k* is the pattern slice
/// `[k * reply_size, (k+1) * reply_size)`, so two instances fed the same
/// request stream emit identical bytes — the §3 determinism assumption.
#[derive(Debug, Clone)]
pub struct InteractiveServer {
    request_size: usize,
    reply_size: usize,
    buffered: usize,
    requests_seen: u64,
    pending: Vec<u8>,
    /// Server compute ("think") time per request; replies are generated
    /// this long after the request completes, serialized one at a time —
    /// models the application work the paper's prototype performed.
    think: SimDuration,
    /// Requests whose reply generation is waiting on think time.
    queued_requests: u64,
    wake_armed: bool,
    /// Replies fully queued so far.
    pub replies: u64,
}

impl InteractiveServer {
    /// Paper defaults: 150-byte requests, 10 KB replies.
    pub fn new() -> Self {
        Self::with_sizes(REQUEST_SIZE, INTERACTIVE_REPLY)
    }

    /// Custom request/reply sizes.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn with_sizes(request_size: usize, reply_size: usize) -> Self {
        assert!(request_size > 0 && reply_size > 0, "sizes must be positive");
        InteractiveServer {
            request_size,
            reply_size,
            buffered: 0,
            requests_seen: 0,
            pending: Vec::new(),
            think: SimDuration::ZERO,
            queued_requests: 0,
            wake_armed: false,
            replies: 0,
        }
    }

    /// Adds per-request server compute time (builder style).
    #[must_use]
    pub fn with_think_time(mut self, think: SimDuration) -> Self {
        self.think = think;
        self
    }

    fn generate_reply(&mut self) {
        let k = self.requests_seen;
        self.requests_seen += 1;
        let start = self.pending.len();
        self.pending.resize(start + self.reply_size, 0);
        fill_pattern(k * self.reply_size as u64, &mut self.pending[start..]);
        self.replies += 1;
    }

    fn flush(&mut self, api: &mut dyn Api) {
        if self.pending.is_empty() {
            return;
        }
        let n = api.write(&self.pending);
        self.pending.drain(..n);
    }
}

impl Default for InteractiveServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for InteractiveServer {
    fn on_data(&mut self, data: &[u8], api: &mut dyn Api) {
        self.buffered += data.len();
        while self.buffered >= self.request_size {
            self.buffered -= self.request_size;
            if self.think.is_zero() {
                self.generate_reply();
            } else {
                self.queued_requests += 1;
            }
        }
        if self.queued_requests > 0 && !self.wake_armed {
            api.wake_after(self.think);
            self.wake_armed = true;
        }
        self.flush(api);
    }

    fn on_wake(&mut self, api: &mut dyn Api) {
        self.wake_armed = false;
        if self.queued_requests == 0 {
            return; // spurious wake: harmless by design
        }
        self.queued_requests -= 1;
        self.generate_reply();
        if self.queued_requests > 0 {
            api.wake_after(self.think);
            self.wake_armed = true;
        }
        self.flush(api);
    }

    fn on_writable(&mut self, api: &mut dyn Api) {
        self.flush(api);
    }

    fn on_peer_closed(&mut self, api: &mut dyn Api) {
        self.flush(api);
        api.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockApi;
    use crate::pattern::verify_pattern;

    #[test]
    fn full_request_triggers_patterned_reply() {
        let mut app = InteractiveServer::with_sizes(4, 16);
        let mut api = MockApi::with_budget(1024);
        app.on_data(b"req!", &mut api);
        assert_eq!(api.written.len(), 16);
        assert_eq!(verify_pattern(0, &api.written), None);
        assert_eq!(app.replies, 1);
    }

    #[test]
    fn partial_requests_accumulate() {
        let mut app = InteractiveServer::with_sizes(4, 8);
        let mut api = MockApi::with_budget(1024);
        app.on_data(b"re", &mut api);
        assert!(api.written.is_empty());
        app.on_data(b"q!", &mut api);
        assert_eq!(api.written.len(), 8);
    }

    #[test]
    fn replies_are_position_indexed() {
        let mut app = InteractiveServer::with_sizes(2, 8);
        let mut api = MockApi::with_budget(1024);
        app.on_data(b"aabb", &mut api); // two requests at once
        assert_eq!(api.written.len(), 16);
        assert_eq!(verify_pattern(0, &api.written[..8]), None);
        assert_eq!(verify_pattern(8, &api.written[8..]), None);
    }

    #[test]
    fn backpressure_resumes_on_writable() {
        let mut app = InteractiveServer::with_sizes(2, 100);
        let mut api = MockApi::with_budget(30);
        app.on_data(b"xx", &mut api);
        assert_eq!(api.written.len(), 30);
        api.budget = 1000;
        app.on_writable(&mut api);
        assert_eq!(api.written.len(), 100);
        assert_eq!(verify_pattern(0, &api.written), None);
    }

    #[test]
    fn determinism_across_instances() {
        let chunks: Vec<&[u8]> = vec![b"abcd", b"efghijkl", b"mnop"];
        let run = || {
            let mut app = InteractiveServer::with_sizes(4, 32);
            let mut api = MockApi::with_budget(100_000);
            for c in &chunks {
                app.on_data(c, &mut api);
            }
            api.written
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn zero_sizes_rejected() {
        let _ = InteractiveServer::with_sizes(0, 1);
    }
}
