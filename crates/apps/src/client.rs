//! The workload driver: the client side of the paper's experiments.
//!
//! "The client waits to receive the echo response before issuing another
//! request" (§6) — all three workloads are strictly request/response, so
//! the driver issues request *k+1* only after response *k* has fully
//! arrived and verified.

use crate::api::{Api, Application};
use crate::metrics::RunMetrics;
use crate::pattern::{fill_pattern, pattern_byte, request_bytes};
use crate::upload::UploadServer;
use crate::{INTERACTIVE_REPLY, REQUEST_SIZE};
use netsim::SimTime;

/// Which of the paper's three applications to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 150 B ↔ 150 B, `requests` exchanges.
    Echo {
        /// Number of exchanges (paper: 100).
        requests: usize,
    },
    /// 150 B → `reply_size`, `requests` exchanges.
    Interactive {
        /// Number of exchanges (paper: 100).
        requests: usize,
        /// Reply size (paper: 10 KB).
        reply_size: usize,
    },
    /// One 150 B request → `file_size` bytes.
    Bulk {
        /// Transfer size (paper: 1, 5, 20, 100 MB).
        file_size: u64,
    },
    /// `file_size` bytes client→server → one 150 B confirmation.
    /// Beyond the paper's workloads: the direction that loads the
    /// primary's retention buffer and the backup ack strategy.
    Upload {
        /// Upload size.
        file_size: u64,
    },
}

impl Workload {
    /// Paper-default Echo: 100 exchanges.
    pub fn echo() -> Self {
        Workload::Echo { requests: 100 }
    }

    /// Paper-default Interactive: 100 × 10 KB.
    pub fn interactive() -> Self {
        Workload::Interactive { requests: 100, reply_size: INTERACTIVE_REPLY }
    }

    /// Bulk of `mb` megabytes.
    pub fn bulk_mb(mb: u64) -> Self {
        Workload::Bulk { file_size: mb << 20 }
    }

    /// Upload of `mb` megabytes.
    pub fn upload_mb(mb: u64) -> Self {
        Workload::Upload { file_size: mb << 20 }
    }

    /// Total response bytes the workload expects to receive over a full
    /// clean run (the denominator for progress reporting).
    pub fn expected_total_bytes(&self) -> u64 {
        (0..self.total_requests() as u64).map(|k| self.reply_len(k)).sum()
    }

    /// Short stable name for reports ("echo", "bulk", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Echo { .. } => "echo",
            Workload::Interactive { .. } => "interactive",
            Workload::Bulk { .. } => "bulk",
            Workload::Upload { .. } => "upload",
        }
    }

    fn total_requests(&self) -> usize {
        match *self {
            Workload::Echo { requests } => requests,
            Workload::Interactive { requests, .. } => requests,
            Workload::Bulk { .. } | Workload::Upload { .. } => 1,
        }
    }

    fn reply_len(&self, _k: u64) -> u64 {
        match *self {
            Workload::Echo { .. } => REQUEST_SIZE as u64,
            Workload::Interactive { reply_size, .. } => reply_size as u64,
            Workload::Bulk { file_size } => file_size,
            Workload::Upload { .. } => REQUEST_SIZE as u64,
        }
    }

    /// Expected content byte at offset `off` of reply `k`.
    ///
    /// Per-byte reference semantics for [`Workload::verify_chunk`]; the
    /// equivalence test keeps the two in lockstep.
    #[cfg(test)]
    fn expected_byte(&self, k: u64, off: u64) -> u8 {
        match *self {
            // The echo reply is the request itself.
            Workload::Echo { .. } => {
                request_bytes(k, REQUEST_SIZE)[usize::try_from(off).expect("small")]
            }
            // Servers emit the absolute pattern stream.
            Workload::Interactive { reply_size, .. } => pattern_byte(k * reply_size as u64 + off),
            Workload::Bulk { .. } => pattern_byte(k * self.reply_len(k) + off),
            // The upload confirmation is a fixed deterministic message.
            Workload::Upload { .. } => {
                UploadServer::confirmation()[usize::try_from(off).expect("small")]
            }
        }
    }

    /// Verifies `data` against bytes `off..off + data.len()` of reply
    /// `k` in one pass. Returns the mismatch count and the offset
    /// *within `data`* of the first mismatch. The caller guarantees the
    /// range lies inside the reply; equivalent to checking
    /// `Workload::expected_byte` per position, but without the
    /// per-byte dispatch (and, for Echo, without re-deriving the whole
    /// request for every byte) — this runs over every delivered byte.
    fn verify_chunk(&self, k: u64, off: u64, data: &[u8]) -> (u64, Option<u64>) {
        match *self {
            Workload::Echo { .. } => {
                let req = request_bytes(k, REQUEST_SIZE);
                let at = usize::try_from(off).expect("small");
                count_mismatches_against(&req[at..at + data.len()], data)
            }
            Workload::Interactive { reply_size, .. } => {
                count_pattern_mismatches(k * reply_size as u64 + off, data)
            }
            Workload::Bulk { .. } => count_pattern_mismatches(k * self.reply_len(k) + off, data),
            Workload::Upload { .. } => {
                let conf = UploadServer::confirmation();
                let at = usize::try_from(off).expect("small");
                count_mismatches_against(&conf[at..at + data.len()], data)
            }
        }
    }
}

/// Counts bytes of `data` differing from the pattern stream at `start`;
/// also reports the index of the first difference.
fn count_pattern_mismatches(start: u64, data: &[u8]) -> (u64, Option<u64>) {
    let mut errors = 0u64;
    let mut first = None;
    for (i, &b) in data.iter().enumerate() {
        if b != pattern_byte(start.wrapping_add(i as u64)) {
            errors += 1;
            if first.is_none() {
                first = Some(i as u64);
            }
        }
    }
    (errors, first)
}

/// Counts positions where `data` differs from `expected` (equal lengths).
fn count_mismatches_against(expected: &[u8], data: &[u8]) -> (u64, Option<u64>) {
    debug_assert_eq!(expected.len(), data.len());
    if expected == data {
        return (0, None);
    }
    let mut errors = 0u64;
    let mut first = None;
    for (i, (&want, &got)) in expected.iter().zip(data).enumerate() {
        if want != got {
            errors += 1;
            if first.is_none() {
                first = Some(i as u64);
            }
        }
    }
    (errors, first)
}

/// The request/response driver with content verification and metrics.
#[derive(Debug, Clone)]
pub struct WorkloadClient {
    workload: Workload,
    close_when_done: bool,
    requests_sent: u64,
    reply_off: u64,
    request_issued_at: Option<SimTime>,
    done: bool,
    /// Upload workload: absolute stream position already written.
    upload_sent: u64,
    /// Measurements for the run.
    pub metrics: RunMetrics,
}

impl WorkloadClient {
    /// Creates a driver for `workload`.
    pub fn new(workload: Workload) -> Self {
        WorkloadClient {
            workload,
            close_when_done: false,
            requests_sent: 0,
            reply_off: 0,
            request_issued_at: None,
            done: false,
            upload_sent: 0,
            metrics: RunMetrics::default(),
        }
    }

    /// Ask the driver to close the connection after the last response.
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close_when_done = true;
        self
    }

    /// True when every response has fully arrived.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The configured workload.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Progress as `(received, expected)` response bytes — lets a
    /// harness distinguish a run that wedged mid-stream from one that
    /// never got going.
    pub fn progress(&self) -> (u64, u64) {
        (self.metrics.bytes_received, self.workload.expected_total_bytes())
    }

    fn send_next_request(&mut self, api: &mut dyn Api) {
        if let Workload::Upload { .. } = self.workload {
            self.requests_sent = 1;
            self.reply_off = 0;
            self.request_issued_at = Some(api.now());
            self.pump_upload(api);
            return;
        }
        let k = self.requests_sent;
        let req = request_bytes(k, REQUEST_SIZE);
        let n = api.write(&req);
        debug_assert_eq!(n, req.len(), "request must fit the send buffer");
        self.requests_sent += 1;
        self.reply_off = 0;
        self.request_issued_at = Some(api.now());
    }

    /// Streams the upload lazily as send-buffer space frees.
    fn pump_upload(&mut self, api: &mut dyn Api) {
        let Workload::Upload { file_size } = self.workload else {
            return;
        };
        let mut chunk = [0u8; 8 * 1024];
        while self.upload_sent < file_size {
            let want = usize::try_from((file_size - self.upload_sent).min(chunk.len() as u64))
                .expect("fits");
            fill_pattern(self.upload_sent, &mut chunk[..want]);
            let n = api.write(&chunk[..want]);
            self.upload_sent += n as u64;
            if n < want {
                break;
            }
        }
    }
}

impl Application for WorkloadClient {
    fn on_connected(&mut self, api: &mut dyn Api) {
        if self.metrics.started.is_none() {
            self.metrics.started = Some(api.now());
            self.send_next_request(api);
        }
    }

    fn on_writable(&mut self, api: &mut dyn Api) {
        if !self.done && self.requests_sent > 0 {
            self.pump_upload(api);
        }
    }

    fn on_data(&mut self, data: &[u8], api: &mut dyn Api) {
        if self.done {
            return;
        }
        let k = self.requests_sent.saturating_sub(1);
        let expected_len = self.workload.reply_len(k);
        // Verify against the deterministic stream, chunk-at-a-time: the
        // prefix inside the reply is checked for content, any excess
        // beyond the reply's length is all errors.
        let in_reply =
            usize::try_from(expected_len.saturating_sub(self.reply_off).min(data.len() as u64))
                .expect("bounded by data.len()");
        let (expected, excess) = data.split_at(in_reply);
        if !expected.is_empty() {
            let (errors, first) = self.workload.verify_chunk(k, self.reply_off, expected);
            if errors > 0 {
                self.metrics.content_errors += errors;
                if self.metrics.first_error_pos.is_none() {
                    let first = first.expect("errors > 0 implies a first mismatch");
                    self.metrics.first_error_pos = Some(self.metrics.bytes_received + first);
                }
            }
        }
        if !excess.is_empty() {
            // More bytes than the response should have.
            self.metrics.content_errors += excess.len() as u64;
            if self.metrics.first_error_pos.is_none() {
                self.metrics.first_error_pos =
                    Some(self.metrics.bytes_received + expected.len() as u64);
            }
        }
        self.metrics.bytes_received += data.len() as u64;
        self.reply_off += data.len() as u64;
        if self.reply_off >= expected_len {
            let issued = self.request_issued_at.take().expect("request outstanding");
            self.metrics.latencies.push(api.now().duration_since(issued));
            if self.requests_sent >= self.workload.total_requests() as u64 {
                self.done = true;
                self.metrics.finished = Some(api.now());
                if self.close_when_done {
                    api.close();
                }
            } else {
                self.send_next_request(api);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockApi;
    use crate::bulk::BulkServer;
    use crate::echo::EchoServer;
    use crate::interactive::InteractiveServer;
    use netsim::SimDuration;

    /// Runs client and server apps against each other through two mock
    /// APIs, shuttling written bytes both ways.
    fn drive(client: &mut WorkloadClient, server: &mut dyn Application, steps: usize) {
        let mut capi = MockApi::with_budget(usize::MAX / 2);
        let mut sapi = MockApi::with_budget(usize::MAX / 2);
        client.on_connected(&mut capi);
        for step in 0..steps {
            capi.time = SimTime::ZERO + SimDuration::from_millis(step as u64);
            sapi.time = capi.time;
            let to_server = std::mem::take(&mut capi.written);
            if !to_server.is_empty() {
                server.on_data(&to_server, &mut sapi);
            }
            let to_client = std::mem::take(&mut sapi.written);
            if !to_client.is_empty() {
                client.on_data(&to_client, &mut capi);
            }
            if client.is_done() {
                return;
            }
        }
    }

    #[test]
    fn echo_run_completes_clean() {
        let mut client = WorkloadClient::new(Workload::Echo { requests: 10 });
        let mut server = EchoServer::new();
        drive(&mut client, &mut server, 100);
        assert!(client.is_done());
        assert!(client.metrics.verified_clean(), "echoed bytes must verify");
        assert_eq!(client.metrics.latencies.len(), 10);
        assert_eq!(client.metrics.bytes_received, 10 * REQUEST_SIZE as u64);
    }

    #[test]
    fn interactive_run_completes_clean() {
        let mut client =
            WorkloadClient::new(Workload::Interactive { requests: 5, reply_size: 4096 });
        let mut server = InteractiveServer::with_sizes(REQUEST_SIZE, 4096);
        drive(&mut client, &mut server, 100);
        assert!(client.is_done());
        assert!(client.metrics.verified_clean());
        assert_eq!(client.metrics.bytes_received, 5 * 4096);
    }

    #[test]
    fn bulk_run_completes_clean() {
        let mut client = WorkloadClient::new(Workload::Bulk { file_size: 100_000 });
        let mut server = BulkServer::new(100_000);
        drive(&mut client, &mut server, 100);
        assert!(client.is_done());
        assert!(client.metrics.verified_clean());
        assert_eq!(client.metrics.bytes_received, 100_000);
        assert_eq!(client.metrics.latencies.len(), 1);
    }

    #[test]
    fn corruption_is_detected() {
        let mut client = WorkloadClient::new(Workload::Echo { requests: 1 });
        let mut api = MockApi::with_budget(10_000);
        client.on_connected(&mut api);
        let mut reply = std::mem::take(&mut api.written);
        reply[10] ^= 0x01;
        client.on_data(&reply, &mut api);
        assert!(client.is_done());
        assert_eq!(client.metrics.content_errors, 1);
        assert_eq!(client.metrics.first_error_pos, Some(10));
    }

    #[test]
    fn duplicate_bytes_are_detected() {
        let mut client = WorkloadClient::new(Workload::Echo { requests: 1 });
        let mut api = MockApi::with_budget(10_000);
        client.on_connected(&mut api);
        let reply = std::mem::take(&mut api.written);
        client.on_data(&reply, &mut api);
        assert!(client.is_done());
        // A stray duplicate tail after completion is flagged.
        client.on_data(b"extra", &mut api);
        // on_data ignores input after done; metrics stay clean but the
        // stream already completed — duplicates *within* a response are
        // covered by corruption_is_detected-style offsets.
        assert!(client.metrics.verified_clean());
    }

    #[test]
    fn chunk_verification_matches_per_byte_reference() {
        // `verify_chunk` is the hot-path implementation; `expected_byte`
        // is the per-byte reference it must agree with, for every
        // workload, offset, and corruption position.
        let workloads = [
            Workload::Echo { requests: 3 },
            Workload::Interactive { requests: 3, reply_size: 64 },
            Workload::Bulk { file_size: 96 },
            Workload::Upload { file_size: 96 },
        ];
        for w in workloads {
            for k in 0..2u64 {
                let len = usize::try_from(w.reply_len(k)).unwrap().min(96);
                let mut reply: Vec<u8> =
                    (0..len as u64).map(|off| w.expected_byte(k, off)).collect();
                for off in [0usize, 1, len / 2] {
                    let chunk = &reply[off..];
                    assert_eq!(
                        w.verify_chunk(k, off as u64, chunk),
                        (0, None),
                        "clean chunk must verify ({w:?}, k={k}, off={off})"
                    );
                }
                reply[len / 3] ^= 0xFF;
                reply[len - 1] ^= 0x01;
                let (errors, first) = w.verify_chunk(k, 0, &reply);
                assert_eq!(errors, 2, "both corrupted bytes counted ({w:?}, k={k})");
                assert_eq!(first, Some(len as u64 / 3), "first mismatch located ({w:?}, k={k})");
            }
        }
    }

    #[test]
    fn closing_variant_closes() {
        let mut client = WorkloadClient::new(Workload::Echo { requests: 1 }).closing();
        let mut api = MockApi::with_budget(10_000);
        client.on_connected(&mut api);
        let reply = std::mem::take(&mut api.written);
        client.on_data(&reply, &mut api);
        assert!(api.closed);
    }

    #[test]
    fn latencies_measure_virtual_time() {
        let mut client = WorkloadClient::new(Workload::Echo { requests: 2 });
        let mut api = MockApi::with_budget(10_000);
        client.on_connected(&mut api);
        let r1 = std::mem::take(&mut api.written);
        api.time = SimTime::ZERO + SimDuration::from_millis(7);
        client.on_data(&r1, &mut api);
        let r2 = std::mem::take(&mut api.written);
        api.time = SimTime::ZERO + SimDuration::from_millis(20);
        client.on_data(&r2, &mut api);
        assert_eq!(
            client.metrics.latencies,
            vec![SimDuration::from_millis(7), SimDuration::from_millis(13)]
        );
        assert_eq!(client.metrics.total_time(), Some(SimDuration::from_millis(20)));
    }
}
