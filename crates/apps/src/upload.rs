//! The Upload server: large client→server transfer (beyond the paper's
//! three workloads, which all push data *from* the server).
//!
//! Upload is the direction that exercises ST-TCP's §4.2–§4.3 machinery
//! hardest: every client byte must be retained by the primary until the
//! backup acknowledges it, so the second receive buffer, the ack
//! strategy (X / SyncTime), and the missing-segment recovery all carry
//! real volume. The server verifies the received pattern byte-by-byte —
//! on a failover, the *backup's* application must have consumed exactly
//! the same stream for its confirmation to be correct.

use crate::api::{Api, Application};
use crate::pattern::{pattern_byte, request_bytes};
use crate::REQUEST_SIZE;

/// Consumes a patterned upload of known size and answers with a
/// 150-byte confirmation once every byte has arrived and verified.
#[derive(Debug, Clone)]
pub struct UploadServer {
    expected: u64,
    received: u64,
    /// Pattern mismatches observed in the upload stream (a nonzero
    /// value on either the primary or the backup means the byte stream
    /// diverged — duplicated, reordered, or corrupted).
    pub content_errors: u64,
    confirmation_sent: bool,
    pending: Vec<u8>,
}

impl UploadServer {
    /// Expects `expected` bytes of [`crate::pattern`] stream.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero.
    pub fn new(expected: u64) -> Self {
        assert!(expected > 0, "upload size must be positive");
        UploadServer {
            expected,
            received: 0,
            content_errors: 0,
            confirmation_sent: false,
            pending: Vec::new(),
        }
    }

    /// Bytes received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// The deterministic confirmation message.
    pub fn confirmation() -> Vec<u8> {
        request_bytes(u64::MAX / 3, REQUEST_SIZE)
    }

    fn flush(&mut self, api: &mut dyn Api) {
        if self.pending.is_empty() {
            return;
        }
        let n = api.write(&self.pending);
        self.pending.drain(..n);
    }
}

impl Application for UploadServer {
    fn on_data(&mut self, data: &[u8], api: &mut dyn Api) {
        for &b in data {
            if self.received < self.expected && b != pattern_byte(self.received) {
                self.content_errors += 1;
            }
            self.received += 1;
        }
        if self.received >= self.expected && !self.confirmation_sent {
            self.confirmation_sent = true;
            self.pending = Self::confirmation();
        }
        self.flush(api);
    }

    fn on_writable(&mut self, api: &mut dyn Api) {
        self.flush(api);
    }

    fn on_peer_closed(&mut self, api: &mut dyn Api) {
        self.flush(api);
        api.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockApi;
    use crate::pattern::fill_pattern;

    #[test]
    fn confirms_after_full_verified_upload() {
        let mut app = UploadServer::new(1000);
        let mut api = MockApi::with_budget(10_000);
        let mut data = vec![0u8; 1000];
        fill_pattern(0, &mut data);
        app.on_data(&data[..400], &mut api);
        assert!(api.written.is_empty(), "no confirmation before completion");
        app.on_data(&data[400..], &mut api);
        assert_eq!(api.written, UploadServer::confirmation());
        assert_eq!(app.content_errors, 0);
        assert_eq!(app.received(), 1000);
    }

    #[test]
    fn detects_corrupted_upload() {
        let mut app = UploadServer::new(100);
        let mut api = MockApi::with_budget(10_000);
        let mut data = vec![0u8; 100];
        fill_pattern(0, &mut data);
        data[50] ^= 0xFF;
        app.on_data(&data, &mut api);
        assert_eq!(app.content_errors, 1);
    }

    #[test]
    fn confirmation_respects_backpressure() {
        let mut app = UploadServer::new(10);
        let mut api = MockApi::with_budget(20);
        let mut data = vec![0u8; 10];
        fill_pattern(0, &mut data);
        app.on_data(&data, &mut api);
        assert_eq!(api.written.len(), 20);
        api.budget = 1000;
        app.on_writable(&mut api);
        assert_eq!(api.written, UploadServer::confirmation());
    }

    #[test]
    fn determinism_across_instances() {
        let run = || {
            let mut app = UploadServer::new(64);
            let mut api = MockApi::with_budget(10_000);
            let mut data = vec![0u8; 64];
            fill_pattern(0, &mut data);
            for chunk in data.chunks(7) {
                app.on_data(chunk, &mut api);
            }
            api.written
        };
        assert_eq!(run(), run());
    }
}
