//! Deterministic, position-indexed byte patterns.
//!
//! Every server response byte is a pure function of its position in the
//! response stream, which lets the client assert *content* correctness —
//! catching duplicated, reordered, or lost bytes across a failover, not
//! merely counting them.

/// The byte at position `pos` of a deterministic stream.
///
/// A cheap non-repeating-ish mix; consecutive runs differ from simple
/// counters so off-by-one splices are detected.
///
/// ```
/// use apps::pattern::{fill_pattern, verify_pattern};
///
/// let mut buf = [0u8; 32];
/// fill_pattern(1_000, &mut buf);
/// assert_eq!(verify_pattern(1_000, &buf), None);
/// buf[7] ^= 1;
/// assert_eq!(verify_pattern(1_000, &buf), Some(1_007));
/// ```
pub fn pattern_byte(pos: u64) -> u8 {
    let x = pos.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ pos;
    (x >> 8) as u8
}

/// Fills `buf` with the pattern starting at stream position `start`.
pub fn fill_pattern(start: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = pattern_byte(start.wrapping_add(i as u64));
    }
}

/// Verifies that `data` equals the pattern starting at `start`.
/// Returns the position of the first mismatch, if any.
pub fn verify_pattern(start: u64, data: &[u8]) -> Option<u64> {
    for (i, &b) in data.iter().enumerate() {
        if b != pattern_byte(start.wrapping_add(i as u64)) {
            return Some(start.wrapping_add(i as u64));
        }
    }
    None
}

/// The content of request number `idx` (requests are also patterned so
/// the echo server's reflection can be verified byte-for-byte).
pub fn request_bytes(idx: u64, size: usize) -> Vec<u8> {
    let mut buf = vec![0u8; size];
    // Requests draw from a disjoint region of the pattern space;
    // positions wrap (the pattern is defined on all of u64).
    fill_pattern((u64::MAX / 2).wrapping_add(idx.wrapping_mul(size as u64)), &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(pattern_byte(12345), pattern_byte(12345));
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        fill_pattern(1000, &mut a);
        fill_pattern(1000, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn verify_accepts_and_locates_mismatch() {
        let mut buf = [0u8; 128];
        fill_pattern(500, &mut buf);
        assert_eq!(verify_pattern(500, &buf), None);
        buf[77] ^= 0xFF;
        assert_eq!(verify_pattern(500, &buf), Some(577));
    }

    #[test]
    fn splices_are_detected() {
        // A stream that skips one byte must fail verification.
        let mut good = [0u8; 32];
        fill_pattern(0, &mut good);
        let mut spliced = Vec::from(&good[..16]);
        spliced.extend_from_slice(&good[17..]); // dropped byte 16
        assert!(verify_pattern(0, &spliced).is_some());
        // A duplicated byte must fail too.
        let mut duped = Vec::from(&good[..16]);
        duped.push(good[15]);
        duped.extend_from_slice(&good[16..31]);
        assert!(verify_pattern(0, &duped).is_some());
    }

    #[test]
    fn requests_differ_by_index() {
        assert_ne!(request_bytes(0, 150), request_bytes(1, 150));
        assert_eq!(request_bytes(3, 150), request_bytes(3, 150));
        assert_eq!(request_bytes(0, 150).len(), 150);
    }

    #[test]
    fn distribution_is_not_constant() {
        let distinct: std::collections::HashSet<u8> = (0..1024).map(pattern_byte).collect();
        assert!(distinct.len() > 100, "pattern should cover many byte values");
    }
}
