//! The Bulk-transfer server: small request → large file ("similar to
//! ftp", §6). File sizes of 1, 5, 20 and 100 MB are used in the paper.

use crate::api::{Api, Application};
use crate::pattern::fill_pattern;
use crate::REQUEST_SIZE;

const CHUNK: usize = 8 * 1024;

/// Streams a deterministic `file_size`-byte "file" per request.
///
/// Bytes are generated lazily from the [`crate::pattern`] as the send
/// buffer accepts them, so a 100 MB transfer never materializes 100 MB.
#[derive(Debug, Clone)]
pub struct BulkServer {
    request_size: usize,
    file_size: u64,
    buffered: usize,
    /// Absolute output-stream position already handed to the stack.
    sent: u64,
    /// Absolute output-stream position the current response set ends at.
    goal: u64,
    /// Responses started.
    pub transfers: u64,
}

impl BulkServer {
    /// A bulk server sending `file_size` bytes per request (paper-style
    /// 150-byte requests).
    ///
    /// # Panics
    ///
    /// Panics if `file_size` is zero.
    pub fn new(file_size: u64) -> Self {
        Self::with_request_size(REQUEST_SIZE, file_size)
    }

    /// Custom request size.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn with_request_size(request_size: usize, file_size: u64) -> Self {
        assert!(request_size > 0 && file_size > 0, "sizes must be positive");
        BulkServer { request_size, file_size, buffered: 0, sent: 0, goal: 0, transfers: 0 }
    }

    /// Bytes of the current transfer still unqueued.
    pub fn remaining(&self) -> u64 {
        self.goal - self.sent
    }

    fn pump(&mut self, api: &mut dyn Api) {
        let mut chunk = [0u8; CHUNK];
        while self.sent < self.goal {
            let want = usize::try_from((self.goal - self.sent).min(CHUNK as u64)).expect("fits");
            fill_pattern(self.sent, &mut chunk[..want]);
            let n = api.write(&chunk[..want]);
            self.sent += n as u64;
            if n < want {
                break; // send buffer full; resume on_writable
            }
        }
    }
}

impl Application for BulkServer {
    fn on_data(&mut self, data: &[u8], api: &mut dyn Api) {
        self.buffered += data.len();
        while self.buffered >= self.request_size {
            self.buffered -= self.request_size;
            self.goal += self.file_size;
            self.transfers += 1;
        }
        self.pump(api);
    }

    fn on_writable(&mut self, api: &mut dyn Api) {
        self.pump(api);
    }

    fn on_peer_closed(&mut self, api: &mut dyn Api) {
        self.pump(api);
        api.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockApi;
    use crate::pattern::verify_pattern;

    #[test]
    fn streams_exactly_file_size() {
        let mut app = BulkServer::with_request_size(3, 1000);
        let mut api = MockApi::with_budget(1 << 20);
        app.on_data(b"go!", &mut api);
        assert_eq!(api.written.len(), 1000);
        assert_eq!(verify_pattern(0, &api.written), None);
        assert_eq!(app.remaining(), 0);
        assert_eq!(app.transfers, 1);
    }

    #[test]
    fn resumes_across_backpressure_without_duplication() {
        let mut app = BulkServer::with_request_size(1, 50_000);
        let mut api = MockApi::with_budget(777); // awkward boundary
        app.on_data(b"x", &mut api);
        let mut spins = 0;
        while app.remaining() > 0 {
            api.budget += 777;
            app.on_writable(&mut api);
            spins += 1;
            assert!(spins < 1000);
        }
        assert_eq!(api.written.len(), 50_000);
        assert_eq!(
            verify_pattern(0, &api.written),
            None,
            "chunk splicing across backpressure must be seamless"
        );
    }

    #[test]
    fn second_request_continues_the_stream() {
        let mut app = BulkServer::with_request_size(1, 100);
        let mut api = MockApi::with_budget(10_000);
        app.on_data(b"a", &mut api);
        app.on_data(b"b", &mut api);
        assert_eq!(api.written.len(), 200);
        // The second file continues the absolute pattern positions.
        assert_eq!(verify_pattern(0, &api.written), None);
        assert_eq!(app.transfers, 2);
    }

    #[test]
    fn large_transfer_is_memory_bounded() {
        // 100 MB goal, but we only pull 64 KB: the app must not allocate
        // the whole file.
        let mut app = BulkServer::new(100 << 20);
        let mut api = MockApi::with_budget(64 << 10);
        app.on_data(&[0u8; crate::REQUEST_SIZE], &mut api);
        assert_eq!(api.written.len(), 64 << 10);
        assert_eq!(app.remaining(), (100 << 20) - (64 << 10));
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn zero_file_rejected() {
        let _ = BulkServer::new(0);
    }
}
