//! The sans-io boundary between applications and the TCP stack.

use netsim::{SimDuration, SimTime};
use tcpstack::{NetStack, SockId};

/// What an application may do with its connection during a callback.
pub trait Api {
    /// Current virtual time.
    fn now(&self) -> SimTime;
    /// Queues bytes for transmission; returns how many were accepted
    /// (send-buffer space may be smaller than `data`).
    fn write(&mut self, data: &[u8]) -> usize;
    /// Free space in the send buffer.
    fn writable(&self) -> usize;
    /// Begins an orderly close of the connection.
    fn close(&mut self);
    /// Requests a [`Application::on_wake`] callback `after` from now
    /// (at most one outstanding per connection; a later request
    /// replaces an earlier one). Models compute/think time — the only
    /// legitimate use of time in a deterministic application.
    fn wake_after(&mut self, after: SimDuration);
}

/// A deterministic, sans-io application.
///
/// Instances run identically on the ST-TCP primary and backup: both see
/// the same byte stream (the backup via the tap), so both must produce
/// the same output for the takeover to be seamless. Keep implementations
/// free of hidden nondeterminism (no randomness, no real clocks) — the
/// paper's §3 determinism assumption.
///
/// The `Any` supertrait lets simulation nodes hand back concrete
/// application types after a run (e.g. to read a workload's metrics).
pub trait Application: std::any::Any {
    /// The connection is established (or the application was attached
    /// to an already-established connection).
    fn on_connected(&mut self, api: &mut dyn Api) {
        let _ = api;
    }
    /// Bytes arrived, in order, exactly once.
    fn on_data(&mut self, data: &[u8], api: &mut dyn Api);
    /// The send buffer has room again; push pending output.
    fn on_writable(&mut self, api: &mut dyn Api) {
        let _ = api;
    }
    /// The peer closed its direction of the stream.
    fn on_peer_closed(&mut self, api: &mut dyn Api) {
        let _ = api;
    }
    /// A wake requested via [`Api::wake_after`] fired.
    fn on_wake(&mut self, api: &mut dyn Api) {
        let _ = api;
    }
}

/// The real [`Api`] over a [`NetStack`] socket.
pub struct StackApi<'a> {
    stack: &'a mut NetStack,
    sock: SockId,
    now: SimTime,
    wake: Option<SimDuration>,
}

impl<'a> StackApi<'a> {
    /// Wraps one socket at one instant.
    pub fn new(stack: &'a mut NetStack, sock: SockId, now: SimTime) -> Self {
        StackApi { stack, sock, now, wake: None }
    }

    /// The wake request the application made during this callback, if
    /// any (the node adapter arms the timer).
    pub fn take_wake(&mut self) -> Option<SimDuration> {
        self.wake.take()
    }
}

impl Api for StackApi<'_> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn write(&mut self, data: &[u8]) -> usize {
        self.stack.write(self.sock, data).unwrap_or(0)
    }

    fn writable(&self) -> usize {
        self.stack.tcb(self.sock).map(|t| t.writable()).unwrap_or(0)
    }

    fn close(&mut self) {
        self.stack.close(self.now, self.sock);
    }

    fn wake_after(&mut self, after: SimDuration) {
        self.wake = Some(after);
    }
}

/// An in-memory [`Api`] for unit-testing applications.
#[derive(Debug, Default)]
pub struct MockApi {
    /// Everything the application wrote.
    pub written: Vec<u8>,
    /// Send-buffer space reported to the application.
    pub budget: usize,
    /// Whether the application closed the connection.
    pub closed: bool,
    /// The time reported to the application.
    pub time: SimTime,
    /// The most recent wake request.
    pub wake: Option<SimDuration>,
}

impl MockApi {
    /// A mock with `budget` bytes of send space.
    pub fn with_budget(budget: usize) -> Self {
        MockApi { budget, ..Self::default() }
    }
}

impl Api for MockApi {
    fn now(&self) -> SimTime {
        self.time
    }

    fn write(&mut self, data: &[u8]) -> usize {
        let n = data.len().min(self.budget);
        self.written.extend_from_slice(&data[..n]);
        self.budget -= n;
        n
    }

    fn writable(&self) -> usize {
        self.budget
    }

    fn close(&mut self) {
        self.closed = true;
    }

    fn wake_after(&mut self, after: SimDuration) {
        self.wake = Some(after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_api_budget_enforced() {
        let mut api = MockApi::with_budget(5);
        assert_eq!(api.write(b"abcdefgh"), 5);
        assert_eq!(api.written, b"abcde");
        assert_eq!(api.writable(), 0);
        assert_eq!(api.write(b"x"), 0);
        api.close();
        assert!(api.closed);
    }
}
