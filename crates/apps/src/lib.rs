//! The evaluation applications of the ST-TCP paper (§6).
//!
//! Three "simulations of applications representing different
//! communication characteristics":
//!
//! * **Echo** — 150-byte request, identical 150-byte response, 100
//!   exchanges; "similar to telnet";
//! * **Interactive** — 150-byte request, 10 KB response, 100 exchanges;
//!   "similar to http";
//! * **Bulk transfer** — 150-byte request, then 1/5/20/100 MB of data;
//!   "similar to ftp".
//!
//! Server applications here are **deterministic functions of the
//! received byte stream** — the paper's §3 assumption that lets an
//! active backup stay consistent by consuming the tapped stream. Every
//! response byte is drawn from a position-indexed [`pattern`], so the
//! client can verify *exactly-once, in-order* delivery across a
//! failover, not just byte counts.
//!
//! Applications are sans-io: they react to [`Application`] callbacks and
//! act through an [`Api`] handle, so the same instances run on the
//! primary, the backup (where their output is suppressed), and in unit
//! tests against a mock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bulk;
pub mod client;
pub mod echo;
pub mod interactive;
pub mod metrics;
pub mod pattern;
pub mod upload;

pub use api::{Api, Application, MockApi, StackApi};
pub use bulk::BulkServer;
pub use client::{Workload, WorkloadClient};
pub use echo::EchoServer;
pub use interactive::InteractiveServer;
pub use metrics::RunMetrics;
pub use upload::UploadServer;

/// Request size used by all three applications ("about 150 bytes").
pub const REQUEST_SIZE: usize = 150;

/// Interactive response size ("moderate size data (10 KB)").
pub const INTERACTIVE_REPLY: usize = 10 * 1024;

/// Exchanges per run for Echo and Interactive ("100 such message
/// exchanges").
pub const DEFAULT_REQUESTS: usize = 100;
