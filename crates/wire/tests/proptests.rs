//! Property-based round-trip and robustness tests for every wire format.

use bytes::Bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use wire::{
    ArpOp, ArpPacket, EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags,
    TcpOption, TcpSegment, UdpDatagram,
};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_payload(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags::from_bits)
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(TcpOption::Mss),
            (0u8..15).prop_map(TcpOption::WindowScale),
            (any::<u32>(), any::<u32>())
                .prop_map(|(tsval, tsecr)| TcpOption::Timestamps { tsval, tsecr }),
            Just(TcpOption::SackPermitted),
        ],
        0..4,
    )
}

proptest! {
    #[test]
    fn ethernet_roundtrip(dst in arb_mac(), src in arb_mac(), et in any::<u16>(), payload in arb_payload(2048)) {
        let f = EthernetFrame::new(dst, src, EtherType::from_u16(et), payload);
        let parsed = EthernetFrame::parse(f.encode()).unwrap();
        prop_assert_eq!(parsed, f);
    }

    #[test]
    fn arp_roundtrip(smac in arb_mac(), sip in arb_ip(), tmac in arb_mac(), tip in arb_ip(), is_req in any::<bool>()) {
        let p = ArpPacket {
            op: if is_req { ArpOp::Request } else { ArpOp::Reply },
            sender_mac: smac,
            sender_ip: sip,
            target_mac: tmac,
            target_ip: tip,
        };
        prop_assert_eq!(ArpPacket::parse(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_roundtrip(src in arb_ip(), dst in arb_ip(), proto in any::<u8>(), ttl in any::<u8>(), ident in any::<u16>(), payload in arb_payload(1600)) {
        let mut p = Ipv4Packet::new(src, dst, IpProtocol::from_u8(proto), payload);
        p.ttl = ttl;
        p.ident = ident;
        prop_assert_eq!(Ipv4Packet::parse(p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_single_byte_corruption_detected_in_header(
        src in arb_ip(), dst in arb_ip(), payload in arb_payload(64),
        pos in 0usize..20, flip in 1u8..=255,
    ) {
        let p = Ipv4Packet::new(src, dst, IpProtocol::Tcp, payload);
        let mut raw = p.encode().to_vec();
        raw[pos] ^= flip;
        // Any single-byte header corruption must be rejected (checksum,
        // version, length, or truncation error — never silent acceptance
        // of different header bytes).
        if let Ok(parsed) = Ipv4Packet::parse(Bytes::from(raw)) {
            // e.g. flip was undone by parse slack — must equal original
            prop_assert_eq!(parsed, p);
        }
    }

    #[test]
    fn udp_roundtrip(src in arb_ip(), dst in arb_ip(), sp in any::<u16>(), dp in any::<u16>(), payload in arb_payload(1400)) {
        let d = UdpDatagram::new(sp, dp, payload);
        prop_assert_eq!(UdpDatagram::parse(d.encode(src, dst), src, dst).unwrap(), d);
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_ip(), dst in arb_ip(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in arb_flags(), window in any::<u16>(),
        options in arb_options(), payload in arb_payload(1460),
    ) {
        let s = TcpSegment { src_port: sp, dst_port: dp, seq, ack, flags, window, options, payload };
        let parsed = TcpSegment::parse(s.encode(src, dst), src, dst).unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn tcp_corruption_never_accepted_as_different_segment(
        src in arb_ip(), dst in arb_ip(), payload in arb_payload(128),
        pos_frac in 0.0f64..1.0, flip in 1u8..=255,
    ) {
        let mut s = TcpSegment::bare(100, 200, 1, 2, TcpFlags::ACK, 512);
        s.payload = payload;
        let mut raw = s.encode(src, dst).to_vec();
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= flip;
        // The internet checksum catches all single-byte flips.
        prop_assert!(TcpSegment::parse(Bytes::from(raw), src, dst).is_err());
    }

    #[test]
    fn tcp_parse_never_panics_on_garbage(raw in arb_payload(200), src in arb_ip(), dst in arb_ip()) {
        let _ = TcpSegment::parse(raw, src, dst);
    }

    #[test]
    fn ipv4_parse_never_panics_on_garbage(raw in arb_payload(200)) {
        let _ = Ipv4Packet::parse(raw);
    }

    #[test]
    fn full_stack_composition_roundtrip(
        smac in arb_mac(), dmac in arb_mac(), sip in arb_ip(), dip in arb_ip(),
        payload in arb_payload(1200),
    ) {
        // TCP-in-IP-in-Ethernet, the composition every simulated frame uses.
        let mut seg = TcpSegment::bare(5000, 80, 42, 43, TcpFlags::ACK | TcpFlags::PSH, 8192);
        seg.payload = payload;
        let ip = Ipv4Packet::new(sip, dip, IpProtocol::Tcp, seg.encode(sip, dip));
        let eth = EthernetFrame::new(dmac, smac, EtherType::Ipv4, ip.encode());
        let eth2 = EthernetFrame::parse(eth.encode()).unwrap();
        let ip2 = Ipv4Packet::parse(eth2.payload.clone()).unwrap();
        let seg2 = TcpSegment::parse(ip2.payload.clone(), ip2.src, ip2.dst).unwrap();
        prop_assert_eq!(seg2, seg);
    }
}
