//! Errors produced when decoding on-wire bytes.

use std::error::Error;
use std::fmt;

/// An error encountered while parsing a frame, packet, or segment.
///
/// Parsers in this crate never panic on malformed input; they return one of
/// these variants instead, mirroring what real hardware/stacks do (drop the
/// packet, optionally count the reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseError {
    /// The buffer ended before the fixed-size portion of the header.
    Truncated {
        /// Minimum number of bytes the parser needed.
        needed: usize,
        /// Number of bytes actually available.
        got: usize,
    },
    /// A checksum (IPv4 header, TCP, or UDP) did not verify.
    BadChecksum {
        /// The checksum carried by the packet.
        found: u16,
        /// The checksum recomputed over the received bytes.
        expected: u16,
    },
    /// The IPv4 version field was not 4.
    BadVersion(u8),
    /// The IPv4 IHL field described a header shorter than 20 bytes or
    /// longer than the buffer.
    BadHeaderLength(usize),
    /// The IPv4 total-length field disagreed with the buffer length.
    BadTotalLength {
        /// Length claimed by the header.
        claimed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A TCP option had an invalid length byte (zero, one, or overrunning
    /// the option area).
    BadTcpOption(u8),
    /// The TCP data-offset field was below 5 or overran the segment.
    BadDataOffset(u8),
    /// An ARP packet carried hardware/protocol types other than
    /// Ethernet/IPv4.
    UnsupportedArp,
    /// An ARP opcode other than request (1) or reply (2).
    BadArpOp(u16),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            ParseError::BadChecksum { found, expected } => {
                write!(f, "bad checksum: found {found:#06x}, expected {expected:#06x}")
            }
            ParseError::BadVersion(v) => write!(f, "unsupported IP version {v}"),
            ParseError::BadHeaderLength(l) => write!(f, "invalid IPv4 header length {l}"),
            ParseError::BadTotalLength { claimed, got } => {
                write!(f, "IPv4 total length {claimed} disagrees with buffer length {got}")
            }
            ParseError::BadTcpOption(k) => write!(f, "malformed TCP option kind {k}"),
            ParseError::BadDataOffset(o) => write!(f, "invalid TCP data offset {o}"),
            ParseError::UnsupportedArp => write!(f, "unsupported ARP hardware/protocol type"),
            ParseError::BadArpOp(op) => write!(f, "invalid ARP opcode {op}"),
        }
    }
}

impl Error for ParseError {}

/// Checks that `buf` holds at least `needed` bytes.
///
/// # Errors
///
/// Returns [`ParseError::Truncated`] when it does not.
pub(crate) fn need(buf: &[u8], needed: usize) -> Result<(), ParseError> {
    if buf.len() < needed {
        Err(ParseError::Truncated { needed, got: buf.len() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::Truncated { needed: 20, got: 3 };
        assert!(e.to_string().contains("needed 20"));
        let e = ParseError::BadChecksum { found: 1, expected: 2 };
        assert!(e.to_string().contains("0x0001"));
    }

    #[test]
    fn need_accepts_exact_and_larger() {
        assert!(need(&[0; 4], 4).is_ok());
        assert!(need(&[0; 5], 4).is_ok());
        assert_eq!(need(&[0; 3], 4), Err(ParseError::Truncated { needed: 4, got: 3 }));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ParseError>();
    }
}
