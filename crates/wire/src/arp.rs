//! ARP (RFC 826) over Ethernet/IPv4.
//!
//! The gateway in the ST-TCP tapping architecture carries *static* ARP
//! entries mapping the service virtual IP to a multicast MAC; ordinary
//! dynamic resolution still uses these packets.

use crate::error::{need, ParseError};
use crate::ethernet::MacAddr;
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has request (opcode 1).
    Request,
    /// Is-at reply (opcode 2).
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// On-wire size of an Ethernet/IPv4 ARP packet.
pub const ARP_LEN: usize = 28;

/// An ARP packet for Ethernet hardware and IPv4 protocol addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has request from `sender` for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the reply answering `request`, claiming `mac` owns `ip`.
    pub fn reply(mac: MacAddr, ip: Ipv4Addr, request: &ArpPacket) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Serializes to on-wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(ARP_LEN);
        buf.put_u16(1); // hardware type: Ethernet
        buf.put_u16(0x0800); // protocol type: IPv4
        buf.put_u8(6); // hardware size
        buf.put_u8(4); // protocol size
        buf.put_u16(self.op.to_u16());
        buf.put_slice(&self.sender_mac.0);
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.0);
        buf.put_slice(&self.target_ip.octets());
        buf.freeze()
    }

    /// Parses on-wire bytes.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] — fewer than 28 bytes.
    /// * [`ParseError::UnsupportedArp`] — not Ethernet/IPv4.
    /// * [`ParseError::BadArpOp`] — opcode other than 1 or 2.
    pub fn parse(raw: &[u8]) -> Result<Self, ParseError> {
        need(raw, ARP_LEN)?;
        let htype = u16::from_be_bytes([raw[0], raw[1]]);
        let ptype = u16::from_be_bytes([raw[2], raw[3]]);
        if htype != 1 || ptype != 0x0800 || raw[4] != 6 || raw[5] != 4 {
            return Err(ParseError::UnsupportedArp);
        }
        let op = match u16::from_be_bytes([raw[6], raw[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => return Err(ParseError::BadArpOp(other)),
        };
        let mut sender_mac = [0u8; 6];
        sender_mac.copy_from_slice(&raw[8..14]);
        let sender_ip = Ipv4Addr::new(raw[14], raw[15], raw[16], raw[17]);
        let mut target_mac = [0u8; 6];
        target_mac.copy_from_slice(&raw[18..24]);
        let target_ip = Ipv4Addr::new(raw[24], raw[25], raw[26], raw[27]);
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr(sender_mac),
            sender_ip,
            target_mac: MacAddr(target_mac),
            target_ip,
        })
    }
}

impl fmt::Display for ArpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            ArpOp::Request => {
                write!(
                    f,
                    "arp who-has {} tell {} ({})",
                    self.target_ip, self.sender_ip, self.sender_mac
                )
            }
            ArpOp::Reply => write!(f, "arp {} is-at {}", self.sender_ip, self.sender_mac),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> ArpPacket {
        ArpPacket::request(
            MacAddr::local(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        )
    }

    #[test]
    fn roundtrip_request() {
        let req = sample_request();
        assert_eq!(ArpPacket::parse(&req.encode()).unwrap(), req);
    }

    #[test]
    fn reply_targets_requester() {
        let req = sample_request();
        let rep = ArpPacket::reply(MacAddr::local(2), req.target_ip, &req);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
        assert_eq!(ArpPacket::parse(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn rejects_non_ethernet() {
        let mut raw = sample_request().encode().to_vec();
        raw[0] = 0;
        raw[1] = 6; // IEEE 802 hardware type
        assert_eq!(ArpPacket::parse(&raw), Err(ParseError::UnsupportedArp));
    }

    #[test]
    fn rejects_bad_opcode() {
        let mut raw = sample_request().encode().to_vec();
        raw[7] = 9;
        assert_eq!(ArpPacket::parse(&raw), Err(ParseError::BadArpOp(9)));
    }

    #[test]
    fn rejects_truncation() {
        let raw = sample_request().encode();
        assert!(matches!(
            ArpPacket::parse(&raw[..27]),
            Err(ParseError::Truncated { needed: 28, got: 27 })
        ));
    }
}
