//! Single-pass frame composition: Ethernet + IPv4 + TCP/UDP in one
//! reusable buffer.
//!
//! The layered `encode()` chain (`TcpSegment::encode` →
//! `Ipv4Packet::encode` → `EthernetFrame::encode`) allocates three
//! buffers and copies the payload three times per frame. The
//! [`FrameBuilder`] writes every header and the payload once, directly
//! into one [`BytesMut`], computes both checksums in place, and hands
//! the finished frame out as a refcounted [`Bytes`] view — at most one
//! payload memcpy, and zero heap allocations once the buffer has grown
//! to the working-set size (frames of one burst pack back-to-back into
//! the same allocation, which is reclaimed whole after the in-flight
//! views drop).
//!
//! Bit-identity with the layered chain is a hard invariant (the
//! simulator's determinism tests compare full frame traces); the TCP
//! option encoding is shared ([`write_options`]) and
//! [`FrameBuilder::tcp_frame`] mirrors the field order of the layered
//! encoders exactly. `tests::builder_matches_layered_chain` pins this.

use crate::checksum::{checksum, pseudo_header_sum, Checksum};
use crate::ethernet::{EtherType, MacAddr};
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::tcp::{options_wire_len, write_options, TcpFlags, TcpOption};
use crate::{ethernet, ipv4, tcp, udp};
use bytes::{BufMut, Bytes, BytesMut};
use std::net::Ipv4Addr;

/// Offset of the IPv4 header within a frame.
const IP_OFF: usize = ethernet::HEADER_LEN;
/// Offset of the transport header within a frame.
const L4_OFF: usize = IP_OFF + ipv4::HEADER_LEN;

/// Everything above the payload for one outgoing TCP frame.
///
/// Borrowed, `Copy`-cheap view: the hot path fills this from the TCB and
/// stack state without materializing a `TcpSegment`.
#[derive(Debug, Clone, Copy)]
pub struct TcpFrameHeader<'a> {
    /// Ethernet destination.
    pub eth_dst: MacAddr,
    /// Ethernet source.
    pub eth_src: MacAddr,
    /// IPv4 source address.
    pub ip_src: Ipv4Addr,
    /// IPv4 destination address.
    pub ip_dst: Ipv4Addr,
    /// IPv4 identification field.
    pub ident: u16,
    /// IPv4 time to live.
    pub ttl: u8,
    /// TCP source port.
    pub src_port: u16,
    /// TCP destination port.
    pub dst_port: u16,
    /// TCP sequence number.
    pub seq: u32,
    /// TCP acknowledgment number.
    pub ack: u32,
    /// TCP flags.
    pub flags: TcpFlags,
    /// Advertised window (unscaled).
    pub window: u16,
    /// TCP options (SYN segments only, in this stack).
    pub options: &'a [TcpOption],
}

/// A reusable single-pass frame composer.
///
/// One builder per stack; frames of a burst are packed back-to-back in
/// the shared buffer and split off as [`Bytes`] views. Call
/// [`FrameBuilder::recycle`] once per poll so the buffer is reclaimed
/// in place as soon as every in-flight view has been dropped.
#[derive(Debug)]
pub struct FrameBuilder {
    buf: BytesMut,
    /// Largest burst (bytes between recycles) seen so far.
    high_water: usize,
    burst_bytes: usize,
}

impl Default for FrameBuilder {
    fn default() -> Self {
        FrameBuilder::new()
    }
}

impl FrameBuilder {
    /// Default initial buffer capacity (grows to the working set).
    const DEFAULT_CAPACITY: usize = 64 * 1024;

    /// Creates a builder with the default capacity.
    pub fn new() -> FrameBuilder {
        FrameBuilder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a builder with a specific initial capacity.
    pub fn with_capacity(cap: usize) -> FrameBuilder {
        FrameBuilder { buf: BytesMut::with_capacity(cap), high_water: 0, burst_bytes: 0 }
    }

    /// Marks a burst boundary (call once per poll).
    ///
    /// Reclaims the buffer in place when every frame split from it has
    /// been dropped and the remaining tail capacity has shrunk below the
    /// burst high-water mark; otherwise it is free.
    pub fn recycle(&mut self) {
        self.high_water = self.high_water.max(self.burst_bytes);
        self.burst_bytes = 0;
        self.buf.reserve(self.high_water);
    }

    /// Composes one Ethernet+IPv4+TCP frame in a single pass.
    ///
    /// `payload` is the pair of contiguous halves from the send buffer's
    /// ring (either may be empty) — the only payload memcpy on the path.
    /// Output is bit-identical to the layered
    /// `TcpSegment::encode` → `Ipv4Packet::encode` →
    /// `EthernetFrame::encode` chain.
    pub fn tcp_frame(&mut self, h: &TcpFrameHeader<'_>, payload: (&[u8], &[u8])) -> Bytes {
        let opt_len = options_wire_len(h.options);
        debug_assert!(opt_len <= 40, "TCP options overflow");
        let tcp_header_len = tcp::HEADER_LEN + opt_len;
        let tcp_len = tcp_header_len + payload.0.len() + payload.1.len();
        let ip_total = ipv4::HEADER_LEN + tcp_len;
        debug_assert!(ip_total <= u16::MAX as usize, "IPv4 packet too large");
        let frame_len = ethernet::HEADER_LEN + ip_total;
        let buf = self.begin(frame_len);

        buf.put_slice(&h.eth_dst.octets());
        buf.put_slice(&h.eth_src.octets());
        buf.put_u16(EtherType::Ipv4.to_u16());

        write_ip_header(buf, h.ip_src, h.ip_dst, IpProtocol::Tcp, h.ident, h.ttl, ip_total);

        buf.put_u16(h.src_port);
        buf.put_u16(h.dst_port);
        buf.put_u32(h.seq);
        buf.put_u32(h.ack);
        buf.put_u8(((tcp_header_len / 4) as u8) << 4);
        buf.put_u8(h.flags.bits());
        buf.put_u16(h.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(0); // urgent pointer
        write_options(buf, h.options);
        buf.put_slice(payload.0);
        buf.put_slice(payload.1);

        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(h.ip_src, h.ip_dst, 6, tcp_len as u16));
        c.add_bytes(&buf[L4_OFF..]);
        let csum = c.finish();
        buf[L4_OFF + 16..L4_OFF + 18].copy_from_slice(&csum.to_be_bytes());

        self.finish(frame_len)
    }

    /// Composes one Ethernet+IPv4+UDP frame in a single pass.
    ///
    /// Bit-identical to `UdpDatagram::encode` → `Ipv4Packet::encode` →
    /// `EthernetFrame::encode`.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_frame(
        &mut self,
        eth_dst: MacAddr,
        eth_src: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        ident: u16,
        ttl: u8,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Bytes {
        let udp_len = udp::HEADER_LEN + payload.len();
        debug_assert!(udp_len <= u16::MAX as usize, "UDP datagram too large");
        let ip_total = ipv4::HEADER_LEN + udp_len;
        let frame_len = ethernet::HEADER_LEN + ip_total;
        let buf = self.begin(frame_len);

        buf.put_slice(&eth_dst.octets());
        buf.put_slice(&eth_src.octets());
        buf.put_u16(EtherType::Ipv4.to_u16());

        write_ip_header(buf, ip_src, ip_dst, IpProtocol::Udp, ident, ttl, ip_total);

        buf.put_u16(src_port);
        buf.put_u16(dst_port);
        buf.put_u16(udp_len as u16);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(payload);

        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(ip_src, ip_dst, 17, udp_len as u16));
        c.add_bytes(&buf[L4_OFF..]);
        let mut csum = c.finish();
        if csum == 0 {
            csum = 0xFFFF; // RFC 768: transmitted zero means "no checksum"
        }
        buf[L4_OFF + 6..L4_OFF + 8].copy_from_slice(&csum.to_be_bytes());

        self.finish(frame_len)
    }

    /// Wraps an already-encoded IPv4 packet in an Ethernet header, single
    /// pass (one payload copy instead of the two the layered chain does).
    ///
    /// Bit-identical to `packet.encode()` → `EthernetFrame::encode`.
    pub fn ip_frame(&mut self, eth_dst: MacAddr, eth_src: MacAddr, packet: &Ipv4Packet) -> Bytes {
        let ip_total = ipv4::HEADER_LEN + packet.payload.len();
        debug_assert!(ip_total <= u16::MAX as usize, "IPv4 packet too large");
        let frame_len = ethernet::HEADER_LEN + ip_total;
        let buf = self.begin(frame_len);

        buf.put_slice(&eth_dst.octets());
        buf.put_slice(&eth_src.octets());
        buf.put_u16(EtherType::Ipv4.to_u16());

        write_ip_header(
            buf,
            packet.src,
            packet.dst,
            packet.protocol,
            packet.ident,
            packet.ttl,
            ip_total,
        );
        buf.put_slice(&packet.payload);

        self.finish(frame_len)
    }

    /// Readies the buffer for one frame of `frame_len` bytes.
    fn begin(&mut self, frame_len: usize) -> &mut BytesMut {
        debug_assert!(self.buf.is_empty(), "frame left unfinished in builder");
        self.buf.reserve(frame_len);
        &mut self.buf
    }

    /// Splits the finished frame off as an immutable view.
    fn finish(&mut self, frame_len: usize) -> Bytes {
        debug_assert_eq!(self.buf.len(), frame_len);
        self.burst_bytes += frame_len;
        self.buf.split().freeze()
    }
}

/// Writes a 20-byte IPv4 header with its checksum patched in place.
///
/// Field order and constants mirror `Ipv4Packet::encode` exactly.
fn write_ip_header(
    buf: &mut BytesMut,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: IpProtocol,
    ident: u16,
    ttl: u8,
    ip_total: usize,
) {
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8(0); // DSCP/ECN
    buf.put_u16(ip_total as u16);
    buf.put_u16(ident);
    buf.put_u16(0x4000); // flags: DF, fragment offset 0
    buf.put_u8(ttl);
    buf.put_u8(protocol.to_u8());
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&src.octets());
    buf.put_slice(&dst.octets());
    let csum = checksum(&buf[IP_OFF..IP_OFF + ipv4::HEADER_LEN]);
    buf[IP_OFF + 10..IP_OFF + 12].copy_from_slice(&csum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EthernetFrame, TcpSegment, UdpDatagram};

    const SRC_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);
    const SRC_MAC: MacAddr = MacAddr::local(1);
    const DST_MAC: MacAddr = MacAddr::local(2);

    /// The layered reference chain the builder must match byte-for-byte.
    fn layered_tcp(seg: &TcpSegment, ident: u16, ttl: u8) -> Bytes {
        let mut ip = Ipv4Packet::new(SRC_IP, DST_IP, IpProtocol::Tcp, seg.encode(SRC_IP, DST_IP));
        ip.ident = ident;
        ip.ttl = ttl;
        EthernetFrame::new(DST_MAC, SRC_MAC, EtherType::Ipv4, ip.encode()).encode()
    }

    fn header_for<'a>(seg: &'a TcpSegment, ident: u16, ttl: u8) -> TcpFrameHeader<'a> {
        TcpFrameHeader {
            eth_dst: DST_MAC,
            eth_src: SRC_MAC,
            ip_src: SRC_IP,
            ip_dst: DST_IP,
            ident,
            ttl,
            src_port: seg.src_port,
            dst_port: seg.dst_port,
            seq: seg.seq,
            ack: seg.ack,
            flags: seg.flags,
            window: seg.window,
            options: &seg.options,
        }
    }

    #[test]
    fn builder_matches_layered_chain() {
        let mut b = FrameBuilder::new();
        // A representative spread: bare ACK, SYN with every option kind,
        // data with odd/even lengths, FIN piggyback, RST.
        let mut cases = Vec::new();
        let mut syn = TcpSegment::bare(40000, 80, 12345, 0, TcpFlags::SYN, 16384);
        syn.options = vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::WindowScale(7),
            TcpOption::Timestamps { tsval: 0xDEAD_BEEF, tsecr: 0x0102_0304 },
        ];
        cases.push(syn);
        cases.push(TcpSegment::bare(80, 40000, 7, 8, TcpFlags::ACK, 512));
        for len in [1usize, 2, 3, 536, 1459, 1460] {
            let mut s = TcpSegment::bare(80, 40000, 100, 200, TcpFlags::ACK | TcpFlags::PSH, 4096);
            s.payload = Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>());
            cases.push(s);
        }
        let mut fin = TcpSegment::bare(80, 40000, 300, 400, TcpFlags::FIN | TcpFlags::ACK, 1024);
        fin.payload = Bytes::from_static(b"tail");
        cases.push(fin);
        cases.push(TcpSegment::bare(80, 40000, 0, 0, TcpFlags::RST | TcpFlags::ACK, 0));
        // A SACK-bearing duplicate ACK (RFC 2018), 1..=4 blocks.
        for n in 1..=4usize {
            let ranges: Vec<(u32, u32)> =
                (0..n).map(|k| (5000 + 200 * k as u32, 5100 + 200 * k as u32)).collect();
            let mut dup = TcpSegment::bare(40000, 80, 900, 5000, TcpFlags::ACK, 2048);
            dup.options = vec![TcpOption::sack(&ranges)];
            cases.push(dup);
        }

        for (i, seg) in cases.iter().enumerate() {
            let ident = 0x1000 + i as u16;
            let expected = layered_tcp(seg, ident, 64);
            // Split the payload at every possible point: the two-slice
            // write must be invisible on the wire.
            for cut in [0, seg.payload.len() / 2, seg.payload.len()] {
                let got = b.tcp_frame(
                    &header_for(seg, ident, 64),
                    (&seg.payload[..cut], &seg.payload[cut..]),
                );
                assert_eq!(got, expected, "case {i} cut {cut} diverged from the layered chain");
            }
        }
    }

    #[test]
    fn udp_matches_layered_chain() {
        let mut b = FrameBuilder::new();
        for len in [0usize, 1, 9, 1200] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let d = UdpDatagram::new(5000, 6000, Bytes::from(payload.clone()));
            let mut ip = Ipv4Packet::new(SRC_IP, DST_IP, IpProtocol::Udp, d.encode(SRC_IP, DST_IP));
            ip.ident = 42;
            let expected =
                EthernetFrame::new(DST_MAC, SRC_MAC, EtherType::Ipv4, ip.encode()).encode();
            let got = b.udp_frame(DST_MAC, SRC_MAC, SRC_IP, DST_IP, 42, 64, 5000, 6000, &payload);
            assert_eq!(got, expected, "udp len {len} diverged from the layered chain");
        }
    }

    #[test]
    fn ip_frame_matches_layered_chain() {
        let mut b = FrameBuilder::new();
        let mut ip =
            Ipv4Packet::new(SRC_IP, DST_IP, IpProtocol::Tcp, Bytes::from_static(b"queued"));
        ip.ident = 99;
        let expected = EthernetFrame::new(DST_MAC, SRC_MAC, EtherType::Ipv4, ip.encode()).encode();
        assert_eq!(b.ip_frame(DST_MAC, SRC_MAC, &ip), expected);
    }

    #[test]
    fn burst_reuses_one_allocation() {
        // Room for exactly one two-frame burst, so the recycle after the
        // burst must take the in-place reclamation path.
        let frame_len = ethernet::HEADER_LEN + ipv4::HEADER_LEN + tcp::HEADER_LEN + 1000;
        let mut b = FrameBuilder::with_capacity(2 * frame_len + 64);
        let seg = {
            let mut s = TcpSegment::bare(80, 40000, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 4096);
            s.payload = Bytes::from(vec![0x42u8; 1000]);
            s
        };
        // Whole burst lands in one buffer: frame starts are spaced by
        // frame length within the same allocation.
        let f1 = b.tcp_frame(&header_for(&seg, 1, 64), (&seg.payload, &[]));
        let f2 = b.tcp_frame(&header_for(&seg, 2, 64), (&seg.payload, &[]));
        assert_eq!(f1.len(), frame_len);
        let base = f1.as_ref().as_ptr() as usize;
        assert_eq!(f2.as_ref().as_ptr() as usize, base + frame_len);
        // After the views drop, recycle reclaims the same region instead
        // of allocating a fresh buffer.
        drop(f1);
        drop(f2);
        b.recycle();
        let f3 = b.tcp_frame(&header_for(&seg, 3, 64), (&seg.payload, &[]));
        assert_eq!(f3.as_ref().as_ptr() as usize, base);
    }

    #[test]
    fn parses_back_cleanly() {
        let mut b = FrameBuilder::new();
        let mut seg = TcpSegment::bare(80, 40000, 55, 66, TcpFlags::ACK | TcpFlags::PSH, 2048);
        seg.payload = Bytes::from(vec![9u8; 100]);
        let frame = b.tcp_frame(&header_for(&seg, 7, 64), (&seg.payload[..40], &seg.payload[40..]));
        let eth = EthernetFrame::parse(frame).unwrap();
        let ip = Ipv4Packet::parse(eth.payload).unwrap();
        assert_eq!(ip.ident, 7);
        let parsed = TcpSegment::parse(ip.payload, ip.src, ip.dst).unwrap();
        assert_eq!(parsed, seg);
    }
}
