//! TCP segments (RFC 793) with the options the ST-TCP prototype touches.
//!
//! Sequence and acknowledgment numbers are raw `u32`s here; wrapping
//! arithmetic and window semantics live in the `tcpstack` crate. The
//! timestamp option is implemented but *disabled by default* in the
//! experiment configurations, mirroring §6 of the paper ("the TCP
//! timestamp option was disabled on the primary and the backup") — with
//! timestamps on, the primary's and backup's segments would differ and
//! the tap-equivalence invariant checks would need to mask them.

use crate::checksum::{pseudo_header_sum, Checksum};
use crate::error::{need, ParseError};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// TCP header flags.
///
/// A tiny owned flag set (not the `bitflags` crate, to keep the workspace
/// dependency-light); combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN: sender is finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant (never set by this stack).
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// True if every flag in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw flag byte (low 6 bits).
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from a raw byte, keeping only defined bits.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits & 0x3F)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, ".");
        }
        for (bit, ch) in [
            (TcpFlags::SYN, 'S'),
            (TcpFlags::FIN, 'F'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::URG, 'U'),
        ] {
            if self.contains(bit) {
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// A TCP header option.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpOption {
    /// Maximum segment size (kind 2), valid only on SYN segments.
    Mss(u16),
    /// Window scale shift (kind 3), valid only on SYN segments.
    WindowScale(u8),
    /// Timestamps (kind 8): value and echo reply.
    Timestamps {
        /// Sender's timestamp clock value.
        tsval: u32,
        /// Echo of the most recent timestamp received from the peer.
        tsecr: u32,
    },
    /// SACK-permitted (kind 4), valid only on SYN segments.
    SackPermitted,
    /// Selective acknowledgment blocks (kind 5, RFC 2018). Fixed-size
    /// storage (the option is `Copy`); only the first `count` blocks are
    /// meaningful, each a half-open `[start, end)` sequence range.
    Sack {
        /// Up to four `[start, end)` ranges; slots past `count` are zero.
        blocks: [(u32, u32); 4],
        /// Number of valid blocks (1..=4).
        count: u8,
    },
}

impl TcpOption {
    /// Builds a SACK option from up to four blocks (extras are dropped,
    /// matching the 40-byte option-area budget of RFC 2018).
    pub fn sack(ranges: &[(u32, u32)]) -> TcpOption {
        let mut blocks = [(0u32, 0u32); 4];
        let count = ranges.len().min(4);
        blocks[..count].copy_from_slice(&ranges[..count]);
        TcpOption::Sack { blocks, count: count as u8 }
    }

    /// The valid blocks of a SACK option (empty for other kinds).
    pub fn sack_blocks(&self) -> &[(u32, u32)] {
        match self {
            TcpOption::Sack { blocks, count } => &blocks[..usize::from(*count).min(4)],
            _ => &[],
        }
    }
}

/// Length of a TCP header without options.
pub const HEADER_LEN: usize = 20;

/// On-wire length of an option list, NOP-padded to a 32-bit boundary.
///
/// Shared by [`TcpSegment::encode`] and the single-pass
/// [`crate::frame::FrameBuilder`] so the two paths stay bit-identical.
pub fn options_wire_len(options: &[TcpOption]) -> usize {
    let raw: usize = options
        .iter()
        .map(|o| match o {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::SackPermitted => 2,
            TcpOption::Sack { count, .. } => 2 + 8 * usize::from(*count).min(4),
        })
        .sum();
    (raw + 3) & !3 // pad with NOPs to a 32-bit boundary
}

/// Writes `options` with trailing NOP padding to a 32-bit boundary.
///
/// Shared by [`TcpSegment::encode`] and the single-pass
/// [`crate::frame::FrameBuilder`] so the two paths stay bit-identical.
pub fn write_options(buf: &mut BytesMut, options: &[TcpOption]) {
    let opt_len = options_wire_len(options);
    let mut written = 0usize;
    for opt in options {
        match *opt {
            TcpOption::Mss(mss) => {
                buf.put_u8(2);
                buf.put_u8(4);
                buf.put_u16(mss);
                written += 4;
            }
            TcpOption::WindowScale(shift) => {
                buf.put_u8(3);
                buf.put_u8(3);
                buf.put_u8(shift);
                written += 3;
            }
            TcpOption::Timestamps { tsval, tsecr } => {
                buf.put_u8(8);
                buf.put_u8(10);
                buf.put_u32(tsval);
                buf.put_u32(tsecr);
                written += 10;
            }
            TcpOption::SackPermitted => {
                buf.put_u8(4);
                buf.put_u8(2);
                written += 2;
            }
            TcpOption::Sack { blocks, count } => {
                let n = usize::from(count).min(4);
                buf.put_u8(5);
                buf.put_u8((2 + 8 * n) as u8);
                for &(start, end) in &blocks[..n] {
                    buf.put_u32(start);
                    buf.put_u32(end);
                }
                written += 2 + 8 * n;
            }
        }
    }
    for _ in written..opt_len {
        buf.put_u8(1); // NOP padding
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (significant iff `flags` contains ACK).
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window (unscaled 16-bit value).
    pub window: u16,
    /// Header options.
    pub options: Vec<TcpOption>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Builds a segment with no options and an empty payload.
    pub fn bare(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        window: u16,
    ) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            options: Vec::new(),
            payload: Bytes::new(),
        }
    }

    /// The length this segment occupies in sequence space: payload bytes
    /// plus one for SYN and one for FIN.
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.contains(TcpFlags::SYN) {
            len += 1;
        }
        if self.flags.contains(TcpFlags::FIN) {
            len += 1;
        }
        len
    }

    fn options_len(&self) -> usize {
        options_wire_len(&self.options)
    }

    /// Serializes with a correct checksum over the IPv4 pseudo-header.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if options exceed the 40-byte option area.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let opt_len = self.options_len();
        debug_assert!(opt_len <= 40, "TCP options overflow");
        let header_len = HEADER_LEN + opt_len;
        let total = header_len + self.payload.len();
        let mut buf = BytesMut::with_capacity(total);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8(((header_len / 4) as u8) << 4);
        buf.put_u8(self.flags.bits());
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(0); // urgent pointer
        write_options(&mut buf, &self.options);
        buf.put_slice(&self.payload);
        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(src, dst, 6, total as u16));
        c.add_bytes(&buf);
        let csum = c.finish();
        buf[16..18].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Parses and validates a segment carried between `src` and `dst`.
    ///
    /// Unknown options are skipped using their length byte, as required
    /// for forward compatibility.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] — shorter than the header.
    /// * [`ParseError::BadDataOffset`] — data offset < 5 or past the end.
    /// * [`ParseError::BadTcpOption`] — option length byte of 0/1 or
    ///   overrunning the option area.
    /// * [`ParseError::BadChecksum`] — pseudo-header checksum mismatch.
    pub fn parse(raw: Bytes, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        need(&raw, HEADER_LEN)?;
        let data_offset = raw[12] >> 4;
        let header_len = usize::from(data_offset) * 4;
        if header_len < HEADER_LEN || header_len > raw.len() {
            return Err(ParseError::BadDataOffset(data_offset));
        }
        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(src, dst, 6, raw.len() as u16));
        c.add_bytes(&raw);
        if c.finish() != 0 {
            let found = u16::from_be_bytes([raw[16], raw[17]]);
            return Err(ParseError::BadChecksum { found, expected: 0 });
        }
        let mut options = Vec::new();
        let mut i = HEADER_LEN;
        while i < header_len {
            match raw[i] {
                0 => break,  // end of options
                1 => i += 1, // NOP
                kind => {
                    if i + 1 >= header_len {
                        return Err(ParseError::BadTcpOption(kind));
                    }
                    let len = usize::from(raw[i + 1]);
                    if len < 2 || i + len > header_len {
                        return Err(ParseError::BadTcpOption(kind));
                    }
                    match (kind, len) {
                        (2, 4) => options
                            .push(TcpOption::Mss(u16::from_be_bytes([raw[i + 2], raw[i + 3]]))),
                        (3, 3) => options.push(TcpOption::WindowScale(raw[i + 2])),
                        (4, 2) => options.push(TcpOption::SackPermitted),
                        (5, l) if l >= 10 && (l - 2) % 8 == 0 && l <= 34 => {
                            let n = (l - 2) / 8;
                            let mut blocks = [(0u32, 0u32); 4];
                            for (b, slot) in blocks.iter_mut().enumerate().take(n) {
                                let o = i + 2 + 8 * b;
                                *slot = (
                                    u32::from_be_bytes([
                                        raw[o],
                                        raw[o + 1],
                                        raw[o + 2],
                                        raw[o + 3],
                                    ]),
                                    u32::from_be_bytes([
                                        raw[o + 4],
                                        raw[o + 5],
                                        raw[o + 6],
                                        raw[o + 7],
                                    ]),
                                );
                            }
                            options.push(TcpOption::Sack { blocks, count: n as u8 });
                        }
                        (8, 10) => options.push(TcpOption::Timestamps {
                            tsval: u32::from_be_bytes([
                                raw[i + 2],
                                raw[i + 3],
                                raw[i + 4],
                                raw[i + 5],
                            ]),
                            tsecr: u32::from_be_bytes([
                                raw[i + 6],
                                raw[i + 7],
                                raw[i + 8],
                                raw[i + 9],
                            ]),
                        }),
                        _ => {} // unknown option: skip
                    }
                    i += len;
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([raw[0], raw[1]]),
            dst_port: u16::from_be_bytes([raw[2], raw[3]]),
            seq: u32::from_be_bytes([raw[4], raw[5], raw[6], raw[7]]),
            ack: u32::from_be_bytes([raw[8], raw[9], raw[10], raw[11]]),
            flags: TcpFlags::from_bits(raw[13]),
            window: u16::from_be_bytes([raw[14], raw[15]]),
            options,
            payload: raw.slice(header_len..),
        })
    }

    /// The MSS option value, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }
}

impl fmt::Display for TcpSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tcp :{} -> :{} [{}] seq={} ack={} win={} len={}",
            self.src_port,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.window,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 10);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 100);

    fn syn() -> TcpSegment {
        let mut s = TcpSegment::bare(40000, 80, 12345, 0, TcpFlags::SYN, 16384);
        s.options = vec![TcpOption::Mss(1460), TcpOption::SackPermitted];
        s
    }

    #[test]
    fn roundtrip_syn_with_options() {
        let s = syn();
        let parsed = TcpSegment::parse(s.encode(A, B), A, B).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.mss(), Some(1460));
    }

    #[test]
    fn roundtrip_data_segment() {
        let mut s = TcpSegment::bare(80, 40000, 777, 888, TcpFlags::ACK | TcpFlags::PSH, 4096);
        s.payload = Bytes::from(vec![0xAB; 1460]);
        let parsed = TcpSegment::parse(s.encode(A, B), A, B).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn roundtrip_timestamps() {
        let mut s = TcpSegment::bare(1, 2, 3, 4, TcpFlags::ACK, 100);
        s.options = vec![TcpOption::Timestamps { tsval: 0xDEADBEEF, tsecr: 0x01020304 }];
        let parsed = TcpSegment::parse(s.encode(A, B), A, B).unwrap();
        assert_eq!(parsed.options, s.options);
    }

    #[test]
    fn roundtrip_sack_blocks() {
        for n in 1..=4usize {
            let ranges: Vec<(u32, u32)> =
                (0..n).map(|b| (1000 + 100 * b as u32, 1050 + 100 * b as u32)).collect();
            let mut s = TcpSegment::bare(80, 40000, 7, 9, TcpFlags::ACK, 4096);
            s.options = vec![TcpOption::sack(&ranges)];
            let parsed = TcpSegment::parse(s.encode(A, B), A, B).unwrap();
            assert_eq!(parsed.options, s.options, "{n} blocks must survive the wire");
            assert_eq!(parsed.options[0].sack_blocks(), &ranges[..]);
        }
    }

    #[test]
    fn sack_constructor_truncates_to_four() {
        let many: Vec<(u32, u32)> = (0..6).map(|b| (b * 10, b * 10 + 5)).collect();
        let opt = TcpOption::sack(&many);
        assert_eq!(opt.sack_blocks().len(), 4);
        assert_eq!(options_wire_len(&[opt]), 36); // 2 + 32, padded to 36
    }

    #[test]
    fn sack_rides_with_timestamps() {
        // A realistic ACK: timestamps + 2 SACK blocks fits the 40-byte area.
        let mut s = TcpSegment::bare(80, 40000, 7, 9, TcpFlags::ACK, 4096);
        s.options = vec![
            TcpOption::Timestamps { tsval: 1, tsecr: 2 },
            TcpOption::sack(&[(100, 200), (300, 400)]),
        ];
        assert!(options_wire_len(&s.options) <= 40);
        let parsed = TcpSegment::parse(s.encode(A, B), A, B).unwrap();
        assert_eq!(parsed.options, s.options);
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = TcpSegment::bare(1, 2, 0, 0, TcpFlags::SYN | TcpFlags::FIN, 0);
        s.payload = Bytes::from_static(b"abc");
        assert_eq!(s.seq_len(), 5);
        assert_eq!(TcpSegment::bare(1, 2, 0, 0, TcpFlags::ACK, 0).seq_len(), 0);
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let s = syn();
        let raw = s.encode(A, B);
        assert!(matches!(
            TcpSegment::parse(raw, A, Ipv4Addr::new(192, 168, 1, 101)),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut s = TcpSegment::bare(1, 2, 3, 4, TcpFlags::ACK, 10);
        s.payload = Bytes::from_static(b"data!");
        let mut raw = s.encode(A, B).to_vec();
        let n = raw.len();
        raw[n - 1] ^= 1;
        assert!(TcpSegment::parse(Bytes::from(raw), A, B).is_err());
    }

    #[test]
    fn unknown_option_skipped() {
        // Hand-craft a header with an unknown option kind 99, len 4.
        let s = TcpSegment::bare(1, 2, 3, 4, TcpFlags::ACK, 10);
        let mut raw = s.encode(A, B).to_vec();
        // Rewrite data offset from 5 to 6 and insert 4 option bytes.
        raw[12] = 6 << 4;
        let opt = [99u8, 4, 0, 0];
        raw.splice(20..20, opt.iter().copied());
        // Fix checksum: zero it and recompute.
        raw[16] = 0;
        raw[17] = 0;
        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(A, B, 6, raw.len() as u16));
        c.add_bytes(&raw);
        let csum = c.finish();
        raw[16..18].copy_from_slice(&csum.to_be_bytes());
        let parsed = TcpSegment::parse(Bytes::from(raw), A, B).unwrap();
        assert!(parsed.options.is_empty());
    }

    #[test]
    fn bad_option_length_rejected() {
        let s = syn();
        let mut raw = s.encode(A, B).to_vec();
        raw[21] = 0; // MSS option length byte -> 0
                     // Recompute checksum so the option error (not checksum) is hit.
        raw[16] = 0;
        raw[17] = 0;
        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(A, B, 6, raw.len() as u16));
        c.add_bytes(&raw);
        let csum = c.finish();
        raw[16..18].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            TcpSegment::parse(Bytes::from(raw), A, B),
            Err(ParseError::BadTcpOption(2))
        ));
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SA");
        assert_eq!(TcpFlags::EMPTY.to_string(), ".");
    }

    #[test]
    fn flags_ops() {
        let mut f = TcpFlags::SYN;
        f |= TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert_eq!(TcpFlags::from_bits(0xFF).bits(), 0x3F);
    }
}
