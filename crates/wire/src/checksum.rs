//! The 16-bit one's-complement internet checksum (RFC 1071).
//!
//! Used by IPv4 headers, TCP, and UDP. TCP and UDP additionally cover a
//! pseudo-header of the IP addresses, protocol number, and payload length;
//! [`pseudo_header_sum`] produces the partial sum for that.

use std::net::Ipv4Addr;

/// Accumulates a one's-complement sum over arbitrary byte slices.
///
/// Sections may be added in any order (the internet checksum is
/// commutative over 16-bit words), but each individual slice is treated as
/// a big-endian word stream, with odd-length slices padded with a zero
/// byte, matching how the pseudo-header and payload concatenate on the
/// wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a raw 32-bit partial sum (e.g. from [`pseudo_header_sum`]).
    pub fn add_sum(&mut self, partial: u32) -> &mut Self {
        self.sum = self.sum.wrapping_add(partial);
        self
    }

    /// Adds the bytes of `data`, padding to an even length with a zero.
    ///
    /// Accumulates eight bytes per step: because 2¹⁶ ≡ 1 (mod 0xFFFF),
    /// folding a 64-bit sum of big-endian words is congruent to the
    /// word-by-word sum, so the final checksum is bit-identical to the
    /// naive two-byte loop while running several times faster — this is
    /// on the per-frame hot path twice (compute on send, verify on
    /// receive).
    pub fn add_bytes(&mut self, data: &[u8]) -> &mut Self {
        let mut wide: u64 = 0;
        let mut chunks8 = data.chunks_exact(8);
        for chunk in &mut chunks8 {
            let v = u64::from_be_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            wide += (v >> 32) + (v & 0xFFFF_FFFF);
        }
        let mut chunks2 = chunks8.remainder().chunks_exact(2);
        for chunk in &mut chunks2 {
            wide += u64::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks2.remainder() {
            wide += u64::from(u16::from_be_bytes([*last, 0]));
        }
        // Fold to at most 16 significant bits before joining the 32-bit
        // running sum, so the addition below cannot wrap.
        while wide > 0xFFFF {
            wide = (wide >> 16) + (wide & 0xFFFF);
        }
        self.sum = self.sum.wrapping_add(wide as u32);
        self
    }

    /// Adds one big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) -> &mut Self {
        self.sum = self.sum.wrapping_add(u32::from(word));
        self
    }

    /// Folds carries and returns the one's-complement checksum.
    ///
    /// A result of `0` is transmitted as `0xFFFF` by UDP; callers decide.
    pub fn finish(&self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the checksum of a single contiguous buffer.
///
/// Equivalent to `Checksum::new().add_bytes(data).finish()`.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Partial sum for the TCP/UDP pseudo-header.
///
/// Covers source address, destination address, zero-padded protocol
/// number, and the TCP/UDP length (header + payload).
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, len: u16) -> u32 {
    let mut sum: u32 = 0;
    for octets in [src.octets(), dst.octets()] {
        sum += u32::from(u16::from_be_bytes([octets[0], octets[1]]));
        sum += u32::from(u16::from_be_bytes([octets[2], octets[3]]));
    }
    sum += u32::from(protocol);
    sum += u32::from(len);
    sum
}

/// Verifies a buffer whose checksum field is included in `data`.
///
/// For a correct packet the folded sum over header-including-checksum is
/// `0xFFFF`, i.e. [`checksum`] over it returns zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Partial sum is 0x2ddf0 -> fold -> 0xddf0 + 2 = 0xddf2, complement 0x220d.
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn zero_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[0u8; 20]), 0xFFFF);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0xAB] is summed as the word 0xAB00.
        assert_eq!(checksum(&[0xAB]), !0xAB00);
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![0x45u8, 0x00, 0x00, 0x28, 0x00, 0x01, 0x00, 0x00, 0x40, 0x06];
        data.extend_from_slice(&[0u8; 10]);
        // Patch in a correct checksum at offset 8..10? Use a fresh layout:
        // compute checksum over data with zeroed field then insert at the end.
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let sum = pseudo_header_sum(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 6, 40);
        let manual = 0x0a00u32 + 0x0001 + 0x0a00 + 0x0002 + 6 + 40;
        assert_eq!(sum, manual);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u8..=255).collect();
        let one_shot = checksum(&data);
        let mut inc = Checksum::new();
        // Split points must stay word-aligned for equality with the wire.
        inc.add_bytes(&data[..128]).add_bytes(&data[128..]);
        assert_eq!(inc.finish(), one_shot);
    }
}
