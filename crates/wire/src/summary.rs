//! One-line, tcpdump-style frame summaries for debugging and examples.
//!
//! The simulator deals in opaque `Bytes`; this module renders any frame
//! it can parse into a compact human-readable line:
//!
//! ```text
//! 10.0.0.1:40000 > 10.0.0.100:80 [S] seq=1234 win=17520 <mss 1460>
//! 10.0.0.100:80 > 10.0.0.1:40000 [SA] seq=555 ack=1235 win=17520
//! arp who-has 10.0.0.100 tell 10.0.0.1
//! ```

use crate::arp::ArpPacket;
use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::tcp::{TcpOption, TcpSegment};
use crate::udp::UdpDatagram;
use bytes::Bytes;
use std::fmt::Write as _;

/// Renders a one-line summary of a raw Ethernet frame. Unparsable input
/// yields a hex-prefixed fallback rather than an error — this is a
/// debugging aid, not a validator.
pub fn summarize(raw: &Bytes) -> String {
    let Ok(eth) = EthernetFrame::parse(raw.clone()) else {
        return format!("<unparsable {}B frame>", raw.len());
    };
    match eth.ethertype {
        EtherType::Arp => match ArpPacket::parse(&eth.payload) {
            Ok(arp) => arp.to_string(),
            Err(_) => format!("<malformed arp from {}>", eth.src),
        },
        EtherType::Ipv4 => summarize_ip(&eth),
        EtherType::Other(t) => {
            format!("eth {} > {} type=0x{t:04x} len={}", eth.src, eth.dst, eth.payload.len())
        }
    }
}

fn summarize_ip(eth: &EthernetFrame) -> String {
    let Ok(ip) = Ipv4Packet::parse(eth.payload.clone()) else {
        return format!("<malformed ip from {}>", eth.src);
    };
    match ip.protocol {
        IpProtocol::Tcp => match TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst) {
            Ok(seg) => summarize_tcp(&ip, &seg),
            Err(_) => format!("{} > {} <malformed tcp>", ip.src, ip.dst),
        },
        IpProtocol::Udp => match UdpDatagram::parse(ip.payload.clone(), ip.src, ip.dst) {
            Ok(udp) => format!(
                "{}:{} > {}:{} udp len={}",
                ip.src,
                udp.src_port,
                ip.dst,
                udp.dst_port,
                udp.payload.len()
            ),
            Err(_) => format!("{} > {} <malformed udp>", ip.src, ip.dst),
        },
        IpProtocol::Other(p) => {
            format!("{} > {} proto={p} len={}", ip.src, ip.dst, ip.payload.len())
        }
    }
}

fn summarize_tcp(ip: &Ipv4Packet, seg: &TcpSegment) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{}:{} > {}:{} [{}] seq={}",
        ip.src, seg.src_port, ip.dst, seg.dst_port, seg.flags, seg.seq
    );
    if seg.flags.contains(crate::tcp::TcpFlags::ACK) {
        let _ = write!(s, " ack={}", seg.ack);
    }
    let _ = write!(s, " win={}", seg.window);
    if !seg.payload.is_empty() {
        let _ = write!(s, " len={}", seg.payload.len());
    }
    if !seg.options.is_empty() {
        let _ = write!(s, " <");
        for (i, opt) in seg.options.iter().enumerate() {
            if i > 0 {
                let _ = write!(s, ", ");
            }
            match opt {
                TcpOption::Mss(v) => {
                    let _ = write!(s, "mss {v}");
                }
                TcpOption::WindowScale(v) => {
                    let _ = write!(s, "wscale {v}");
                }
                TcpOption::Timestamps { tsval, tsecr } => {
                    let _ = write!(s, "ts {tsval}/{tsecr}");
                }
                TcpOption::SackPermitted => {
                    let _ = write!(s, "sack-ok");
                }
                TcpOption::Sack { .. } => {
                    let _ = write!(s, "sack");
                    for (j, (lo, hi)) in opt.sack_blocks().iter().enumerate() {
                        let sep = if j == 0 { ' ' } else { ',' };
                        let _ = write!(s, "{sep}{lo}-{hi}");
                    }
                }
            }
        }
        let _ = write!(s, ">");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::MacAddr;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn wrap(ip: Ipv4Packet) -> Bytes {
        EthernetFrame::new(MacAddr::local(2), MacAddr::local(1), EtherType::Ipv4, ip.encode())
            .encode()
    }

    #[test]
    fn tcp_syn_summary() {
        let mut seg = TcpSegment::bare(40000, 80, 1234, 0, TcpFlags::SYN, 17520);
        seg.options = vec![TcpOption::Mss(1460), TcpOption::SackPermitted];
        let frame = wrap(Ipv4Packet::new(A, B, IpProtocol::Tcp, seg.encode(A, B)));
        assert_eq!(
            summarize(&frame),
            "10.0.0.1:40000 > 10.0.0.100:80 [S] seq=1234 win=17520 <mss 1460, sack-ok>"
        );
    }

    #[test]
    fn tcp_data_summary() {
        let mut seg = TcpSegment::bare(80, 40000, 7, 9, TcpFlags::ACK | TcpFlags::PSH, 512);
        seg.payload = Bytes::from_static(b"hello");
        let frame = wrap(Ipv4Packet::new(B, A, IpProtocol::Tcp, seg.encode(B, A)));
        assert_eq!(
            summarize(&frame),
            "10.0.0.100:80 > 10.0.0.1:40000 [PA] seq=7 ack=9 win=512 len=5"
        );
    }

    #[test]
    fn udp_and_arp_summaries() {
        let udp = UdpDatagram::new(7077, 7077, Bytes::from_static(b"hb"));
        let frame = wrap(Ipv4Packet::new(A, B, IpProtocol::Udp, udp.encode(A, B)));
        assert_eq!(summarize(&frame), "10.0.0.1:7077 > 10.0.0.100:7077 udp len=2");

        let arp = ArpPacket::request(MacAddr::local(1), A, B);
        let raw =
            EthernetFrame::new(MacAddr::BROADCAST, MacAddr::local(1), EtherType::Arp, arp.encode())
                .encode();
        assert!(summarize(&raw).starts_with("arp who-has 10.0.0.100"));
    }

    #[test]
    fn garbage_is_harmless() {
        assert_eq!(summarize(&Bytes::from_static(&[1, 2, 3])), "<unparsable 3B frame>");
        let junk = EthernetFrame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            EtherType::Ipv4,
            Bytes::from_static(b"nope"),
        );
        assert!(summarize(&junk.encode()).contains("malformed ip"));
    }
}
