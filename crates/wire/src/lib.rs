//! Wire formats for the ST-TCP network substrate.
//!
//! This crate implements, from scratch, the packet formats that the
//! ST-TCP reproduction exchanges over the simulated Ethernet:
//!
//! * [`ethernet`] — Ethernet II frames and [`MacAddr`]s, including the
//!   unicast-IP → multicast-MAC mapping the paper uses to tap switched
//!   Ethernet (§3.1 of the paper),
//! * [`arp`] — ARP requests/replies (needed for the static-ARP tapping
//!   configuration),
//! * [`ipv4`] — IPv4 headers with internet checksums,
//! * [`udp`] — UDP datagrams (the primary↔backup side channel),
//! * [`tcp`] — TCP segments with the option kinds the paper's prototype
//!   relies on (MSS; timestamps exist but are disabled in the experiments,
//!   exactly as in §6 of the paper).
//!
//! Every format round-trips through [`bytes::Bytes`] buffers: `encode`
//! produces the on-wire representation and `parse` validates and decodes
//! it, returning a [`ParseError`] on malformed input. Checksums are always
//! computed on encode and verified on parse, so the simulator can corrupt
//! frames and the stacks will reject them like real hardware would.
//!
//! # Example
//!
//! ```
//! use wire::{EthernetFrame, EtherType, MacAddr};
//! use bytes::Bytes;
//!
//! # fn main() -> Result<(), wire::ParseError> {
//! let frame = EthernetFrame::new(
//!     MacAddr::BROADCAST,
//!     MacAddr::new([0, 1, 2, 3, 4, 5]),
//!     EtherType::Arp,
//!     Bytes::from_static(b"payload"),
//! );
//! let raw = frame.encode();
//! let back = EthernetFrame::parse(raw)?;
//! assert_eq!(back.ethertype, EtherType::Arp);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod frame;
pub mod ipv4;
pub mod summary;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use error::ParseError;
pub use ethernet::{EtherType, EthernetFrame, MacAddr};
pub use frame::{FrameBuilder, TcpFrameHeader};
pub use ipv4::{IpProtocol, Ipv4Packet};
pub use summary::summarize;
pub use tcp::{TcpFlags, TcpOption, TcpSegment};
pub use udp::UdpDatagram;

/// Convenience alias: IPv4 addresses are the std type.
pub use std::net::Ipv4Addr;
