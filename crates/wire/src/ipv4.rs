//! IPv4 packets (RFC 791), without fragmentation.
//!
//! Fragmentation is deliberately unsupported: the simulated LAN has a
//! uniform 1500-byte MTU and the TCP stack performs MSS-based
//! segmentation, which matches the paper's testbed (a single Ethernet
//! LAN). The Don't Fragment bit is always set on encode.

use crate::checksum::{checksum, Checksum};
use crate::error::{need, ParseError};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol carried in an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// TCP, protocol number 6.
    Tcp,
    /// UDP, protocol number 17.
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// The 8-bit protocol number.
    pub const fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Decodes a protocol number.
    pub const fn from_u8(v: u8) -> Self {
        match v {
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
            IpProtocol::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// Default initial TTL used on encode.
pub const DEFAULT_TTL: u8 = 64;

/// An IPv4 packet (no options, no fragments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Identification field (used only for diagnostics here, since DF is set).
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport payload.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Builds a packet with [`DEFAULT_TTL`] and a zero ident.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Bytes) -> Self {
        Ipv4Packet { ident: 0, ttl: DEFAULT_TTL, protocol, src, dst, payload }
    }

    /// Serializes to on-wire bytes with a correct header checksum.
    pub fn encode(&self) -> Bytes {
        let total_len = HEADER_LEN + self.payload.len();
        debug_assert!(total_len <= u16::MAX as usize, "IPv4 packet too large");
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // flags: DF, fragment offset 0
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol.to_u8());
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        let csum = checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses and validates on-wire bytes.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] — shorter than the header.
    /// * [`ParseError::BadVersion`] — version field ≠ 4.
    /// * [`ParseError::BadHeaderLength`] — IHL < 5 or longer than buffer.
    /// * [`ParseError::BadTotalLength`] — total length disagrees with buffer.
    /// * [`ParseError::BadChecksum`] — header checksum mismatch.
    pub fn parse(raw: Bytes) -> Result<Self, ParseError> {
        need(&raw, HEADER_LEN)?;
        let version = raw[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion(version));
        }
        let ihl = usize::from(raw[0] & 0x0F) * 4;
        if ihl < HEADER_LEN || ihl > raw.len() {
            return Err(ParseError::BadHeaderLength(ihl));
        }
        let total_len = usize::from(u16::from_be_bytes([raw[2], raw[3]]));
        if total_len < ihl || total_len > raw.len() {
            return Err(ParseError::BadTotalLength { claimed: total_len, got: raw.len() });
        }
        let mut c = Checksum::new();
        c.add_bytes(&raw[..ihl]);
        let folded = c.finish();
        if folded != 0 {
            let found = u16::from_be_bytes([raw[10], raw[11]]);
            return Err(ParseError::BadChecksum { found, expected: found.wrapping_add(folded) });
        }
        Ok(Ipv4Packet {
            ident: u16::from_be_bytes([raw[4], raw[5]]),
            ttl: raw[8],
            protocol: IpProtocol::from_u8(raw[9]),
            src: Ipv4Addr::new(raw[12], raw[13], raw[14], raw[15]),
            dst: Ipv4Addr::new(raw[16], raw[17], raw[18], raw[19]),
            payload: raw.slice(ihl..total_len),
        })
    }
}

impl fmt::Display for Ipv4Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ip {} -> {} {} ({}B)", self.src, self.dst, self.protocol, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 100),
            IpProtocol::Tcp,
            Bytes::from_static(b"hello world"),
        )
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(Ipv4Packet::parse(p.encode()).unwrap(), p);
    }

    #[test]
    fn corrupted_header_rejected() {
        let mut raw = sample().encode().to_vec();
        raw[16] ^= 0xFF; // flip destination octet
        assert!(matches!(Ipv4Packet::parse(Bytes::from(raw)), Err(ParseError::BadChecksum { .. })));
    }

    #[test]
    fn version_checked() {
        let mut raw = sample().encode().to_vec();
        raw[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::parse(Bytes::from(raw)), Err(ParseError::BadVersion(6)));
    }

    #[test]
    fn total_length_checked() {
        let mut raw = sample().encode().to_vec();
        let bogus = (raw.len() + 1) as u16;
        raw[2..4].copy_from_slice(&bogus.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::parse(Bytes::from(raw)),
            Err(ParseError::BadTotalLength { .. })
        ));
    }

    #[test]
    fn trailing_padding_ignored() {
        // Ethernet minimum-frame padding appends junk past total_length;
        // the parser must slice payload by total_length, not buffer end.
        let p = sample();
        let mut raw = p.encode().to_vec();
        raw.extend_from_slice(&[0xEE; 9]);
        let parsed = Ipv4Packet::parse(Bytes::from(raw)).unwrap();
        assert_eq!(parsed.payload, p.payload);
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(IpProtocol::Tcp.to_u8(), 6);
        assert_eq!(IpProtocol::Udp.to_u8(), 17);
        assert_eq!(IpProtocol::from_u8(89), IpProtocol::Other(89));
        assert_eq!(IpProtocol::from_u8(6), IpProtocol::Tcp);
    }

    #[test]
    fn empty_payload_ok() {
        let p = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProtocol::Udp,
            Bytes::new(),
        );
        let parsed = Ipv4Packet::parse(p.encode()).unwrap();
        assert!(parsed.payload.is_empty());
    }
}
