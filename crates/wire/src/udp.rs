//! UDP datagrams (RFC 768).
//!
//! ST-TCP uses a UDP channel between the primary and the backup for backup
//! acknowledgments, missing-segment requests, and heartbeats (paper §4.2);
//! this module provides the wire encoding for that channel.

use crate::checksum::{pseudo_header_sum, Checksum};
use crate::error::{need, ParseError};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Builds a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram { src_port, dst_port, payload }
    }

    /// Serializes with a correct checksum over the IPv4 pseudo-header.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let len = HEADER_LEN + self.payload.len();
        debug_assert!(len <= u16::MAX as usize, "UDP datagram too large");
        let mut buf = BytesMut::with_capacity(len);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(len as u16);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.payload);
        let mut c = Checksum::new();
        c.add_sum(pseudo_header_sum(src, dst, 17, len as u16));
        c.add_bytes(&buf);
        let mut csum = c.finish();
        if csum == 0 {
            csum = 0xFFFF; // RFC 768: transmitted zero means "no checksum"
        }
        buf[6..8].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Parses and validates a datagram carried between `src` and `dst`.
    ///
    /// # Errors
    ///
    /// * [`ParseError::Truncated`] — shorter than 8 bytes or than the
    ///   length field claims.
    /// * [`ParseError::BadChecksum`] — pseudo-header checksum mismatch.
    pub fn parse(raw: Bytes, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, ParseError> {
        need(&raw, HEADER_LEN)?;
        let len = usize::from(u16::from_be_bytes([raw[4], raw[5]]));
        if len < HEADER_LEN || len > raw.len() {
            return Err(ParseError::Truncated { needed: len.max(HEADER_LEN), got: raw.len() });
        }
        let found = u16::from_be_bytes([raw[6], raw[7]]);
        if found != 0 {
            let mut c = Checksum::new();
            c.add_sum(pseudo_header_sum(src, dst, 17, len as u16));
            c.add_bytes(&raw[..len]);
            if c.finish() != 0 {
                return Err(ParseError::BadChecksum { found, expected: 0 });
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([raw[0], raw[1]]),
            dst_port: u16::from_be_bytes([raw[2], raw[3]]),
            payload: raw.slice(HEADER_LEN..len),
        })
    }
}

impl fmt::Display for UdpDatagram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "udp :{} -> :{} ({}B)", self.src_port, self.dst_port, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(5000, 6000, Bytes::from_static(b"heartbeat"));
        let parsed = UdpDatagram::parse(d.encode(A, B), A, B).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn checksum_covers_addresses() {
        // Same bytes delivered to the wrong destination must fail, which
        // is what protects the side channel against misdelivery.
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"x"));
        let raw = d.encode(A, B);
        assert!(matches!(
            UdpDatagram::parse(raw, A, Ipv4Addr::new(10, 0, 0, 3)),
            Err(ParseError::BadChecksum { .. })
        ));
    }

    #[test]
    fn corrupted_payload_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abcd"));
        let mut raw = d.encode(A, B).to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        assert!(UdpDatagram::parse(Bytes::from(raw), A, B).is_err());
    }

    #[test]
    fn length_field_truncation_rejected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abcd"));
        let raw = d.encode(A, B);
        assert!(UdpDatagram::parse(raw.slice(..raw.len() - 2), A, B).is_err());
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram::new(9, 10, Bytes::new());
        let parsed = UdpDatagram::parse(d.encode(A, B), A, B).unwrap();
        assert!(parsed.payload.is_empty());
    }

    #[test]
    fn trailing_padding_ignored() {
        let d = UdpDatagram::new(7, 8, Bytes::from_static(b"pad"));
        let mut raw = d.encode(A, B).to_vec();
        raw.extend_from_slice(&[0u8; 6]);
        let parsed = UdpDatagram::parse(Bytes::from(raw), A, B).unwrap();
        assert_eq!(parsed.payload, Bytes::from_static(b"pad"));
    }
}
