//! Ethernet II frames and MAC addresses.
//!
//! Includes the unicast-IP → multicast-MAC mapping ST-TCP uses to make a
//! switch flood service traffic to the backup's tap (paper §3.1): the
//! service IP `SVI` maps to the fixed multicast Ethernet address `SME`
//! that both the primary's and backup's virtual NICs are programmed with.

use crate::error::{need, ParseError};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// The all-zero address, used as "unknown" in ARP requests.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A deterministic locally-administered unicast address for test
    /// topologies: `02:00:00:00:00:<n>` style, spreading `n` over the low
    /// four octets.
    pub const fn local(n: u32) -> Self {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Returns true for group (multicast or broadcast) addresses — the
    /// I/G bit of the first octet is set.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns true for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// The IANA-style IPv4-multicast MAC mapping `01:00:5e` + low 23 bits
    /// of the address.
    ///
    /// ST-TCP maps the *unicast* service IP onto this multicast MAC (the
    /// `SME` of the paper) so that a learning switch never associates the
    /// service traffic with a single port and instead floods it to the
    /// backup as well. The paper notes RFC 1812 forbids routers from
    /// accepting a multicast MAC in an ARP reply, hence the *static* ARP
    /// entries installed in the gateway and primary.
    pub const fn multicast_for_ip(ip: Ipv4Addr) -> Self {
        let o = ip.octets();
        MacAddr([0x01, 0x00, 0x5E, o[1] & 0x7F, o[2], o[3]])
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// The EtherType of an Ethernet II frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806`.
    Arp,
    /// Any other value, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit on-wire value.
    pub const fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Decodes the on-wire value.
    pub const fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "IPv4"),
            EtherType::Arp => write!(f, "ARP"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// Length of the Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;

/// An Ethernet II frame.
///
/// The frame check sequence is not modelled; the simulator delivers frames
/// intact or corrupts payloads, in which case the higher-layer checksums
/// catch it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Payload bytes (not padded to the 46-byte Ethernet minimum; the
    /// simulator accounts for minimum frame size when timing serialization).
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Builds a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame { dst, src, ethertype, payload }
    }

    /// Serializes to on-wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype.to_u16());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses on-wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Truncated`] if shorter than the 14-byte header.
    pub fn parse(raw: Bytes) -> Result<Self, ParseError> {
        need(&raw, HEADER_LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&raw[0..6]);
        src.copy_from_slice(&raw[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([raw[12], raw[13]]));
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: raw.slice(HEADER_LEN..),
        })
    }

    /// Total on-wire length in bytes, including header.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

impl fmt::Display for EthernetFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eth {} -> {} {} ({}B)", self.src, self.dst, self.ethertype, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = EthernetFrame::new(
            MacAddr::local(7),
            MacAddr::local(9),
            EtherType::Ipv4,
            Bytes::from_static(&[1, 2, 3]),
        );
        let parsed = EthernetFrame::parse(f.encode()).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.wire_len(), 17);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EthernetFrame::parse(Bytes::from_static(&[0; 13])),
            Err(ParseError::Truncated { needed: 14, got: 13 })
        ));
    }

    #[test]
    fn multicast_bit() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::local(1).is_multicast());
        let sme = MacAddr::multicast_for_ip(Ipv4Addr::new(10, 0, 0, 100));
        assert!(sme.is_multicast());
        assert!(!sme.is_broadcast());
    }

    #[test]
    fn multicast_mapping_masks_high_bit() {
        // 232 = 0xE8; high bit must be cleared: 0x68.
        let m = MacAddr::multicast_for_ip(Ipv4Addr::new(10, 232, 1, 2));
        assert_eq!(m.octets(), [0x01, 0x00, 0x5E, 0x68, 1, 2]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MacAddr::local(0xAB).to_string(), "02:00:00:00:00:ab");
        assert_eq!(EtherType::Other(0xBEEF).to_string(), "0xbeef");
    }

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x86DD, 0x1234] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
    }

    #[test]
    fn local_addrs_distinct() {
        let a: Vec<MacAddr> = (0..100).map(MacAddr::local).collect();
        let mut b = a.clone();
        b.dedup();
        assert_eq!(a.len(), b.len());
    }
}
