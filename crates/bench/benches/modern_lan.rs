//! ST-TCP on a modern LAN — beyond the paper's 2003 testbed.
//!
//! 1 Gbit links, 50 µs one-way latency per hop (200 µs RTT), RFC 1323
//! window scaling with 1 MB buffers, and 10 ms heartbeats. The paper's
//! architecture carries over unchanged; what matters is whether the
//! tapping/shadow machinery keeps up at 3 orders of magnitude more
//! throughput and whether failover stays proportionally fast.

use apps::Workload;
use netsim::{LinkSpec, SimDuration, SimTime};
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::SttcpConfig;
use sttcp_bench::{fmt_s, Table};

fn modern_spec(workload: Workload) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(workload);
    spec.link = LinkSpec::lan()
        .with_bandwidth_bps(1_000_000_000)
        .with_latency(SimDuration::from_micros(50));
    spec.tcp.recv_buf = 1 << 20;
    spec.tcp.send_buf = 2 << 20;
    spec.tcp.window_scale = Some(5); // 1 MB >> 5 = 32 KB fits the field
    spec
}

fn main() {
    let mut table = Table::new(
        "Modern LAN (1 Gbit, 200 us RTT, 1 MB scaled windows, 10 ms HB)",
        &["workload", "no_fail_s", "throughput_MBps", "with_fail_s", "failover_s"],
    );
    let hb = SimDuration::from_millis(10);
    for (name, workload, mb) in [
        ("Bulk 100MB", Workload::bulk_mb(100), 100.0),
        ("Bulk 500MB", Workload::bulk_mb(500), 500.0),
        ("Upload 100MB", Workload::upload_mb(100), 100.0),
    ] {
        let no_fail = {
            let spec =
                modern_spec(workload).st_tcp(SttcpConfig::new(addrs::VIP, 80).with_hb_interval(hb));
            let mut s = build(&spec);
            let m = s.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
            assert!(m.verified_clean());
            m.total_time().unwrap().as_secs_f64()
        };
        let with_fail = {
            let crash = SimTime::ZERO + SimDuration::from_secs_f64((no_fail * 0.5).max(0.02));
            let spec = modern_spec(workload)
                .st_tcp(SttcpConfig::new(addrs::VIP, 80).with_hb_interval(hb))
                .faults(FaultSpec::crash_primary_at(crash));
            let mut s = build(&spec);
            let m = s.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
            assert!(m.verified_clean());
            m.total_time().unwrap().as_secs_f64()
        };
        let throughput = mb * 1.048576 / no_fail;
        table.row(vec![
            name.into(),
            fmt_s(no_fail),
            format!("{throughput:.1}"),
            fmt_s(with_fail),
            fmt_s(with_fail - no_fail),
        ]);
        assert!(throughput > 50.0, "{name}: scaled windows must beat the 64 KB ceiling by far");
        assert!(
            with_fail - no_fail < 1.5,
            "{name}: failover on a modern LAN must stay within ~3 HB + backoff"
        );
    }
    table.emit("modern_lan");
    println!(
        "The 2003 protocol runs unchanged at gigabit speed; failover still ≈ detection + RTO."
    );
}
