//! ST-TCP vs an FT-TCP-style cold standby (paper §2, Related Work).
//!
//! "The failover time in FT-TCP can be fairly large. This is because a
//! failover in FT-TCP requires failure detection, time for the backup
//! server to start, and time to update the backup server state from
//! all the data saved in the logger (which could be quite large for
//! long running applications). … ST-TCP, on the other hand provides a
//! very fast failover."
//!
//! Both deployments run on the identical substrate with identical
//! detection (3 × 50 ms heartbeats); they differ only in takeover
//! policy. The cold standby pays a fixed restart (500 ms, generous to
//! FT-TCP) plus history replay at 10 MB/s (paper-era disk+CPU). The crash lands at a fixed
//! fraction of the transfer, so the connection history — and therefore
//! the FT-TCP replay cost — grows with transfer size while ST-TCP's
//! failover stays flat. That divergence *is* the paper's argument for
//! active backups.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use sttcp::config::TakeoverPolicy;
use sttcp::scenario::{build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp_bench::{fmt_s, quick_mode, st_cfg, Table};

const RESTART: SimDuration = SimDuration::from_millis(500);
const REPLAY_BPS: u64 = 10 * 1024 * 1024;

fn run_one(workload: Workload, policy: TakeoverPolicy) -> (f64, f64) {
    // Failure-free reference.
    let no_fail = sttcp_bench::st_tcp_time(workload, SimDuration::from_millis(50));
    let crash_at = (no_fail * 0.5).max(0.05);
    let mut cfg = st_cfg(SimDuration::from_millis(50));
    cfg.takeover_policy = policy;
    let spec = ScenarioSpec::new(workload)
        .st_tcp(cfg)
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_secs_f64(crash_at)));
    let mut scenario = build(&spec);
    let m = scenario.run(RunLimits::time(SimDuration::from_secs(3600))).expect_completed();
    assert!(m.verified_clean());
    let with_fail = m.total_time().expect("finished").as_secs_f64();
    (no_fail, with_fail - no_fail)
}

fn main() {
    let sizes: &[u64] = if quick_mode() { &[1, 5] } else { &[1, 5, 20, 100] };
    let mut table = Table::new(
        "ST-TCP vs FT-TCP-style cold standby: failover time (s), crash at 50% of a bulk transfer",
        &["transfer", "st_tcp_failover", "ftcp_failover", "ftcp/st ratio"],
    );
    for &mb in sizes {
        let w = Workload::bulk_mb(mb);
        let (_, st) = run_one(w, TakeoverPolicy::Active);
        let (_, ftcp) = run_one(
            w,
            TakeoverPolicy::ColdReplay { restart_delay: RESTART, replay_rate_bps: REPLAY_BPS },
        );
        table.row(vec![
            format!("{mb}MB"),
            fmt_s(st),
            fmt_s(ftcp),
            format!("{:.1}x", ftcp / st.max(1e-9)),
        ]);
        assert!(ftcp > st, "cold replay must cost more than active takeover");
    }
    table.emit("ftcp_comparison");
    println!("ST-TCP failover is history-independent; the cold standby's grows with the");
    println!("connection history — the paper's §2 case for paying for an active backup.");
}
