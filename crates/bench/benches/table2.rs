//! **Table 2** — "ST-TCP failover time for the three applications":
//! failover time (s) per workload at heartbeat intervals of 5 s, 1 s,
//! 200 ms, 50 ms, measured exactly as the paper does — total time of a
//! run with a mid-run primary crash minus the failure-free total.
//!
//! Paper values for reference (Echo column): 22.309 / 5.524 / 0.953 /
//! 0.219 s. The reproduced *shape*: failover is dominated by
//! 3–4 heartbeat intervals of detection plus the client/server RTO
//! backoff alignment, so it scales linearly with the HB interval and
//! lands in the hundreds of milliseconds at 50 ms HB.

use sttcp_bench::{fmt_s, measure_failover, workload_grid_env, Table, HB_GRID};

fn main() {
    let workloads = workload_grid_env();
    let mut header = vec!["config"];
    header.extend(workloads.iter().map(|(name, _)| *name));
    let mut table = Table::new("Table 2: failover time (s)", &header);
    let mut detect_table =
        Table::new("Table 2 (supplement): detection latency (s), crash -> takeover", &header);

    for (hb_name, hb) in HB_GRID {
        let mut row = vec![format!("ST-TCP {hb_name} HB")];
        let mut drow = vec![format!("ST-TCP {hb_name} HB")];
        for &(_, w) in &workloads {
            let m = measure_failover(w, hb);
            row.push(fmt_s(m.failover()));
            drow.push(fmt_s(m.detection()));
            // Detection must sit in (3, 4] heartbeat intervals (+ one
            // tick of scheduling slack).
            let hb_s = hb.as_secs_f64();
            assert!(
                m.detection() > 2.9 * hb_s && m.detection() < 5.1 * hb_s,
                "detection {:.3}s outside 3-5 HB intervals of {hb_s}s",
                m.detection()
            );
        }
        table.row(row);
        detect_table.row(drow);
    }

    table.emit("table2");
    detect_table.emit("table2_detection");
    println!("Failover scales with the HB interval; sub-second at 50 ms HB, as in the paper.");
}
