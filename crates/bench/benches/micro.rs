//! Micro-benchmarks for the substrate: wire codecs, the simulator's
//! event loop, the TCP stack's data path, and a full echo-exchange
//! scenario. These quantify simulation cost (events/sec), not the
//! paper's results — Tables 1–2 and Figures 5–6 have their own bench
//! targets.
//!
//! Harness-free like the rest of the suite: each case is timed over a
//! fixed iteration count and reported as ns/iter plus derived
//! throughput where a byte count applies.

use bytes::Bytes;
use netsim::node::{Context, Node, PortId};
use netsim::{LinkSpec, SimDuration, Simulator};
use std::net::Ipv4Addr;
use std::time::Instant;
use sttcp_bench::Table;
use wire::{
    checksum, EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpSegment,
};

/// Times `f` over `iters` runs and returns mean ns/iter.
fn time<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    // One warm-up pass keeps first-touch costs out of the mean.
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn throughput(bytes: usize, ns_per_iter: f64) -> String {
    let mbps = bytes as f64 / ns_per_iter * 1e9 / 1e6;
    format!("{mbps:.0} MB/s")
}

/// A pair of nodes ping-ponging a frame forever: measures raw simulator
/// event throughput.
struct Pinger;

impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.send_frame(PortId(0), Bytes::from_static(&[0u8; 64]));
    }

    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        ctx.send_frame(port, frame);
    }
}

fn main() {
    let mut table = Table::new("Micro-benchmarks", &["case", "ns/iter", "throughput"]);

    for size in [64usize, 1460, 9000] {
        let data = vec![0xA5u8; size];
        let ns = time(20_000, || checksum::checksum(std::hint::black_box(&data)));
        table.row(vec![
            format!("internet_checksum_{size}B"),
            format!("{ns:.0}"),
            throughput(size, ns),
        ]);
    }

    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 100);
    let mut seg = TcpSegment::bare(40000, 80, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 16384);
    seg.payload = Bytes::from(vec![0x42u8; 1460]);
    let ip = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.encode(src, dst));
    let eth =
        EthernetFrame::new(MacAddr::local(1), MacAddr::local(2), EtherType::Ipv4, ip.encode());
    let raw = eth.encode();
    let frame_len = raw.len();

    let ns = time(20_000, || {
        let s = seg.encode(src, dst);
        let i = Ipv4Packet::new(src, dst, IpProtocol::Tcp, s).encode();
        EthernetFrame::new(MacAddr::local(1), MacAddr::local(2), EtherType::Ipv4, i).encode()
    });
    table.row(vec![
        "encode_full_frame_1460B".into(),
        format!("{ns:.0}"),
        throughput(frame_len, ns),
    ]);

    let ns = time(20_000, || {
        let e = EthernetFrame::parse(raw.clone()).unwrap();
        let i = Ipv4Packet::parse(e.payload).unwrap();
        TcpSegment::parse(i.payload.clone(), i.src, i.dst).unwrap()
    });
    table.row(vec!["parse_full_frame_1460B".into(), format!("{ns:.0}"), throughput(frame_len, ns)]);

    let ns = time(50, || {
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Pinger);
        let z = sim.add_node("z", Pinger);
        sim.connect(
            a,
            PortId(0),
            z,
            PortId(0),
            LinkSpec::ideal().with_latency(SimDuration::from_micros(1)),
        );
        sim.run_until_idle(10_000)
    });
    table.row(vec![
        "event_loop_10k_frame_hops".into(),
        format!("{ns:.0}"),
        format!("{:.2} Mev/s", 10_000.0 / ns * 1e9 / 1e6),
    ]);

    {
        use apps::Workload;
        use sttcp::scenario::{addrs, build, RunLimits, ScenarioSpec};
        use sttcp::SttcpConfig;

        let ns = time(10, || {
            let mut s = build(&ScenarioSpec::new(Workload::Echo { requests: 100 }));
            s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed()
        });
        table.row(vec!["echo100_standard_tcp".into(), format!("{ns:.0}"), String::new()]);

        let ns = time(10, || {
            let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
                .st_tcp(SttcpConfig::new(addrs::VIP, 80));
            let mut s = build(&spec);
            s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed()
        });
        table.row(vec!["echo100_st_tcp_50ms_hb".into(), format!("{ns:.0}"), String::new()]);

        let ns = time(10, || {
            let spec =
                ScenarioSpec::new(Workload::bulk_mb(1)).st_tcp(SttcpConfig::new(addrs::VIP, 80));
            let mut s = build(&spec);
            s.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed()
        });
        table.row(vec!["bulk1mb_st_tcp".into(), format!("{ns:.0}"), String::new()]);
    }

    table.emit("micro");
}
