//! Criterion micro-benchmarks for the substrate: wire codecs, the
//! simulator's event loop, the TCP stack's data path, and a full
//! echo-exchange scenario. These quantify simulation cost (events/sec),
//! not the paper's results — Tables 1–2 and Figures 5–6 have their own
//! harness-free bench targets.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::node::{Context, Node, PortId};
use netsim::{LinkSpec, SimDuration, Simulator};
use std::net::Ipv4Addr;
use wire::{checksum, EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags, TcpSegment};

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for size in [64usize, 1460, 9000] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("internet_checksum_{size}B"), |b| {
            b.iter(|| checksum::checksum(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 100);
    let mut seg = TcpSegment::bare(40000, 80, 1, 2, TcpFlags::ACK | TcpFlags::PSH, 16384);
    seg.payload = Bytes::from(vec![0x42u8; 1460]);
    let ip = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.encode(src, dst));
    let eth = EthernetFrame::new(MacAddr::local(1), MacAddr::local(2), EtherType::Ipv4, ip.encode());
    let raw = eth.encode();

    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("encode_full_frame_1460B", |b| {
        b.iter(|| {
            let s = seg.encode(src, dst);
            let i = Ipv4Packet::new(src, dst, IpProtocol::Tcp, s).encode();
            EthernetFrame::new(MacAddr::local(1), MacAddr::local(2), EtherType::Ipv4, i).encode()
        })
    });
    g.bench_function("parse_full_frame_1460B", |b| {
        b.iter(|| {
            let e = EthernetFrame::parse(raw.clone()).unwrap();
            let i = Ipv4Packet::parse(e.payload).unwrap();
            TcpSegment::parse(i.payload.clone(), i.src, i.dst).unwrap()
        })
    });
    g.finish();
}

/// A pair of nodes ping-ponging a frame forever: measures raw simulator
/// event throughput.
struct Pinger;
impl Node for Pinger {
    fn on_start(&mut self, ctx: &mut Context) {
        ctx.send_frame(PortId(0), Bytes::from_static(&[0u8; 64]));
    }
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        ctx.send_frame(port, frame);
    }
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.bench_function("event_loop_10k_frame_hops", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let a = sim.add_node("a", Pinger);
            let z = sim.add_node("z", Pinger);
            sim.connect(a, PortId(0), z, PortId(0), LinkSpec::ideal().with_latency(SimDuration::from_micros(1)));
            sim.run_until_idle(10_000)
        })
    });
    g.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    use apps::Workload;
    use sttcp::scenario::{addrs, build, ScenarioSpec};
    use sttcp::SttcpConfig;

    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("echo100_standard_tcp", |b| {
        b.iter(|| {
            let mut s = build(&ScenarioSpec::new(Workload::Echo { requests: 100 }));
            s.run_to_completion(SimDuration::from_secs(60))
        })
    });
    g.bench_function("echo100_st_tcp_50ms_hb", |b| {
        b.iter(|| {
            let spec = ScenarioSpec::new(Workload::Echo { requests: 100 })
                .st_tcp(SttcpConfig::new(addrs::VIP, 80));
            let mut s = build(&spec);
            s.run_to_completion(SimDuration::from_secs(60))
        })
    });
    g.bench_function("bulk1mb_st_tcp", |b| {
        b.iter(|| {
            let spec =
                ScenarioSpec::new(Workload::bulk_mb(1)).st_tcp(SttcpConfig::new(addrs::VIP, 80));
            let mut s = build(&spec);
            s.run_to_completion(SimDuration::from_secs(60))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_checksum, bench_codec, bench_simulator, bench_scenarios);
criterion_main!(benches);
