//! Failover time vs crash *phase* — the structure behind Table 2's
//! variance.
//!
//! §6.2: "The second parameter determining the failover time is the
//! increase in the value of the TCP retransmission timeout (RTO) during
//! the time the backup took to detect the failure." Detection quantizes
//! to the heartbeat schedule and recovery to the exponential backoff
//! schedule (200 ms · 2^k), so failover as a function of *when* the
//! crash lands is a staircase, not a constant. The paper reports single
//! averaged numbers; the deterministic simulator can show the whole
//! function.

use apps::Workload;
use netsim::{SimDuration, SimTime};
use sttcp::scenario::{build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp_bench::{fmt_s, st_cfg, Table};

fn main() {
    let hb = SimDuration::from_millis(200);
    let no_fail = sttcp_bench::st_tcp_time(Workload::echo(), hb);
    let mut table = Table::new(
        "Failover time vs crash instant (Echo x100, 200 ms HB)",
        &["crash_at_s", "total_s", "failover_s", "detection_s"],
    );
    let mut values = Vec::new();
    for i in 1..=18 {
        let crash_at = no_fail * (i as f64 / 20.0);
        let spec = ScenarioSpec::new(Workload::echo()).st_tcp(st_cfg(hb)).faults(
            FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_secs_f64(crash_at)),
        );
        let mut scenario = build(&spec);
        let m = scenario.run(RunLimits::time(SimDuration::from_secs(120))).expect_completed();
        assert!(m.verified_clean());
        let total = m.total_time().unwrap().as_secs_f64();
        let takeover = scenario.backup().unwrap().takeover_at().unwrap().as_secs_f64();
        let failover = total - no_fail;
        values.push(failover);
        table.row(vec![
            format!("{crash_at:.3}"),
            fmt_s(total),
            fmt_s(failover),
            fmt_s(takeover - crash_at),
        ]);
    }
    table.emit("crash_phase");
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "failover ranges {:.3}..{:.3}s purely from crash phase — the spread the paper's\n\
         'repeated at least three times and averaged' methodology was absorbing.",
        min, max
    );
    assert!(max - min > 0.1, "phase dependence should be visible at 200 ms HB");
    // Everything stays within detection (3-4 HB) + one backoff step of slack.
    assert!(min > 0.4 && max < 3.0, "200ms-HB failover out of plausible range: {min}..{max}");
}
