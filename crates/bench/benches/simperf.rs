//! simperf — simulator throughput benchmark.
//!
//! Measures how fast the simulator itself runs (wall time and simulator
//! events per wall-clock second) on the Echo and Bulk-100MB scenarios
//! plus the `conn_scale_{100,1k,10k}` fleet scenarios, and appends the
//! numbers to `BENCH_simperf.json` at the repo root so the performance
//! trajectory is tracked across changes.
//!
//! The `conn_scale_*` cases drive the seeded mixed-workload fleet
//! generator (`sttcp::fleet`) at 100 / 1 000 / 10 000 clients and
//! assert the O(1)-demux contract: events/sec at 10 k connections must
//! stay within 2× of events/sec at 100 (per-event cost must not grow
//! with connection count).
//!
//! The first run seeds the `baseline` section; later runs preserve it
//! and rewrite only `current`, so the file always shows current speed
//! against the recorded pre-optimization baseline.
//!
//! `STTCP_BENCH_QUICK=1` shrinks the bulk transfer to 1 MB, runs only
//! the 100-client fleet, and skips the file write — a smoke run for CI,
//! not a measurement.
//!
//! `STTCP_BENCH_CHECK=<factor>` turns the run into a perf guard: the
//! measured `bulk_100mb` and `conn_scale_100` wall times (best of
//! three, plus a small absolute slack for the millisecond-scale fleet
//! case) must stay within `factor ×` the references recorded in
//! `BENCH_simperf.json`
//! (the timed scenarios use the default no-op recorder, so this also
//! asserts the observability layer stays off the hot path). Guard mode
//! runs only the guarded cases and never rewrites the file.
//!
//! `STTCP_BENCH_TRACE_CHECK=<factor>` guards the recorder itself: the
//! ST-TCP bulk scenario and the 100-client fleet are each run twice
//! in-process — no-op recorder vs metrics + flight recorder — and the
//! enabled run must stay within `factor ×` the no-op wall time (best of
//! three each). Composes with `STTCP_BENCH_QUICK=1`; never touches the
//! report file.

use apps::Workload;
use netsim::{LinkProfile, SimDuration, SimTime};
use std::cell::Cell;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;
use sttcp::fleet::{self, FleetSpec};
use sttcp::scenario::{build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp::{build_cluster, ClusterFleetSpec};
use sttcp_bench::{quick_mode, st_cfg, Table};
use tcpstack::CongestionAlgo;
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, UdpDatagram};

struct Case {
    name: &'static str,
    wall_s: f64,
    events: u64,
    events_per_s: f64,
}

fn run_case(name: &'static str, spec: &ScenarioSpec) -> Case {
    let mut scenario = build(spec);
    let start = Instant::now();
    let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
    let wall_s = start.elapsed().as_secs_f64();
    assert!(metrics.verified_clean(), "{name}: byte-stream verification failed");
    let events = scenario.sim.trace().events_processed;
    Case { name, wall_s, events, events_per_s: events as f64 / wall_s }
}

fn run_fleet_case(name: &'static str, clients: usize) -> Case {
    let mut f = fleet::build(&FleetSpec::new(clients));
    let start = Instant::now();
    let done = f.run_until_done(SimDuration::from_secs(600));
    let wall_s = start.elapsed().as_secs_f64();
    assert!(done, "{name}: fleet did not complete");
    assert!(f.verified_clean(), "{name}: byte-stream verification failed");
    let events = f.sim.trace().events_processed;
    Case { name, wall_s, events, events_per_s: events as f64 / wall_s }
}

/// One WAN-profile congestion case: virtual completion time is the
/// deterministic regression metric (controller behaviour), wall time
/// the simulator-throughput one.
struct WanCase {
    name: &'static str,
    completion_s: f64,
    wall_s: f64,
    events: u64,
}

/// 20 MB bulk on `wan_high_bdp` with scaled windows and SACK — the
/// controller comparison surface (same setup as the
/// `wan_congestion` acceptance test in `sttcp`).
fn wan_bulk_spec(algo: CongestionAlgo) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(Workload::bulk_mb(20))
        .link_profile(LinkProfile::WanHighBdp)
        .congestion(algo)
        .with_sack();
    spec.tcp.recv_buf = 2 << 20;
    spec.tcp.send_buf = 4 << 20;
    spec.tcp.window_scale = Some(6);
    spec
}

/// ST-TCP failover mid-bulk on `wan_high_bdp`: crash the primary at
/// 700 ms with the congestion mirror on, measure end-to-end completion.
fn wan_failover_spec() -> ScenarioSpec {
    let mut spec = wan_bulk_spec(CongestionAlgo::Cubic)
        .st_tcp(st_cfg(SimDuration::from_millis(50)).with_cong_sync())
        .faults(FaultSpec::crash_primary_at(SimTime::ZERO + SimDuration::from_millis(700)));
    spec.workload = Workload::bulk_mb(5);
    spec
}

fn run_wan_case(name: &'static str, spec: &ScenarioSpec) -> WanCase {
    let mut scenario = build(spec);
    let start = Instant::now();
    let metrics = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
    let wall_s = start.elapsed().as_secs_f64();
    assert!(metrics.verified_clean(), "{name}: byte-stream verification failed");
    WanCase {
        name,
        completion_s: metrics.total_time().expect("completed").as_secs_f64(),
        wall_s,
        events: scenario.sim.trace().events_processed,
    }
}

fn run_wan_cases() -> Vec<WanCase> {
    let cases = vec![
        run_wan_case("wan_bdp_reno", &wan_bulk_spec(CongestionAlgo::Reno)),
        run_wan_case("wan_bdp_cubic", &wan_bulk_spec(CongestionAlgo::Cubic)),
        run_wan_case("wan_bdp_bbr", &wan_bulk_spec(CongestionAlgo::Bbr)),
        run_wan_case("failover_wan", &wan_failover_spec()),
    ];
    // The redesign's reason to exist: modern controllers must beat Reno
    // once the receive window stops binding.
    let secs = |name: &str| cases.iter().find(|c| c.name == name).unwrap().completion_s;
    assert!(
        secs("wan_bdp_cubic") < secs("wan_bdp_reno") && secs("wan_bdp_bbr") < secs("wan_bdp_reno"),
        "CUBIC ({:.2}s) and BBR ({:.2}s) must beat Reno ({:.2}s) on wan_high_bdp",
        secs("wan_bdp_cubic"),
        secs("wan_bdp_bbr"),
        secs("wan_bdp_reno"),
    );
    cases
}

fn json_wan(cases: &[WanCase]) -> String {
    let mut s = String::from("{");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "\"{}\": {{\"completion_s\": {:.3}, \"wall_s\": {:.3}, \"events\": {}}}",
            c.name, c.completion_s, c.wall_s, c.events
        );
    }
    s.push('}');
    s
}

/// One fault-free cluster run's side-channel economy.
struct SideChannelCase {
    backups: usize,
    side_datagrams: u64,
    side_bytes: u64,
    goodput_bytes: u64,
}

impl SideChannelCase {
    /// Side-channel bytes spent per goodput (response) byte delivered.
    fn overhead(&self) -> f64 {
        self.side_bytes as f64 / self.goodput_bytes as f64
    }
}

/// Runs a 20-client fault-free cluster fleet with `backups` shadows and
/// tallies the side-channel frames (UDP to the sync port) at their
/// origin hop — the switch's mirror fan-out is topology, not protocol
/// cost. Rank 1 speaks per-connection `BackupAck`s; deeper ranks flush
/// one `AckBatch` per sync tick, which is what keeps the growth in N
/// sub-linear.
fn run_side_channel_case(backups: usize) -> SideChannelCase {
    let spec = ClusterFleetSpec::new(20, backups);
    let side_port = spec.st_tcp.side_channel_port;
    let mut fleet = build_cluster(&spec);
    let server_ids: Vec<usize> = fleet.servers.iter().map(|n| n.0).collect();
    let tally = Rc::new(Cell::new((0u64, 0u64)));
    let handle = Rc::clone(&tally);
    fleet.sim.set_probe(move |ev| {
        if !server_ids.contains(&ev.from.0) {
            return;
        }
        let is_side = (|| {
            let eth = EthernetFrame::parse(ev.frame.clone()).ok()?;
            if eth.ethertype != EtherType::Ipv4 {
                return None;
            }
            let ip = Ipv4Packet::parse(eth.payload).ok()?;
            if ip.protocol != IpProtocol::Udp {
                return None;
            }
            let udp = UdpDatagram::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
            Some(udp.dst_port == side_port)
        })()
        .unwrap_or(false);
        if is_side {
            let (frames, bytes) = handle.get();
            handle.set((frames + 1, bytes + ev.frame.len() as u64));
        }
    });
    let done = fleet.run_until_done(SimDuration::from_secs(600));
    assert!(done, "side_channel_{backups}backups: fleet did not complete");
    assert!(fleet.verified_clean(), "side_channel_{backups}backups: corrupted stream");
    let (goodput_bytes, expected) = fleet.progress();
    assert_eq!(goodput_bytes, expected);
    let (side_datagrams, side_bytes) = tally.get();
    SideChannelCase { backups, side_datagrams, side_bytes, goodput_bytes }
}

fn json_side_channel(cases: &[SideChannelCase]) -> String {
    let mut s = String::from("{");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "\"side_channel_overhead_{}backups\": {{\"overhead\": {:.4}, \"side_bytes\": {}, \"side_datagrams\": {}, \"goodput_bytes\": {}}}",
            c.backups, c.overhead(), c.side_bytes, c.side_datagrams, c.goodput_bytes
        );
    }
    s.push('}');
    s
}

fn json_section(cases: &[Case]) -> String {
    // One line per section so a later run can carry the baseline over
    // without a JSON parser.
    let mut s = String::from("{");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "\"{}\": {{\"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}}}",
            c.name, c.wall_s, c.events, c.events_per_s
        );
    }
    s.push('}');
    s
}

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Pulls a one-line `"<key>": {...}` section out of a previous report,
/// if any.
fn previous_section(path: &std::path::Path, key: &str) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    let prefix = format!("\"{key}\":");
    text.lines()
        .find(|l| l.trim_start().starts_with(&prefix))
        .and_then(|l| l.find('{').map(|i| l[i..].trim_end().trim_end_matches(',').to_string()))
}

/// Extracts `wall_s` for one case from a one-line section.
fn wall_of(section: &str, case: &str) -> Option<f64> {
    let key = format!("\"{case}\": {{\"wall_s\": ");
    let i = section.find(&key)? + key.len();
    section[i..].split([',', '}']).next()?.trim().parse().ok()
}

/// Extracts `completion_s` for one case from a one-line `wan` section.
fn completion_of(section: &str, case: &str) -> Option<f64> {
    let key = format!("\"{case}\": {{\"completion_s\": ");
    let i = section.find(&key)? + key.len();
    section[i..].split([',', '}']).next()?.trim().parse().ok()
}

/// `STTCP_BENCH_CHECK=<factor>` — perf-guard mode.
fn check_factor() -> Option<f64> {
    std::env::var("STTCP_BENCH_CHECK").ok()?.parse().ok()
}

/// `STTCP_BENCH_TRACE_CHECK=<factor>` — recorder-overhead guard mode.
fn trace_check_factor() -> Option<f64> {
    std::env::var("STTCP_BENCH_TRACE_CHECK").ok()?.parse().ok()
}

/// Absolute slack added on top of the guard factor. The
/// `conn_scale_100` reference is milliseconds of wall time, where
/// process cold-start and scheduler noise dwarf any multiplicative
/// factor; the slack keeps the guard meaningful for long cases and
/// non-flaky for short ones.
const CHECK_SLACK_S: f64 = 0.1;

/// Perf-guard mode: run only the guarded cases (`bulk_100mb` and
/// `conn_scale_100`) and compare each against the `current` reference
/// committed in `BENCH_simperf.json` — best of three runs per case to
/// damp scheduler noise, like the trace check. In quick mode only the
/// fleet case is comparable (the 1 MB bulk has no committed reference).
fn run_perf_check(factor: f64, quick: bool, path: &std::path::Path) {
    let reference = previous_section(path, "current");
    let best = |run: &dyn Fn() -> Case| {
        (0..3).map(|_| run()).min_by(|a, b| a.wall_s.total_cmp(&b.wall_s)).unwrap()
    };
    let mut cases = Vec::new();
    if quick {
        eprintln!(
            "perf check (quick): bulk skipped — quick mode measures 1 MB, reference is 100 MB"
        );
    } else {
        cases.push(best(&|| run_case("bulk_100mb", &ScenarioSpec::new(Workload::bulk_mb(100)))));
    }
    cases.push(best(&|| run_fleet_case("conn_scale_100", 100)));
    let mut failed = false;
    for c in &cases {
        match reference.as_deref().and_then(|s| wall_of(s, c.name)) {
            Some(r) if c.wall_s <= r * factor + CHECK_SLACK_S => {
                println!(
                    "perf check ok: {} {:.3}s <= {r:.3}s x {factor} + {CHECK_SLACK_S}s",
                    c.name, c.wall_s
                );
            }
            Some(r) => {
                eprintln!(
                    "perf check FAILED: {} {:.3}s > {r:.3}s x {factor} + {CHECK_SLACK_S}s",
                    c.name, c.wall_s
                );
                failed = true;
            }
            None => eprintln!("perf check skipped: no {} reference in {}", c.name, path.display()),
        }
    }
    // WAN congestion guards: virtual completion time is deterministic,
    // so one run per case suffices and the factor only needs to absorb
    // intentional controller or link-profile tuning.
    let wan_reference = previous_section(path, "wan");
    for c in [
        run_wan_case("wan_bdp_cubic", &wan_bulk_spec(CongestionAlgo::Cubic)),
        run_wan_case("failover_wan", &wan_failover_spec()),
    ] {
        match wan_reference.as_deref().and_then(|s| completion_of(s, c.name)) {
            Some(r) if c.completion_s <= r * factor => {
                println!(
                    "perf check ok: {} completes in {:.3}s virtual <= {r:.3}s x {factor}",
                    c.name, c.completion_s
                );
            }
            Some(r) => {
                eprintln!(
                    "perf check FAILED: {} completes in {:.3}s virtual > {r:.3}s x {factor}",
                    c.name, c.completion_s
                );
                failed = true;
            }
            None => eprintln!("perf check skipped: no {} reference in {}", c.name, path.display()),
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Recorder-overhead guard: the same scenario with the recorder off vs
/// fully on (metrics sink + flight ring), best of three runs each to
/// damp scheduler noise — on the bulk transfer and on the 100-client
/// fleet. Exits non-zero past `factor`.
fn run_trace_check(factor: f64, bulk: Workload) {
    let mut failed = false;
    let mut judge = |what: &str, nop: f64, on: f64| {
        let ratio = on / nop;
        if ratio <= factor {
            println!(
                "trace perf check ok ({what}): {on:.3}s recorded / {nop:.3}s no-op = {ratio:.3}x <= {factor}x"
            );
        } else {
            eprintln!(
                "trace perf check FAILED ({what}): {on:.3}s recorded / {nop:.3}s no-op = {ratio:.3}x > {factor}x"
            );
            failed = true;
        }
    };
    {
        let base = || ScenarioSpec::new(bulk).st_tcp(st_cfg(SimDuration::from_millis(50)));
        let best = |name: &'static str, spec: &dyn Fn() -> ScenarioSpec| {
            (0..3).map(|_| run_case(name, &spec()).wall_s).fold(f64::INFINITY, f64::min)
        };
        let nop = best("bulk_st_tcp (no-op recorder)", &base);
        let on = best("bulk_st_tcp (metrics + flight)", &|| base().recording().tracing());
        judge("bulk_st_tcp", nop, on);
    }
    {
        let best = |spec: &dyn Fn() -> FleetSpec| {
            (0..3)
                .map(|_| {
                    let mut f = fleet::build(&spec());
                    let start = Instant::now();
                    let done = f.run_until_done(SimDuration::from_secs(600));
                    assert!(done && f.verified_clean(), "conn_scale_100 trace check run failed");
                    start.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let nop = best(&|| FleetSpec::new(100));
        let on = best(&|| FleetSpec::new(100).recording().tracing());
        judge("conn_scale_100", nop, on);
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let quick = quick_mode();
    let bulk = if quick { Workload::bulk_mb(1) } else { Workload::bulk_mb(100) };
    let bulk_name = if quick { "bulk_1mb (quick)" } else { "bulk_100mb" };

    if let Some(factor) = trace_check_factor() {
        run_trace_check(factor, bulk);
        return;
    }

    let path = repo_root().join("BENCH_simperf.json");
    if let Some(factor) = check_factor() {
        run_perf_check(factor, quick, &path);
        return; // guard mode never rewrites the report
    }

    let mut cases = vec![
        run_case("echo", &ScenarioSpec::new(Workload::echo())),
        run_case(
            "echo_st_tcp",
            &ScenarioSpec::new(Workload::echo()).st_tcp(st_cfg(SimDuration::from_millis(50))),
        ),
        run_case("bulk_100mb", &ScenarioSpec::new(bulk)),
        run_case(
            "bulk_100mb_st_tcp",
            &ScenarioSpec::new(bulk).st_tcp(st_cfg(SimDuration::from_millis(50))),
        ),
        run_fleet_case("conn_scale_100", 100),
    ];
    if !quick {
        cases.push(run_fleet_case("conn_scale_1k", 1_000));
        cases.push(run_fleet_case("conn_scale_10k", 10_000));
        // The O(1)-demux contract: per-event cost must not grow with
        // connection count (acceptance: ≥ 0.5× the 100-client rate).
        let rate = |name: &str| {
            cases.iter().find(|c| c.name == name).map(|c| c.events_per_s).unwrap_or(0.0)
        };
        let (r100, r10k) = (rate("conn_scale_100"), rate("conn_scale_10k"));
        assert!(
            r10k >= 0.5 * r100,
            "conn_scale_10k throughput collapsed: {r10k:.0} ev/s vs {r100:.0} ev/s at 100 clients"
        );
        println!("conn_scale check ok: {r10k:.0} ev/s @10k >= 0.5 x {r100:.0} ev/s @100");
    }

    let mut table = Table::new(
        if quick {
            "simperf (quick smoke — 1 MB bulk, no file write)"
        } else {
            "simperf: simulator throughput"
        },
        &["scenario", "wall (s)", "events", "events/s"],
    );
    for c in &cases {
        let name = if c.name.starts_with("bulk_100mb") {
            c.name.replace("bulk_100mb", bulk_name.split(' ').next().unwrap())
        } else {
            c.name.to_string()
        };
        table.row(vec![
            name,
            format!("{:.3}", c.wall_s),
            c.events.to_string(),
            format!("{:.0}", c.events_per_s),
        ]);
    }
    table.emit("simperf");

    // WAN congestion surface: the controller comparison the paper's LAN
    // testbed never reaches. Virtual completion time is deterministic;
    // the Reno-vs-modern ordering is asserted inside.
    let wan_cases = run_wan_cases();
    let mut wan_table = Table::new(
        "wan_high_bdp congestion (20 MB bulk; failover: 5 MB + crash at 700 ms)",
        &["case", "completion (virtual s)", "wall (s)", "events"],
    );
    for c in &wan_cases {
        wan_table.row(vec![
            c.name.to_string(),
            format!("{:.2}", c.completion_s),
            format!("{:.3}", c.wall_s),
            c.events.to_string(),
        ]);
    }
    wan_table.emit("simperf_wan");

    // Side-channel economy across chain lengths (virtual-time metric:
    // deterministic, so it doubles as a regression check). The naive
    // design — every backup speaking rank 1's per-connection dialect —
    // would triple the cost from 1 to 3 backups; batching must keep the
    // growth visibly below that.
    let side_cases: Vec<SideChannelCase> = (1..=3).map(run_side_channel_case).collect();
    let mut side_table = Table::new(
        "side-channel overhead vs chain length (20-client fleet, fault-free)",
        &["backups", "side datagrams", "side bytes", "goodput bytes", "bytes/goodput"],
    );
    for c in &side_cases {
        side_table.row(vec![
            c.backups.to_string(),
            c.side_datagrams.to_string(),
            c.side_bytes.to_string(),
            c.goodput_bytes.to_string(),
            format!("{:.4}", c.overhead()),
        ]);
    }
    side_table.emit("simperf_side_channel");
    let (o1, o3) = (side_cases[0].overhead(), side_cases[2].overhead());
    assert!(
        o3 < 2.5 * o1,
        "side-channel cost must grow sub-linearly in backup count: \
         {o3:.4} bytes/goodput at 3 backups vs {o1:.4} at 1 (linear would be 3x)"
    );
    println!(
        "side-channel sub-linearity ok: {o3:.4} @3 backups < 2.5 x {o1:.4} @1 (linear would be 3x)"
    );

    if quick {
        println!("(quick mode: BENCH_simperf.json not updated)");
        return;
    }

    // An untimed *recorded* failover run embeds the protocol counter
    // snapshot in the report. The timed cases above keep the default
    // no-op recorder, so recording can never skew the measurements.
    let obs = {
        // Crash after a few 50 ms heartbeat intervals so the snapshot
        // exhibits the full protocol (heartbeats, acks, detection marks).
        let crash = SimTime::ZERO + SimDuration::from_millis(200);
        let spec = ScenarioSpec::new(Workload::echo())
            .st_tcp(st_cfg(SimDuration::from_millis(50)))
            .faults(FaultSpec::crash_primary_at(crash))
            .recording();
        let mut sc = build(&spec);
        sc.run(RunLimits::time(SimDuration::from_secs(60))).expect_completed();
        sc.snapshot().expect("recording scenario has a sink").to_json()
    };

    let side_channel = json_side_channel(&side_cases);
    let wan = json_wan(&wan_cases);
    let current = json_section(&cases);
    let baseline = previous_section(&path, "baseline").unwrap_or_else(|| current.clone());
    let speedup = {
        // Wall-time ratio baseline/current for the bulk case, when the
        // baseline line carries one.
        match (wall_of(&baseline, "bulk_100mb"), wall_of(&current, "bulk_100mb")) {
            (Some(b), Some(c)) if c > 0.0 => b / c,
            _ => 1.0,
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"simperf\",\n  \"units\": {{\"wall_s\": \"seconds\", \"events_per_s\": \"simulator events per wall-clock second\", \"side_channel_overhead\": \"side-channel bytes per goodput byte (virtual time, deterministic)\", \"completion_s\": \"virtual seconds to workload completion (deterministic)\"}},\n  \"baseline\": {baseline},\n  \"current\": {current},\n  \"wan\": {wan},\n  \"side_channel\": {side_channel},\n  \"obs\": {obs},\n  \"bulk_100mb_speedup_vs_baseline\": {speedup:.2}\n}}\n"
    );
    std::fs::write(&path, json).expect("write BENCH_simperf.json");
    println!("BENCH_simperf.json updated (bulk speedup vs baseline: {speedup:.2}x)");
}
