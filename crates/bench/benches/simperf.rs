//! simperf — simulator throughput benchmark.
//!
//! Measures how fast the simulator itself runs (wall time and simulator
//! events per wall-clock second) on the Echo and Bulk-100MB scenarios,
//! and appends the numbers to `BENCH_simperf.json` at the repo root so
//! the performance trajectory is tracked across changes.
//!
//! The first run seeds the `baseline` section; later runs preserve it
//! and rewrite only `current`, so the file always shows current speed
//! against the recorded pre-optimization baseline.
//!
//! `STTCP_BENCH_QUICK=1` shrinks the bulk transfer to 1 MB and skips the
//! file write — a smoke run for CI, not a measurement.

use apps::Workload;
use netsim::SimDuration;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use sttcp::scenario::{build, ScenarioSpec};
use sttcp_bench::{quick_mode, st_cfg, Table};

struct Case {
    name: &'static str,
    wall_s: f64,
    events: u64,
    events_per_s: f64,
}

fn run_case(name: &'static str, spec: &ScenarioSpec) -> Case {
    let mut scenario = build(spec);
    let start = Instant::now();
    let metrics = scenario.run_to_completion(SimDuration::from_secs(600));
    let wall_s = start.elapsed().as_secs_f64();
    assert!(metrics.verified_clean(), "{name}: byte-stream verification failed");
    let events = scenario.sim.trace().events_processed;
    Case { name, wall_s, events, events_per_s: events as f64 / wall_s }
}

fn json_section(cases: &[Case]) -> String {
    // One line per section so a later run can carry the baseline over
    // without a JSON parser.
    let mut s = String::from("{");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "\"{}\": {{\"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}}}",
            c.name, c.wall_s, c.events, c.events_per_s
        );
    }
    s.push('}');
    s
}

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Pulls the one-line `"baseline": {...}` section out of a previous
/// report, if any.
fn previous_baseline(path: &std::path::Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.trim_start().starts_with("\"baseline\":"))
        .and_then(|l| l.find('{').map(|i| l[i..].trim_end().trim_end_matches(',').to_string()))
}

fn main() {
    let quick = quick_mode();
    let bulk = if quick { Workload::bulk_mb(1) } else { Workload::bulk_mb(100) };
    let bulk_name = if quick { "bulk_1mb (quick)" } else { "bulk_100mb" };

    let cases = vec![
        run_case("echo", &ScenarioSpec::new(Workload::echo())),
        run_case(
            "echo_st_tcp",
            &ScenarioSpec::new(Workload::echo()).st_tcp(st_cfg(SimDuration::from_millis(50))),
        ),
        run_case("bulk_100mb", &ScenarioSpec::new(bulk)),
        run_case(
            "bulk_100mb_st_tcp",
            &ScenarioSpec::new(bulk).st_tcp(st_cfg(SimDuration::from_millis(50))),
        ),
    ];

    let mut table = Table::new(
        if quick {
            "simperf (quick smoke — 1 MB bulk, no file write)"
        } else {
            "simperf: simulator throughput"
        },
        &["scenario", "wall (s)", "events", "events/s"],
    );
    for c in &cases {
        let name = if c.name.starts_with("bulk_100mb") {
            c.name.replace("bulk_100mb", bulk_name.split(' ').next().unwrap())
        } else {
            c.name.to_string()
        };
        table.row(vec![
            name,
            format!("{:.3}", c.wall_s),
            c.events.to_string(),
            format!("{:.0}", c.events_per_s),
        ]);
    }
    table.emit("simperf");

    if quick {
        println!("(quick mode: BENCH_simperf.json not updated)");
        return;
    }

    let path = repo_root().join("BENCH_simperf.json");
    let current = json_section(&cases);
    let baseline = previous_baseline(&path).unwrap_or_else(|| current.clone());
    let speedup = {
        // Wall-time ratio baseline/current for the bulk case, when the
        // baseline line carries one.
        fn wall_of(section: &str, case: &str) -> Option<f64> {
            let key = format!("\"{case}\": {{\"wall_s\": ");
            let i = section.find(&key)? + key.len();
            section[i..].split([',', '}']).next()?.trim().parse().ok()
        }
        match (wall_of(&baseline, "bulk_100mb"), wall_of(&current, "bulk_100mb")) {
            (Some(b), Some(c)) if c > 0.0 => b / c,
            _ => 1.0,
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"simperf\",\n  \"units\": {{\"wall_s\": \"seconds\", \"events_per_s\": \"simulator events per wall-clock second\"}},\n  \"baseline\": {baseline},\n  \"current\": {current},\n  \"bulk_100mb_speedup_vs_baseline\": {speedup:.2}\n}}\n"
    );
    std::fs::write(&path, json).expect("write BENCH_simperf.json");
    println!("BENCH_simperf.json updated (bulk speedup vs baseline: {speedup:.2}x)");
}
