//! **Figure 5** — total run time vs heartbeat interval, with-failure
//! (upper curve) and without-failure (lower curve):
//! (a) Echo, (b) Interactive.
//!
//! The paper's qualitative shape: the lower curve is flat (no ST-TCP
//! overhead at any HB), the upper curve grows linearly with the HB
//! interval (detection dominates), and their gap at each point is the
//! Table 2 failover time.

use netsim::SimDuration;
use sttcp_bench::{fmt_s, measure_failover, Table};

/// A denser sweep than Tables 1–2 use, to draw the curves.
const SWEEP: [(&str, u64); 7] = [
    ("50ms", 50),
    ("100ms", 100),
    ("200ms", 200),
    ("500ms", 500),
    ("1s", 1_000),
    ("2s", 2_000),
    ("5s", 5_000),
];

fn series(name: &str, workload: apps::Workload, slug: &str) {
    let mut table = Table::new(
        &format!("Figure 5{name}: total time (s) vs heartbeat interval"),
        &["hb_interval", "without_failure", "with_failure", "failover"],
    );
    let mut last_failover = 0.0;
    for (label, ms) in SWEEP {
        let m = measure_failover(workload, SimDuration::from_millis(ms));
        table.row(vec![
            label.to_string(),
            fmt_s(m.no_failure),
            fmt_s(m.with_failure),
            fmt_s(m.failover()),
        ]);
        last_failover = m.failover();
    }
    table.emit(slug);
    // Shape checks: the gap at 5 s HB must dwarf the gap at 50 ms HB.
    assert!(last_failover > 10.0, "5s-HB failover should be tens of seconds");
}

fn main() {
    let quick = sttcp_bench::quick_mode();
    series("a (Echo)", apps::Workload::echo(), "fig5a_echo");
    if !quick {
        series("b (Interactive)", apps::Workload::interactive(), "fig5b_interactive");
    } else {
        println!("(quick mode: skipping Figure 5b)");
    }
    println!("Upper curve grows with the HB interval; lower curve flat — Figure 5 reproduced.");
}
