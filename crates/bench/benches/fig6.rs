//! **Figure 6** — Bulk transfer: total time vs transfer size
//! (1/5/20/100 MB) with a failover and without, one curve pair per
//! heartbeat interval.
//!
//! The paper's qualitative shape: without failure, time is linear in
//! size (window-limited throughput ≈1.6 MB/s); with a failure, each
//! curve is shifted up by an approximately size-independent failover
//! cost that grows with the HB interval — so for large transfers and
//! small HB intervals the two curves become indistinguishable ("this is
//! especially true of bulk transfer").

use apps::Workload;
use sttcp_bench::{fmt_s, measure_failover, quick_mode, Table, HB_GRID};

fn main() {
    let sizes: &[u64] = if quick_mode() { &[1, 5] } else { &[1, 5, 20, 100] };
    let mut header: Vec<String> = vec!["config".into()];
    for mb in sizes {
        header.push(format!("{mb}MB no-fail"));
        header.push(format!("{mb}MB failover"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new("Figure 6: bulk transfer total time (s)", &header_refs);

    for (hb_name, hb) in HB_GRID {
        let mut row = vec![format!("ST-TCP {hb_name} HB")];
        let mut prev_ratio = f64::MAX;
        for &mb in sizes {
            let m = measure_failover(Workload::bulk_mb(mb), hb);
            row.push(fmt_s(m.no_failure));
            row.push(fmt_s(m.with_failure));
            // Relative failover impact shrinks as the transfer grows.
            let ratio = m.failover() / m.no_failure;
            assert!(
                ratio < prev_ratio * 1.5 + 0.05,
                "relative failover cost should shrink with size (hb {hb_name}, {mb}MB)"
            );
            prev_ratio = ratio;
        }
        table.row(row);
    }

    table.emit("fig6_bulk");
    println!("Failover cost is ~size-independent; relative impact vanishes for large transfers.");
}
