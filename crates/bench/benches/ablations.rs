//! Ablations for the design choices and secondary claims of the paper:
//!
//! 1. **Side-channel overhead** (§4.3): the paper estimates one
//!    ~128-byte ack per 3 KB of client data ⇒ ≤4.17 % extra LAN
//!    traffic. We measure the real side-channel byte share with a frame
//!    probe.
//! 2. **Tap loss** (§4.2): the missing-segment protocol must keep the
//!    backup consistent under increasing omission rates on its ingress,
//!    with zero client-visible effect.
//! 3. **Double failure** (§3.2): a tap omission whose side-channel
//!    recovery is lost, followed by a primary crash, is unrecoverable
//!    without the in-network logger — and recoverable with it.
//! 4. **SyncTime / X sweep** (§4.3): how the ack strategy parameters
//!    trade side-channel traffic against ack frequency.

use apps::Workload;
use netsim::{DropRule, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use sttcp::scenario::{addrs, build, FaultSpec, RunLimits, ScenarioSpec};
use sttcp_bench::{fmt_s, st_cfg, Table};
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram};

/// Counts service-data vs side-channel bytes on the wire.
#[derive(Debug, Default, Clone, Copy)]
struct TrafficSplit {
    side_channel: u64,
    other: u64,
}

fn is_side_channel(frame: &bytes::Bytes, side_port: u16) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.protocol != IpProtocol::Udp {
            return None;
        }
        let udp = UdpDatagram::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        Some(udp.dst_port == side_port || udp.src_port == side_port)
    })()
    .unwrap_or(false)
}

fn side_channel_overhead() {
    let mut table = Table::new(
        "Ablation 1: side-channel overhead (share of LAN bytes), Bulk 5MB",
        &["sync_time", "side_bytes", "data_bytes", "overhead_pct"],
    );
    for (label, ms) in [("50ms", 50u64), ("200ms", 200), ("1s", 1000)] {
        let spec =
            ScenarioSpec::new(Workload::bulk_mb(5)).st_tcp(st_cfg(SimDuration::from_millis(ms)));
        let mut scenario = build(&spec);
        let counts = Rc::new(RefCell::new(TrafficSplit::default()));
        let probe_counts = counts.clone();
        scenario.sim.set_probe(move |ev| {
            let len = ev.frame.len() as u64;
            let mut c = probe_counts.borrow_mut();
            if is_side_channel(ev.frame, 7077) {
                c.side_channel += len;
            } else {
                c.other += len;
            }
        });
        let m = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
        assert!(m.verified_clean());
        let c = *counts.borrow();
        let pct = 100.0 * c.side_channel as f64 / (c.other.max(1)) as f64;
        table.row(vec![
            label.into(),
            c.side_channel.to_string(),
            c.other.to_string(),
            format!("{pct:.3}"),
        ]);
        assert!(pct < 5.0, "side channel must stay under the paper's ~4.17% bound, got {pct:.2}%");
    }
    table.emit("ablation_side_channel");
}

/// Matches any TCP frame — the §4.2 omission class. The UDP side
/// channel is excluded: losing heartbeats is a *detection* fault (false
/// takeover), not a tap omission, and is exercised by the fencing tests.
fn any_tcp_frame(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        Some(ip.protocol == IpProtocol::Tcp)
    })()
    .unwrap_or(false)
}

fn tap_loss_sweep() {
    let mut table = Table::new(
        "Ablation 2: backup tap loss, Echo x100 (client must never notice)",
        &["loss_pct", "missing_reqs", "bytes_recovered", "client_total_s", "clean"],
    );
    let baseline = {
        let spec = ScenarioSpec::new(Workload::echo()).st_tcp(st_cfg(SimDuration::from_millis(50)));
        sttcp_bench::run(&spec).total_time().unwrap().as_secs_f64()
    };
    for loss in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let spec = ScenarioSpec::new(Workload::echo()).st_tcp(st_cfg(SimDuration::from_millis(50)));
        let mut scenario = build(&spec);
        let backup = scenario.backup.expect("st-tcp");
        if loss > 0.0 {
            scenario.sim.add_ingress_drop(backup, DropRule::rate(loss, any_tcp_frame));
        }
        let m = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
        let eng = scenario.backup().unwrap();
        let total = m.total_time().unwrap().as_secs_f64();
        table.row(vec![
            format!("{:.0}", loss * 100.0),
            eng.stats.missing_reqs.to_string(),
            eng.stats.missing_bytes_recovered.to_string(),
            fmt_s(total),
            m.verified_clean().to_string(),
        ]);
        assert!(m.verified_clean());
        assert!(
            (total - baseline).abs() / baseline < 0.02,
            "tap loss must be invisible to the client: {total} vs {baseline}"
        );
    }
    table.emit("ablation_tap_loss");
}

/// Matches client→VIP TCP frames that carry payload (i.e. requests).
fn client_request_frame(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.dst != addrs::VIP || ip.protocol != IpProtocol::Tcp {
            return None;
        }
        let seg = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        Some(!seg.payload.is_empty())
    })()
    .unwrap_or(false)
}

/// Matches side-channel MissingData/MissingNack datagrams (so recovery
/// from the primary can be disabled without touching heartbeats).
fn missing_data_frame(frame: &bytes::Bytes) -> bool {
    (|| {
        let eth = EthernetFrame::parse(frame.clone()).ok()?;
        if eth.ethertype != EtherType::Ipv4 {
            return None;
        }
        let ip = Ipv4Packet::parse(eth.payload).ok()?;
        if ip.protocol != IpProtocol::Udp {
            return None;
        }
        let udp = UdpDatagram::parse(ip.payload.clone(), ip.src, ip.dst).ok()?;
        if udp.dst_port != 7077 {
            return None;
        }
        Some(matches!(udp.payload.first(), Some(4) | Some(5)))
    })()
    .unwrap_or(false)
}

/// A tap omission whose side-channel recovery is also lost, then a
/// primary crash — the §3.2 double failure. The backup is missing one
/// request the primary acknowledged; the client will never retransmit
/// it. Only the in-network logger can replay it.
fn double_failure() {
    let mut table = Table::new(
        "Ablation 3: omission+crash double failure, Echo x100",
        &["logger", "completed", "clean", "logger_queries", "total_s"],
    );
    for use_logger in [true, false] {
        let crash = SimTime::ZERO + SimDuration::from_secs_f64(0.6);
        let mut cfg = st_cfg(SimDuration::from_millis(50));
        if use_logger {
            cfg = cfg.with_logger();
        }
        let mut spec = ScenarioSpec::new(Workload::echo())
            .st_tcp(cfg)
            .faults(FaultSpec::crash_primary_at(crash));
        spec.with_logger = use_logger;
        let mut scenario = build(&spec);
        let backup = scenario.backup.unwrap();
        // Lose request #41 on the backup's tap...
        scenario.sim.add_ingress_drop(backup, DropRule::window(40, 1, client_request_frame));
        // ...and suppress every side-channel recovery reply, so the gap
        // survives until the crash.
        scenario.sim.add_ingress_drop(backup, DropRule::all(missing_data_frame));

        // Run manually: the no-logger case legitimately hangs.
        let mut done = false;
        let deadline = SimTime::ZERO + SimDuration::from_secs(90);
        while scenario.sim.now() < deadline {
            scenario.sim.run_for(SimDuration::from_millis(50));
            if scenario.client().unwrap().is_done() {
                done = true;
                break;
            }
        }
        let m = scenario.client().unwrap().metrics.clone();
        let clean = m.verified_clean();
        let queries = scenario.backup().unwrap().stats.logger_queries;
        table.row(vec![
            use_logger.to_string(),
            done.to_string(),
            clean.to_string(),
            queries.to_string(),
            m.total_time().map(|t| fmt_s(t.as_secs_f64())).unwrap_or_else(|| "-".into()),
        ]);
        if use_logger {
            assert!(done && clean, "the logger must mask the double failure");
            assert!(queries > 0, "recovery must have used the logger");
        } else {
            assert!(!done, "without the logger the double failure must stall the service");
        }
    }
    table.emit("ablation_double_failure");
}

fn sync_param_sweep() {
    // Upload is the direction where the ack strategy matters: every
    // client byte is retained by the primary until backup-acked, so X
    // trades side-channel ack frequency against retention headroom —
    // and, once retention spills past the second buffer, against the
    // client's advertised window (upload throughput).
    let mut table = Table::new(
        "Ablation 4: ack strategy parameters (Upload 5MB, 50ms HB)",
        &["x_threshold", "sync_time", "acks_sent", "threshold_acks", "total_s"],
    );
    let mut prev_acks = u64::MAX;
    for (x, sync_ms) in [
        (Some(1024), 50u64),
        (Some(4 * 1024), 50),
        (Some(12 * 1024), 50),
        (None, 50),
        (None, 200),
        (None, 1000),
    ] {
        let mut cfg = st_cfg(SimDuration::from_millis(50));
        cfg.ack_threshold = x;
        cfg.sync_time = Some(SimDuration::from_millis(sync_ms));
        let spec = ScenarioSpec::new(Workload::upload_mb(5)).st_tcp(cfg);
        let mut scenario = build(&spec);
        let m = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
        assert!(m.verified_clean());
        let eng = scenario.backup().unwrap();
        if x.is_some() {
            assert!(eng.stats.acks_sent <= prev_acks, "larger X must not send more acks");
            prev_acks = eng.stats.acks_sent;
        }
        table.row(vec![
            x.map(|v| v.to_string()).unwrap_or_else(|| "3/4 buf".into()),
            format!("{sync_ms}ms"),
            eng.stats.acks_sent.to_string(),
            eng.stats.acks_threshold_triggered.to_string(),
            fmt_s(m.total_time().unwrap().as_secs_f64()),
        ]);
    }
    table.emit("ablation_sync_params");
}

/// §6's aside: "Using an Ethernet switch will lead to a higher
/// throughput." On a 10 Mbit fabric the shared-medium hub makes data,
/// ACKs and the side channel contend for air time; a switch gives each
/// direction its own wire.
fn hub_vs_switch() {
    use sttcp::scenario::Topology;
    let mut table = Table::new(
        "Ablation 5: shared-medium hub vs switch (Bulk 5MB over ST-TCP, 10 Mbit fabric)",
        &["fabric", "total_s", "throughput_MBps"],
    );
    let mut results = Vec::new();
    for (name, topology) in [
        ("10Mbit shared hub", Topology::SharedMediumHub { medium_bps: 10_000_000 }),
        ("10Mbit switch", Topology::SwitchMulticast),
    ] {
        let mut spec = ScenarioSpec::new(Workload::bulk_mb(5))
            .topology(topology)
            .st_tcp(st_cfg(SimDuration::from_millis(50)));
        if let Topology::SwitchMulticast = topology {
            spec.link = spec.link.with_bandwidth_bps(10_000_000);
        }
        let mut scenario = build(&spec);
        let m = scenario.run(RunLimits::time(SimDuration::from_secs(600))).expect_completed();
        assert!(m.verified_clean());
        let total = m.total_time().unwrap().as_secs_f64();
        table.row(vec![name.into(), fmt_s(total), format!("{:.3}", 5.0 * 1.048576 / total)]);
        results.push(total);
    }
    table.emit("ablation_hub_vs_switch");
    assert!(
        results[0] > results[1] * 1.1,
        "the switch must outrun the shared hub: hub={} switch={}",
        results[0],
        results[1]
    );
}

fn main() {
    side_channel_overhead();
    tap_loss_sweep();
    double_failure();
    sync_param_sweep();
    hub_vs_switch();
    println!("\nAll ablations completed.");
}
