//! **Table 1** — "Comparison of standard TCP with ST-TCP during failure
//! free period": average total time (s) per workload for standard TCP
//! and ST-TCP at heartbeat intervals of 5 s, 1 s, 200 ms, 50 ms.
//!
//! Paper values for reference (Echo / Interactive / Bulk 1–100 MB):
//! standard TCP 0.892 / 2.000 / 0.640 / 3.199 / 12.788 / 63.952, with
//! every ST-TCP row within noise of it. The reproduced claim is the
//! *absence of overhead*: every ST-TCP cell equals the standard-TCP
//! cell of its column (the simulator is deterministic, so equality here
//! is exact unless the protocol actually perturbs the data path).

use sttcp_bench::{fmt_s, st_tcp_time, standard_tcp_time, workload_grid_env, Table, HB_GRID};

fn main() {
    let workloads = workload_grid_env();
    let mut header = vec!["config"];
    header.extend(workloads.iter().map(|(name, _)| *name));
    let mut table =
        Table::new("Table 1: failure-free total time (s), standard TCP vs ST-TCP", &header);

    let mut row = vec!["Standard TCP".to_string()];
    let mut baseline = Vec::new();
    for &(_, w) in &workloads {
        let t = standard_tcp_time(w);
        baseline.push(t);
        row.push(fmt_s(t));
    }
    table.row(row);

    for (hb_name, hb) in HB_GRID {
        let mut row = vec![format!("ST-TCP {hb_name} HB")];
        for (i, &(_, w)) in workloads.iter().enumerate() {
            let t = st_tcp_time(w, hb);
            row.push(fmt_s(t));
            let overhead = (t - baseline[i]) / baseline[i];
            assert!(
                overhead.abs() < 0.02,
                "ST-TCP overhead {:.2}% exceeds the paper's 'insignificant' claim",
                overhead * 100.0
            );
        }
        table.row(row);
    }

    table.emit("table1");
    println!("All ST-TCP cells within 2% of standard TCP — the paper's no-overhead claim holds.");
}
