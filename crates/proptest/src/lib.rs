//! Vendored, minimal property-testing shim exposing the parts of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the property
//! tests run against this stand-in: deterministic pseudo-random input
//! generation (a fixed per-test seed derived from the test's path, so
//! failures reproduce exactly), a configurable case count
//! (`PROPTEST_CASES`, default 48), and no shrinking — a failing case
//! panics with the normal assertion message and reruns identically.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

/// Deterministic generator (SplitMix64) seeded from the test path.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the macro passes the test path).
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a, folded with an optional PROPTEST_SEED override.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                h ^= x;
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of generated values.
///
/// Unlike real proptest there is no shrinking: `generate` produces one
/// value per call from the deterministic [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Full-range generation for primitive types (the `any::<T>()` family).
pub trait Arbitrary: Sized {
    /// Produces one uniformly-distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy adapter for [`Arbitrary`] types.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every value is in range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s of `elem` values with a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property in the block runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: cases() }
    }
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` expands to a normal
/// test running the body over [`cases()`] generated inputs (or the
/// count from a leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = { $config }.cases;
                let mut __rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = prop_oneof![
            any::<u8>().prop_map(u32::from),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| u32::from(a) + u32::from(b)),
            Just(7u32),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v <= 510);
        }
        let vs = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
        assert!((2..5).contains(&vs.len()));
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in any::<u16>(), b in 1u16..=100) {
            prop_assert!(b >= 1);
            prop_assert_eq!(u32::from(a) + u32::from(b), u32::from(b) + u32::from(a));
        }
    }
}
