//! Fault injection: targeted ingress drops.
//!
//! Crash failures are scheduled directly on the [`crate::Simulator`]
//! (`schedule_crash`); this module provides *omission* failures — frames
//! silently lost on their way into a node, modelling the "IP stack on the
//! backup server drops IP packets because of an IP-buffer overflow"
//! scenario of paper §4.2 that motivates the second receive buffer and
//! the missing-segment protocol.

use crate::rng::SplitMix64;
use bytes::Bytes;

/// Predicate selecting which frames a rule applies to.
pub type FrameMatcher = Box<dyn FnMut(&Bytes) -> bool>;

/// A rule dropping some frames on their way into a node.
///
/// A frame is first tested against the matcher; among *matching* frames,
/// the first `skip` pass through, then up to `count` are dropped (all of
/// them if `count` is `None`), each with probability `prob`.
pub struct DropRule {
    matcher: FrameMatcher,
    skip: u64,
    count: Option<u64>,
    prob: f64,
    matched: u64,
    dropped: u64,
}

impl std::fmt::Debug for DropRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DropRule")
            .field("skip", &self.skip)
            .field("count", &self.count)
            .field("prob", &self.prob)
            .field("matched", &self.matched)
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl DropRule {
    /// Drops every matching frame.
    pub fn all(matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DropRule {
            matcher: Box::new(matcher),
            skip: 0,
            count: None,
            prob: 1.0,
            matched: 0,
            dropped: 0,
        }
    }

    /// Drops each matching frame independently with probability `prob`.
    pub fn rate(prob: f64, matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DropRule { matcher: Box::new(matcher), skip: 0, count: None, prob, matched: 0, dropped: 0 }
    }

    /// After letting `skip` matching frames through, drops the next
    /// `count` matching frames. This is the precise "lose exactly the
    /// n-th segment of the tap" tool the omission experiments use.
    pub fn window(skip: u64, count: u64, matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DropRule {
            matcher: Box::new(matcher),
            skip,
            count: Some(count),
            prob: 1.0,
            matched: 0,
            dropped: 0,
        }
    }

    /// Decides the fate of one incoming frame; `true` means drop.
    pub fn should_drop(&mut self, frame: &Bytes, rng: &mut SplitMix64) -> bool {
        if !(self.matcher)(frame) {
            return false;
        }
        self.matched += 1;
        if self.matched <= self.skip {
            return false;
        }
        if let Some(count) = self.count {
            if self.matched - self.skip > count {
                return false;
            }
        }
        let drop = self.prob >= 1.0 || rng.chance(self.prob);
        if drop {
            self.dropped += 1;
        }
        drop
    }

    /// Number of frames this rule has dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of frames that matched the predicate so far.
    pub fn matched(&self) -> u64 {
        self.matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any() -> impl FnMut(&Bytes) -> bool + 'static {
        |_| true
    }

    #[test]
    fn all_drops_everything_matching() {
        let mut rule = DropRule::all(|f: &Bytes| f.len() > 2);
        let mut rng = SplitMix64::new(1);
        assert!(!rule.should_drop(&Bytes::from_static(b"ab"), &mut rng));
        assert!(rule.should_drop(&Bytes::from_static(b"abc"), &mut rng));
        assert_eq!(rule.dropped(), 1);
        assert_eq!(rule.matched(), 1);
    }

    #[test]
    fn window_skips_then_drops_then_stops() {
        let mut rule = DropRule::window(2, 3, any());
        let mut rng = SplitMix64::new(1);
        let f = Bytes::from_static(b"x");
        let fates: Vec<bool> = (0..8).map(|_| rule.should_drop(&f, &mut rng)).collect();
        assert_eq!(fates, vec![false, false, true, true, true, false, false, false]);
        assert_eq!(rule.dropped(), 3);
    }

    #[test]
    fn rate_is_deterministic_given_seed() {
        let run = || {
            let mut rule = DropRule::rate(0.5, any());
            let mut rng = SplitMix64::new(42);
            let f = Bytes::from_static(b"x");
            (0..100).map(|_| rule.should_drop(&f, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let drops = run().iter().filter(|&&d| d).count();
        assert!((30..70).contains(&drops), "rate 0.5 produced {drops}/100 drops");
    }

    #[test]
    fn zero_rate_never_drops() {
        let mut rule = DropRule::rate(0.0, any());
        let mut rng = SplitMix64::new(3);
        let f = Bytes::from_static(b"x");
        assert!((0..50).all(|_| !rule.should_drop(&f, &mut rng)));
    }
}
