//! Fault injection: targeted ingress drops, delays, and duplications.
//!
//! Crash failures are scheduled directly on the [`crate::Simulator`]
//! (`schedule_crash`); this module provides *message* failures — frames
//! lost, held back, or repeated on their way into a node. Drops model
//! the "IP stack on the backup server drops IP packets because of an
//! IP-buffer overflow" scenario of paper §4.2 that motivates the second
//! receive buffer and the missing-segment protocol; delays and
//! duplicates model the reordering and repetition an asynchronous
//! network may inflict on the UDP side channel (heartbeats, backup
//! acks, missing-segment replies), which the chaos campaigns sweep.
//!
//! All three rule kinds share the same selection machinery: a frame
//! matcher, a `skip`/`count` window among matching frames, an
//! independent firing probability, and an optional active window in
//! virtual time (used e.g. to partition the tap for a bounded period).

use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;

/// Predicate selecting which frames a rule applies to.
pub type FrameMatcher = Box<dyn FnMut(&Bytes) -> bool>;

/// Identifies one ingress rule on one node (dense per-node index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleId(pub usize);

/// Per-rule counters, exposed through
/// [`crate::Simulator::ingress_rule_stats`] so campaign reports can
/// attribute which injection actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Frames that matched the rule's predicate.
    pub matched: u64,
    /// Frames the rule acted on (dropped, delayed, or duplicated).
    pub fired: u64,
}

/// What an ingress rule decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressAction {
    /// Deliver the frame normally.
    Deliver,
    /// Silently discard the frame.
    Drop,
    /// Hold the frame and deliver it this much later.
    Delay(SimDuration),
    /// Deliver the frame now and again after this offset.
    Duplicate(SimDuration),
}

/// The shared selection machinery: matcher, skip/count window,
/// probability, and active time window.
struct Gate {
    matcher: FrameMatcher,
    skip: u64,
    count: Option<u64>,
    prob: f64,
    active: Option<(SimTime, SimTime)>,
    stats: RuleStats,
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate")
            .field("skip", &self.skip)
            .field("count", &self.count)
            .field("prob", &self.prob)
            .field("active", &self.active)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Gate {
    fn new(matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        Gate {
            matcher: Box::new(matcher),
            skip: 0,
            count: None,
            prob: 1.0,
            active: None,
            stats: RuleStats::default(),
        }
    }

    /// Decides whether the rule fires for this frame.
    fn fires(&mut self, frame: &Bytes, now: SimTime, rng: &mut SplitMix64) -> bool {
        if let Some((from, until)) = self.active {
            if now < from || now >= until {
                return false;
            }
        }
        if !(self.matcher)(frame) {
            return false;
        }
        self.stats.matched += 1;
        if self.stats.matched <= self.skip {
            return false;
        }
        if let Some(count) = self.count {
            if self.stats.matched - self.skip > count {
                return false;
            }
        }
        let fire = self.prob >= 1.0 || rng.chance(self.prob);
        if fire {
            self.stats.fired += 1;
        }
        fire
    }
}

macro_rules! windowing_builders {
    () => {
        /// After letting `skip` matching frames through, acts on the
        /// next `count` matching frames. This is the precise "lose
        /// exactly the n-th segment of the tap" tool the omission
        /// experiments use.
        #[must_use]
        pub fn window(mut self, skip: u64, count: u64) -> Self {
            self.gate.skip = skip;
            self.gate.count = Some(count);
            self
        }

        /// Acts on each matching frame independently with probability
        /// `prob`.
        #[must_use]
        pub fn rate(mut self, prob: f64) -> Self {
            self.gate.prob = prob;
            self
        }

        /// Restricts the rule to frames arriving in `[from, until)`
        /// virtual time (e.g. a bounded tap partition).
        #[must_use]
        pub fn between(mut self, from: SimTime, until: SimTime) -> Self {
            self.gate.active = Some((from, until));
            self
        }

        /// Counters for this rule so far.
        pub fn stats(&self) -> RuleStats {
            self.gate.stats
        }

        /// Number of frames that matched the predicate so far.
        pub fn matched(&self) -> u64 {
            self.gate.stats.matched
        }
    };
}

/// A rule dropping some frames on their way into a node.
///
/// A frame is first tested against the matcher; among *matching* frames,
/// the first `skip` pass through, then up to `count` are dropped (all of
/// them if `count` is `None`), each with probability `prob`.
#[derive(Debug)]
pub struct DropRule {
    gate: Gate,
}

impl DropRule {
    /// Drops every matching frame.
    pub fn all(matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DropRule { gate: Gate::new(matcher) }
    }

    /// Drops each matching frame independently with probability `prob`.
    pub fn rate(prob: f64, matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DropRule::all(matcher).with_prob(prob)
    }

    /// After letting `skip` matching frames through, drops the next
    /// `count` matching frames.
    pub fn window(skip: u64, count: u64, matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        let mut rule = DropRule::all(matcher);
        rule.gate.skip = skip;
        rule.gate.count = Some(count);
        rule
    }

    #[must_use]
    fn with_prob(mut self, prob: f64) -> Self {
        self.gate.prob = prob;
        self
    }

    /// Restricts the rule to frames arriving in `[from, until)`.
    #[must_use]
    pub fn between(mut self, from: SimTime, until: SimTime) -> Self {
        self.gate.active = Some((from, until));
        self
    }

    /// Decides the fate of one incoming frame; `true` means drop.
    pub fn should_drop(&mut self, frame: &Bytes, now: SimTime, rng: &mut SplitMix64) -> bool {
        self.gate.fires(frame, now, rng)
    }

    /// Number of frames this rule has dropped so far.
    pub fn dropped(&self) -> u64 {
        self.gate.stats.fired
    }

    /// Counters for this rule so far.
    pub fn stats(&self) -> RuleStats {
        self.gate.stats
    }

    /// Number of frames that matched the predicate so far.
    pub fn matched(&self) -> u64 {
        self.gate.stats.matched
    }
}

/// A rule holding matching frames for a fixed virtual duration before
/// delivery. Because only *matching* frames are held while others flow
/// past, a delay rule doubles as a reordering fault.
#[derive(Debug)]
pub struct DelayRule {
    gate: Gate,
    delay: SimDuration,
}

impl DelayRule {
    /// Delays every matching frame by `delay`.
    pub fn by(delay: SimDuration, matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DelayRule { gate: Gate::new(matcher), delay }
    }

    windowing_builders!();

    /// Decides the fate of one incoming frame.
    pub fn decide(&mut self, frame: &Bytes, now: SimTime, rng: &mut SplitMix64) -> IngressAction {
        if self.gate.fires(frame, now, rng) {
            IngressAction::Delay(self.delay)
        } else {
            IngressAction::Deliver
        }
    }

    /// Number of frames this rule has delayed so far.
    pub fn delayed(&self) -> u64 {
        self.gate.stats.fired
    }
}

/// A rule delivering matching frames twice: once on time, once after
/// `offset` (a repetition fault; `offset` controls how far the echo
/// lands from the original).
#[derive(Debug)]
pub struct DuplicateRule {
    gate: Gate,
    offset: SimDuration,
}

impl DuplicateRule {
    /// Duplicates every matching frame, the copy arriving `offset` later.
    pub fn after(offset: SimDuration, matcher: impl FnMut(&Bytes) -> bool + 'static) -> Self {
        DuplicateRule { gate: Gate::new(matcher), offset }
    }

    windowing_builders!();

    /// Decides the fate of one incoming frame.
    pub fn decide(&mut self, frame: &Bytes, now: SimTime, rng: &mut SplitMix64) -> IngressAction {
        if self.gate.fires(frame, now, rng) {
            IngressAction::Duplicate(self.offset)
        } else {
            IngressAction::Deliver
        }
    }

    /// Number of frames this rule has duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.gate.stats.fired
    }
}

/// Any ingress rule, as installed on a node via
/// [`crate::Simulator::add_ingress_rule`].
#[derive(Debug)]
pub enum IngressRule {
    /// Discard matching frames.
    Drop(DropRule),
    /// Hold matching frames for a duration (reordering).
    Delay(DelayRule),
    /// Deliver matching frames twice.
    Duplicate(DuplicateRule),
}

impl IngressRule {
    /// Decides the fate of one incoming frame.
    pub fn decide(&mut self, frame: &Bytes, now: SimTime, rng: &mut SplitMix64) -> IngressAction {
        match self {
            IngressRule::Drop(r) => {
                if r.should_drop(frame, now, rng) {
                    IngressAction::Drop
                } else {
                    IngressAction::Deliver
                }
            }
            IngressRule::Delay(r) => r.decide(frame, now, rng),
            IngressRule::Duplicate(r) => r.decide(frame, now, rng),
        }
    }

    /// Counters for this rule so far.
    pub fn stats(&self) -> RuleStats {
        match self {
            IngressRule::Drop(r) => r.stats(),
            IngressRule::Delay(r) => r.stats(),
            IngressRule::Duplicate(r) => r.stats(),
        }
    }
}

impl From<DropRule> for IngressRule {
    fn from(r: DropRule) -> Self {
        IngressRule::Drop(r)
    }
}

impl From<DelayRule> for IngressRule {
    fn from(r: DelayRule) -> Self {
        IngressRule::Delay(r)
    }
}

impl From<DuplicateRule> for IngressRule {
    fn from(r: DuplicateRule) -> Self {
        IngressRule::Duplicate(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any() -> impl FnMut(&Bytes) -> bool + 'static {
        |_| true
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn all_drops_everything_matching() {
        let mut rule = DropRule::all(|f: &Bytes| f.len() > 2);
        let mut rng = SplitMix64::new(1);
        assert!(!rule.should_drop(&Bytes::from_static(b"ab"), T0, &mut rng));
        assert!(rule.should_drop(&Bytes::from_static(b"abc"), T0, &mut rng));
        assert_eq!(rule.dropped(), 1);
        assert_eq!(rule.matched(), 1);
    }

    #[test]
    fn window_skips_then_drops_then_stops() {
        let mut rule = DropRule::window(2, 3, any());
        let mut rng = SplitMix64::new(1);
        let f = Bytes::from_static(b"x");
        let fates: Vec<bool> = (0..8).map(|_| rule.should_drop(&f, T0, &mut rng)).collect();
        assert_eq!(fates, vec![false, false, true, true, true, false, false, false]);
        assert_eq!(rule.dropped(), 3);
    }

    #[test]
    fn rate_is_deterministic_given_seed() {
        let run = || {
            let mut rule = DropRule::rate(0.5, any());
            let mut rng = SplitMix64::new(42);
            let f = Bytes::from_static(b"x");
            (0..100).map(|_| rule.should_drop(&f, T0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let drops = run().iter().filter(|&&d| d).count();
        assert!((30..70).contains(&drops), "rate 0.5 produced {drops}/100 drops");
    }

    #[test]
    fn zero_rate_never_drops() {
        let mut rule = DropRule::rate(0.0, any());
        let mut rng = SplitMix64::new(3);
        let f = Bytes::from_static(b"x");
        assert!((0..50).all(|_| !rule.should_drop(&f, T0, &mut rng)));
    }

    #[test]
    fn active_window_gates_in_time() {
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let mut rule = DropRule::all(any()).between(t(10), t(20));
        let mut rng = SplitMix64::new(1);
        let f = Bytes::from_static(b"x");
        assert!(!rule.should_drop(&f, t(9), &mut rng));
        assert!(rule.should_drop(&f, t(10), &mut rng));
        assert!(rule.should_drop(&f, t(19), &mut rng));
        assert!(!rule.should_drop(&f, t(20), &mut rng), "until is exclusive");
        // Frames outside the window do not consume the skip/count budget.
        assert_eq!(rule.matched(), 2);
        assert_eq!(rule.dropped(), 2);
    }

    #[test]
    fn delay_rule_windows_like_drop() {
        let d = SimDuration::from_millis(5);
        let mut rule = DelayRule::by(d, any()).window(1, 2);
        let mut rng = SplitMix64::new(1);
        let f = Bytes::from_static(b"x");
        let acts: Vec<IngressAction> = (0..5).map(|_| rule.decide(&f, T0, &mut rng)).collect();
        assert_eq!(
            acts,
            vec![
                IngressAction::Deliver,
                IngressAction::Delay(d),
                IngressAction::Delay(d),
                IngressAction::Deliver,
                IngressAction::Deliver,
            ]
        );
        assert_eq!(rule.delayed(), 2);
        assert_eq!(rule.matched(), 5);
    }

    #[test]
    fn delay_rule_rate_is_deterministic() {
        let run = || {
            let mut rule = DelayRule::by(SimDuration::from_millis(1), any()).rate(0.5);
            let mut rng = SplitMix64::new(9);
            let f = Bytes::from_static(b"x");
            (0..64).map(|_| rule.decide(&f, T0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let delayed = run().iter().filter(|a| matches!(a, IngressAction::Delay(_))).count();
        assert!((10..54).contains(&delayed), "rate 0.5 delayed {delayed}/64");
    }

    #[test]
    fn duplicate_rule_fires_within_window_only() {
        let off = SimDuration::from_millis(2);
        let mut rule = DuplicateRule::after(off, any()).window(0, 1);
        let mut rng = SplitMix64::new(1);
        let f = Bytes::from_static(b"x");
        assert_eq!(rule.decide(&f, T0, &mut rng), IngressAction::Duplicate(off));
        assert_eq!(rule.decide(&f, T0, &mut rng), IngressAction::Deliver);
        assert_eq!(rule.duplicated(), 1);
        assert_eq!(rule.stats(), RuleStats { matched: 2, fired: 1 });
    }

    #[test]
    fn ingress_rule_dispatches_all_kinds() {
        let mut rng = SplitMix64::new(1);
        let f = Bytes::from_static(b"x");
        let mut drop: IngressRule = DropRule::all(any()).into();
        let mut delay: IngressRule = DelayRule::by(SimDuration::from_millis(3), any()).into();
        let mut dup: IngressRule = DuplicateRule::after(SimDuration::from_millis(4), any()).into();
        assert_eq!(drop.decide(&f, T0, &mut rng), IngressAction::Drop);
        assert_eq!(
            delay.decide(&f, T0, &mut rng),
            IngressAction::Delay(SimDuration::from_millis(3))
        );
        assert_eq!(
            dup.decide(&f, T0, &mut rng),
            IngressAction::Duplicate(SimDuration::from_millis(4))
        );
        for r in [&drop, &delay, &dup] {
            assert_eq!(r.stats(), RuleStats { matched: 1, fired: 1 });
        }
    }
}
