//! Deterministic discrete-event network simulator for the ST-TCP
//! reproduction.
//!
//! The ST-TCP paper evaluates a Linux kernel prototype on a physical LAN
//! (two server PCs, a laptop client, a 10/100 Mbit hub). This crate
//! replaces that hardware with a *deterministic* discrete-event simulation:
//! virtual time has nanosecond resolution, every run is exactly
//! reproducible, and faults (crashes, packet loss, tap omissions, power
//! fencing) are injected at precise virtual instants. Determinism is what
//! lets the benchmark harness measure failover times without averaging
//! over noisy wall-clock runs.
//!
//! # Architecture
//!
//! * [`Simulator`] owns a set of [`Node`]s (hosts, hubs, switches,
//!   loggers, power switches) wired together by point-to-point [`link`]s
//!   that model latency, bandwidth serialization, and loss.
//! * Nodes are sans-io: they receive frames and timer wake-ups through a
//!   [`Context`] and emit frames/timers/control actions back through it.
//!   All effects are buffered and applied by the simulator, which keeps
//!   the event order deterministic.
//! * [`hub::Hub`] models the broadcast Ethernet of the paper's testbed;
//!   [`switch::Switch`] models switched Ethernet with the port-mirroring
//!   and multicast-flooding tapping architectures of §3.1.
//! * [`power::PowerSwitch`] provides the fencing ("convert wrong
//!   suspicions into correct ones by switching off the power", §4.4).
//! * [`logger::PacketLogger`] is the in-network packet logger of §3.2
//!   that masks omission+crash double failures.
//!
//! # Example
//!
//! ```
//! use netsim::{Simulator, LinkSpec, SimDuration, node::{Node, Context, PortId}};
//! use bytes::Bytes;
//!
//! struct Pinger { sent: bool }
//! struct Echoer { got: usize }
//!
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context) {
//!         ctx.send_frame(PortId(0), Bytes::from_static(b"ping"));
//!         self.sent = true;
//!     }
//!     fn on_frame(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut Context) {}
//! }
//! impl Node for Echoer {
//!     fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
//!         self.got += frame.len();
//!         ctx.send_frame(port, frame);
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let a = sim.add_node("pinger", Pinger { sent: false });
//! let b = sim.add_node("echoer", Echoer { got: 0 });
//! sim.connect(a, PortId(0), b, PortId(0), LinkSpec::lan());
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.node_ref::<Echoer>(b).got, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod hub;
pub mod link;
pub mod logger;
pub mod node;
pub mod pcap;
pub mod power;
pub mod rng;
pub mod shared_hub;
pub mod sim;
pub mod switch;
pub mod time;
pub mod trace;

pub use fault::{
    DelayRule, DropRule, DuplicateRule, IngressAction, IngressRule, RuleId, RuleStats,
};
pub use hub::Hub;
pub use link::{LinkId, LinkProfile, LinkSpec, LinkStats, LossModel};
pub use logger::PacketLogger;
pub use node::{Context, Node, NodeId, PortId};
pub use power::PowerSwitch;
pub use rng::SplitMix64;
pub use shared_hub::SharedHub;
pub use sim::Simulator;
pub use switch::Switch;
pub use time::{SimDuration, SimTime};
pub use trace::{ProbeEvent, Trace};
