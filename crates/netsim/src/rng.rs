//! A tiny deterministic PRNG for loss models.
//!
//! The simulator cannot use a global or time-seeded generator — runs must
//! replay bit-identically. SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators") is small, fast, and passes BigCrush
//! for this use; we do not need cryptographic strength to decide whether
//! a frame is dropped.

/// SplitMix64 PRNG state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` via rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Consume a draw anyway so changing p does not shift the
            // stream consumed by later decisions.
            let _ = self.next_u64();
            return false;
        }
        self.next_f64() < p
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x05EE_D0F5_77C9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // Published SplitMix64 test vector for seed 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(42);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(11);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_zero_still_advances_stream() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        let _ = a.chance(0.0);
        let _ = b.chance(0.5);
        // Both consumed exactly one draw.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
