//! The simulator's event queue.
//!
//! Events are ordered by `(time, sequence)`, where the sequence number is
//! assigned at insertion. Ties in virtual time therefore process in
//! insertion order, which — together with the buffered-effects node API —
//! makes every simulation run bit-reproducible.

use crate::node::{ControlAction, NodeId, PortId};
use crate::time::SimTime;
use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver a frame to `node` on `port`.
    Frame {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortId,
        /// Frame contents.
        frame: Bytes,
    },
    /// Deliver a frame to `node` on `port`, bypassing ingress rules.
    ///
    /// Used to re-inject frames an ingress [`crate::fault::DelayRule`]
    /// held back or a [`crate::fault::DuplicateRule`] copied — running
    /// them through the rules again would delay/duplicate them forever.
    InjectedFrame {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortId,
        /// Frame contents.
        frame: Bytes,
    },
    /// Wake `node`'s `on_timer` with `token`.
    Timer {
        /// Node to wake.
        node: NodeId,
        /// Caller-chosen token.
        token: u64,
    },
    /// Call `on_start` on `node` (simulation start or power-on).
    Start {
        /// Node to start.
        node: NodeId,
    },
    /// Apply a control action (fencing etc.).
    Control(ControlAction),
}

#[derive(Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The node an event is addressed to, if any (control events act on
/// the simulator itself).
pub fn event_target(kind: &EventKind) -> Option<NodeId> {
    match kind {
        EventKind::Frame { node, .. }
        | EventKind::InjectedFrame { node, .. }
        | EventKind::Timer { node, .. }
        | EventKind::Start { node } => Some(*node),
        EventKind::Control(_) => None,
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` to fire at `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer { node: NodeId(node), token }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), timer(0, 3));
        q.push(SimTime::from_nanos(10), timer(0, 1));
        q.push(SimTime::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for token in 0..100 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| match k {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
