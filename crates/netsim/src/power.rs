//! A controllable power switch for fencing (STONITH).
//!
//! Paper §3.2/§4.4: "If the backup suspects the primary, it switches off
//! the power of the primary. This makes sure that the primary is crashed
//! before the backup takes over the IP address of the service" — i.e.
//! wrong suspicions are *converted into correct ones*, which is what
//! makes the timeout-based failure detector behave like a perfect one.
//!
//! The power switch hangs off a management segment and obeys a trivial
//! layer-2 protocol (EtherType `0x88B5`): a one-byte opcode followed by a
//! little-endian `u32` outlet number. Outlets are bound to simulator
//! nodes at construction time.

use crate::node::{Context, ControlAction, Node, NodeId, PortId};
use bytes::{BufMut, Bytes, BytesMut};
use wire::{EtherType, EthernetFrame, MacAddr};

/// EtherType of power-switch command frames.
pub const POWER_ETHERTYPE: u16 = 0x88B5;

const OP_OFF: u8 = 0xF0;
const OP_ON: u8 = 0xF1;

/// Builds the command frame that switches outlet `outlet` off.
pub fn power_off_frame(src: MacAddr, outlet: u32) -> Bytes {
    command_frame(src, OP_OFF, outlet)
}

/// Builds the command frame that switches outlet `outlet` on.
pub fn power_on_frame(src: MacAddr, outlet: u32) -> Bytes {
    command_frame(src, OP_ON, outlet)
}

fn command_frame(src: MacAddr, op: u8, outlet: u32) -> Bytes {
    let mut payload = BytesMut::with_capacity(5);
    payload.put_u8(op);
    payload.put_u32_le(outlet);
    EthernetFrame::new(MacAddr::BROADCAST, src, EtherType::Other(POWER_ETHERTYPE), payload.freeze())
        .encode()
}

/// A remotely controllable power switch.
///
/// Receives command frames on any port and cuts (or restores) power to
/// the node plugged into the named outlet. Cutting power is the
/// simulator-level [`ControlAction::PowerOff`], the only way one node can
/// affect another outside the network.
#[derive(Debug, Clone)]
pub struct PowerSwitch {
    outlets: Vec<NodeId>,
    /// Successful off commands executed.
    pub offs: u64,
    /// Successful on commands executed.
    pub ons: u64,
}

impl PowerSwitch {
    /// Creates a power switch; `outlets[i]` is the node powered by
    /// outlet `i`.
    pub fn new(outlets: Vec<NodeId>) -> Self {
        PowerSwitch { outlets, offs: 0, ons: 0 }
    }
}

impl Node for PowerSwitch {
    fn on_frame(&mut self, _port: PortId, frame: Bytes, ctx: &mut Context) {
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return;
        };
        if eth.ethertype != EtherType::Other(POWER_ETHERTYPE) || eth.payload.len() < 5 {
            return;
        }
        let op = eth.payload[0];
        let outlet =
            u32::from_le_bytes([eth.payload[1], eth.payload[2], eth.payload[3], eth.payload[4]]);
        let Some(&node) = self.outlets.get(outlet as usize) else {
            return;
        };
        match op {
            OP_OFF => {
                ctx.control(ControlAction::PowerOff(node));
                self.offs += 1;
            }
            OP_ON => {
                ctx.control(ControlAction::PowerOn(node));
                self.ons += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;
    use crate::time::SimDuration;

    struct Victim;
    impl Node for Victim {
        fn on_frame(&mut self, _p: PortId, _f: Bytes, _c: &mut Context) {}
    }

    /// Sends a power-off for outlet 0 at start.
    struct Fencer;
    impl Node for Fencer {
        fn on_start(&mut self, ctx: &mut Context) {
            ctx.send_frame(PortId(0), power_off_frame(MacAddr::local(1), 0));
        }
        fn on_frame(&mut self, _p: PortId, _f: Bytes, _c: &mut Context) {}
    }

    #[test]
    fn fencing_kills_the_victim() {
        let mut sim = Simulator::new();
        let victim = sim.add_node("victim", Victim);
        let psw = sim.add_node("power", PowerSwitch::new(vec![victim]));
        let fencer = sim.add_node("fencer", Fencer);
        sim.connect(fencer, PortId(0), psw, PortId(0), LinkSpec::lan());
        assert!(sim.is_alive(victim));
        sim.run_for(SimDuration::from_secs(1));
        assert!(!sim.is_alive(victim), "power switch must cut the victim's power");
        assert_eq!(sim.node_ref::<PowerSwitch>(psw).offs, 1);
    }

    #[test]
    fn power_on_restores() {
        let mut sim = Simulator::new();
        let victim = sim.add_node("victim", Victim);
        let psw = sim.add_node("power", PowerSwitch::new(vec![victim]));
        struct Cycler;
        impl Node for Cycler {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.send_frame(PortId(0), power_off_frame(MacAddr::local(1), 0));
                ctx.set_timer_after(SimDuration::from_millis(100), 0);
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut Context) {
                ctx.send_frame(PortId(0), power_on_frame(MacAddr::local(1), 0));
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, _c: &mut Context) {}
        }
        let cycler = sim.add_node("cycler", Cycler);
        sim.connect(cycler, PortId(0), psw, PortId(0), LinkSpec::lan());
        sim.run_for(SimDuration::from_millis(50));
        assert!(!sim.is_alive(victim));
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.is_alive(victim));
    }

    #[test]
    fn unknown_outlet_and_garbage_ignored() {
        let mut sim = Simulator::new();
        let victim = sim.add_node("victim", Victim);
        let psw = sim.add_node("power", PowerSwitch::new(vec![victim]));
        struct Noise;
        impl Node for Noise {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.send_frame(PortId(0), power_off_frame(MacAddr::local(1), 42)); // bad outlet
                ctx.send_frame(PortId(0), Bytes::from_static(b"runt"));
                let bogus = EthernetFrame::new(
                    MacAddr::BROADCAST,
                    MacAddr::local(1),
                    EtherType::Other(POWER_ETHERTYPE),
                    Bytes::from_static(&[0x99, 0, 0, 0, 0]), // bad opcode
                );
                ctx.send_frame(PortId(0), bogus.encode());
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, _c: &mut Context) {}
        }
        let noise = sim.add_node("noise", Noise);
        sim.connect(noise, PortId(0), psw, PortId(0), LinkSpec::lan());
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.is_alive(victim));
        assert_eq!(sim.node_ref::<PowerSwitch>(psw).offs, 0);
    }
}
