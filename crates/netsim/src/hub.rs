//! A broadcast Ethernet hub.
//!
//! The paper's testbed is "a 10/100 Mbit Ethernet hub. Since the hub
//! broadcasts all traffic on all ports, the backup can tap into all of
//! the primary's network traffic" (§6). A hub repeats every frame out of
//! every port except the one it arrived on. Collisions are not modelled;
//! contention appears as serialization delay on the individual links.

use crate::node::{Context, Node, PortId};
use bytes::Bytes;

/// A repeating hub with a fixed number of ports.
#[derive(Debug, Clone)]
pub struct Hub {
    ports: usize,
    /// Frames repeated so far (for diagnostics).
    pub frames_repeated: u64,
}

impl Hub {
    /// Creates a hub with `ports` ports (0..ports).
    ///
    /// # Panics
    ///
    /// Panics if `ports < 2` — a hub with fewer ports repeats nothing.
    pub fn new(ports: usize) -> Self {
        assert!(ports >= 2, "a hub needs at least 2 ports");
        Hub { ports, frames_repeated: 0 }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }
}

impl Node for Hub {
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        for p in 0..self.ports {
            if p != port.0 {
                ctx.send_frame(PortId(p), frame.clone());
            }
        }
        self.frames_repeated += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;
    use crate::time::SimDuration;

    struct Talker {
        say: Option<Bytes>,
        heard: Vec<Bytes>,
    }

    impl Node for Talker {
        fn on_start(&mut self, ctx: &mut Context) {
            if let Some(msg) = self.say.take() {
                ctx.send_frame(PortId(0), msg);
            }
        }
        fn on_frame(&mut self, _port: PortId, frame: Bytes, _ctx: &mut Context) {
            self.heard.push(frame);
        }
    }

    #[test]
    fn hub_floods_to_all_other_ports() {
        let mut sim = Simulator::new();
        let hub = sim.add_node("hub", Hub::new(4));
        let talker = sim
            .add_node("talker", Talker { say: Some(Bytes::from_static(b"hello")), heard: vec![] });
        let listeners: Vec<_> = (0..3)
            .map(|i| sim.add_node(format!("l{i}"), Talker { say: None, heard: vec![] }))
            .collect();
        sim.connect(talker, PortId(0), hub, PortId(0), LinkSpec::ideal());
        for (i, &l) in listeners.iter().enumerate() {
            sim.connect(l, PortId(0), hub, PortId(i + 1), LinkSpec::ideal());
        }
        sim.run_for(SimDuration::from_secs(1));
        for &l in &listeners {
            assert_eq!(sim.node_ref::<Talker>(l).heard, vec![Bytes::from_static(b"hello")]);
        }
        // The sender must NOT hear its own frame back.
        assert!(sim.node_ref::<Talker>(talker).heard.is_empty());
        assert_eq!(sim.node_ref::<Hub>(hub).frames_repeated, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 ports")]
    fn tiny_hub_rejected() {
        let _ = Hub::new(1);
    }
}
