//! The [`Node`] trait and the [`Context`] through which nodes act.
//!
//! Nodes are sans-io state machines: the simulator calls them with frames
//! and timer wake-ups, and they respond by buffering effects (frames to
//! emit, timers to arm, control actions) into the [`Context`]. The
//! simulator applies the effects after the callback returns, which keeps
//! event ordering deterministic and sidesteps aliasing between nodes.

use crate::rng::SplitMix64;
use crate::time::SimTime;
use bytes::Bytes;
use std::any::Any;
use std::fmt;

/// Identifies a node within a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies a port (NIC) on a node. Ports are node-local and dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A privileged action a node asks the simulator to perform.
///
/// Only "hardware" nodes should use these: the paper's power switch cuts
/// another machine's power (fencing), which no amount of packet exchange
/// can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Immediately crash `node`: it stops emitting, and all frames and
    /// timers addressed to it are discarded from now on.
    PowerOff(NodeId),
    /// Restore a powered-off node. Its in-memory state is NOT restored to
    /// anything meaningful (a rebooted machine loses TCP state) — the node
    /// simply starts receiving events again and gets an `on_start` call.
    PowerOn(NodeId),
    /// Stall `node` until the given instant (performance failure): its
    /// events are deferred, not lost, and its state is preserved.
    Pause(NodeId, crate::time::SimTime),
}

/// Buffered effects and environment for one node callback.
///
/// Everything a node does during `on_start`/`on_frame`/`on_timer` goes
/// through this context. Frames are transmitted in the order queued.
#[derive(Debug)]
pub struct Context {
    now: SimTime,
    node: NodeId,
    pub(crate) frames: Vec<(PortId, Bytes)>,
    pub(crate) timers: Vec<(SimTime, u64)>,
    pub(crate) control: Vec<ControlAction>,
    pub(crate) rng: SplitMix64,
}

impl Context {
    pub(crate) fn new(now: SimTime, node: NodeId, rng: SplitMix64) -> Self {
        Context { now, node, frames: Vec::new(), timers: Vec::new(), control: Vec::new(), rng }
    }

    /// Re-arms a used context for the next dispatch, keeping the effect
    /// vectors' capacity so a steady-state dispatch never allocates.
    pub(crate) fn rearm(&mut self, now: SimTime, node: NodeId, rng: SplitMix64) {
        self.now = now;
        self.node = node;
        self.rng = rng;
        self.frames.clear();
        self.timers.clear();
        self.control.clear();
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Queues `frame` for transmission out of `port`.
    ///
    /// If the port is not wired to a link the frame is silently dropped
    /// (like a cable that isn't plugged in) and counted in the trace.
    pub fn send_frame(&mut self, port: PortId, frame: Bytes) {
        self.frames.push((port, frame));
    }

    /// Arms a timer that fires `on_timer(token)` at absolute time `at`.
    ///
    /// Timers cannot be cancelled; nodes ignore stale wake-ups by tracking
    /// their own generation counters (see the host adapters in `sttcp`).
    /// `at` values in the past fire immediately after the current event.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        self.timers.push((at.max(self.now), token));
    }

    /// Arms a timer `after` from now. Convenience over [`Self::set_timer_at`].
    pub fn set_timer_after(&mut self, after: crate::time::SimDuration, token: u64) {
        self.set_timer_at(self.now + after, token);
    }

    /// Requests a privileged control action (see [`ControlAction`]).
    pub fn control(&mut self, action: ControlAction) {
        self.control.push(action);
    }

    /// Deterministic per-simulation randomness.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

/// A device attached to the simulated network.
///
/// Implementors must also be `Any` (automatic for `'static` types) so the
/// simulator can hand back concrete references after a run via
/// [`crate::Simulator::node_ref`].
pub trait Node: Any {
    /// Called once when the simulation starts (or when the node is
    /// powered back on). Default: do nothing.
    fn on_start(&mut self, ctx: &mut Context) {
        let _ = ctx;
    }

    /// Called when a frame arrives on `port`.
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context);

    /// Called when a timer armed via [`Context::set_timer_at`] fires.
    /// Default: do nothing.
    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        let _ = (token, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Null;
    impl Node for Null {
        fn on_frame(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut Context) {}
    }

    #[test]
    fn context_buffers_effects_in_order() {
        let mut ctx = Context::new(SimTime::from_nanos(100), NodeId(3), SplitMix64::new(1));
        ctx.send_frame(PortId(0), Bytes::from_static(b"a"));
        ctx.send_frame(PortId(1), Bytes::from_static(b"b"));
        ctx.set_timer_after(SimDuration::from_nanos(50), 7);
        ctx.control(ControlAction::PowerOff(NodeId(9)));
        assert_eq!(ctx.frames.len(), 2);
        assert_eq!(ctx.frames[0].0, PortId(0));
        assert_eq!(ctx.timers, vec![(SimTime::from_nanos(150), 7)]);
        assert_eq!(ctx.control, vec![ControlAction::PowerOff(NodeId(9))]);
        assert_eq!(ctx.node_id(), NodeId(3));
        assert_eq!(ctx.now(), SimTime::from_nanos(100));
    }

    #[test]
    fn past_timers_clamp_to_now() {
        let mut ctx = Context::new(SimTime::from_nanos(100), NodeId(0), SplitMix64::new(1));
        ctx.set_timer_at(SimTime::from_nanos(10), 1);
        assert_eq!(ctx.timers[0].0, SimTime::from_nanos(100));
    }

    #[test]
    fn default_trait_methods_are_noops() {
        let mut n = Null;
        let mut ctx = Context::new(SimTime::ZERO, NodeId(0), SplitMix64::new(1));
        n.on_start(&mut ctx);
        n.on_timer(0, &mut ctx);
        assert!(ctx.frames.is_empty() && ctx.timers.is_empty());
    }

    #[test]
    fn ids_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(PortId(2).to_string(), "p2");
    }
}
