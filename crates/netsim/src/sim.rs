//! The [`Simulator`]: event loop, wiring, fault scheduling, inspection.

use crate::event::{event_target, EventKind, EventQueue};
use crate::fault::{
    DelayRule, DropRule, DuplicateRule, IngressAction, IngressRule, RuleId, RuleStats,
};
use crate::link::{LinkId, LinkSpec, LinkStats, LossModel};
use crate::node::{Context, ControlAction, Node, NodeId, PortId};
use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};
use crate::trace::{FrameRecord, ProbeEvent, Trace};
use bytes::Bytes;
use obs::trace::{FaultKind, PowerKind};
use obs::{Counter, Gauge, SharedRecorder, TraceEvent};
use std::any::Any;
use std::borrow::Cow;

/// Callback observing every frame accepted for transmission.
pub type Probe = Box<dyn FnMut(ProbeEvent<'_>)>;

struct NodeSlot {
    node: Option<Box<dyn Node>>,
    name: String,
    alive: bool,
    paused_until: SimTime,
    /// Wiring, indexed by `PortId` (ports are node-local and dense, so a
    /// flat table beats hashing on the per-frame transmit path).
    ports: Vec<Option<(LinkId, usize)>>,
    rules: Vec<IngressRule>,
}

struct LinkState {
    spec: LinkSpec,
    ends: [(NodeId, PortId); 2],
    stats: LinkStats,
    busy_until: [SimTime; 2],
    /// Per-direction Gilbert–Elliott burst state (true = bad state);
    /// only consulted by `LossModel::GilbertElliott`.
    ge_bad: [bool; 2],
}

/// A deterministic discrete-event network simulator.
///
/// See the crate-level docs for an end-to-end example. All mutation of
/// simulated state happens inside [`Simulator::step`]; the various `run_*`
/// methods just loop over it.
pub struct Simulator {
    nodes: Vec<NodeSlot>,
    links: Vec<LinkState>,
    queue: EventQueue,
    now: SimTime,
    rng: SplitMix64,
    trace: Trace,
    probe: Option<Probe>,
    /// Recycled dispatch context (keeps its effect vectors' capacity, so
    /// steady-state dispatches allocate nothing).
    scratch: Option<Context>,
    /// Every crash scheduled through [`Simulator::schedule_crash`], in
    /// scheduling order (campaign reports attribute failures to it).
    crash_schedule: Vec<(NodeId, SimTime)>,
    /// Observability sink for link/ingress events (no-op by default).
    recorder: SharedRecorder,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates a simulator with the default RNG seed.
    pub fn new() -> Self {
        Self::with_seed(0xD15C_0B01)
    }

    /// Creates a simulator whose loss models draw from a generator seeded
    /// with `seed`. Equal seeds (and equal scenarios) replay identically.
    pub fn with_seed(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            links: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SplitMix64::new(seed),
            trace: Trace::default(),
            probe: None,
            scratch: None,
            crash_schedule: Vec::new(),
            recorder: obs::nop(),
        }
    }

    /// Installs an observability recorder; link-layer drops, queue depth,
    /// and ingress-fault outcomes are reported to it from then on.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// The currently installed recorder (the no-op one by default).
    pub fn recorder(&self) -> &SharedRecorder {
        &self.recorder
    }

    /// Adds a node and returns its id. `on_start` fires when the
    /// simulation first runs.
    pub fn add_node(&mut self, name: impl Into<String>, node: impl Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            node: Some(Box::new(node)),
            name: name.into(),
            alive: true,
            paused_until: SimTime::ZERO,
            ports: Vec::new(),
            rules: Vec::new(),
        });
        self.queue.push(SimTime::ZERO, EventKind::Start { node: id });
        id
    }

    /// Wires port `pa` of node `a` to port `pb` of node `b`.
    ///
    /// # Panics
    ///
    /// Panics if either port is already wired or a node id is invalid.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        spec: LinkSpec,
    ) -> LinkId {
        let id = LinkId(self.links.len());
        for (end, (node, port)) in [(a, pa), (b, pb)].into_iter().enumerate() {
            let slot = &mut self.nodes[node.0];
            if slot.ports.len() <= port.0 {
                slot.ports.resize(port.0 + 1, None);
            }
            let prev = slot.ports[port.0].replace((id, end));
            assert!(prev.is_none(), "port {port} of node {node} already wired");
        }
        self.links.push(LinkState {
            spec,
            ends: [(a, pa), (b, pb)],
            stats: LinkStats::default(),
            busy_until: [SimTime::ZERO; 2],
            ge_bad: [false; 2],
        });
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The display name given to `id` at [`Simulator::add_node`] time.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Whether `id` is powered on.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes[id.0].alive
    }

    /// Borrow a node as its concrete type (after or between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a `T`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> &T {
        let any: &dyn Any =
            self.nodes[id.0].node.as_deref().expect("node is currently being dispatched");
        any.downcast_ref::<T>().unwrap_or_else(|| {
            panic!("node {id} ({}) is not a {}", self.nodes[id.0].name, std::any::type_name::<T>())
        })
    }

    /// Mutable variant of [`Simulator::node_ref`].
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a `T`.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let slot = &mut self.nodes[id.0];
        let any: &mut dyn Any =
            slot.node.as_deref_mut().expect("node is currently being dispatched");
        if !(*any).is::<T>() {
            panic!("node {id} ({}) is not a {}", slot.name, std::any::type_name::<T>());
        }
        any.downcast_mut::<T>().expect("type just checked")
    }

    /// Schedules a crash (power-off) of `node` at absolute time `at`.
    ///
    /// From that instant the node receives no frames or timers and emits
    /// nothing — fail-stop semantics, the paper's §4.4 failure model.
    pub fn schedule_crash(&mut self, node: NodeId, at: SimTime) {
        self.crash_schedule.push((node, at));
        self.queue.push(at, EventKind::Control(ControlAction::PowerOff(node)));
    }

    /// Every crash scheduled so far, in scheduling order.
    pub fn crash_schedule(&self) -> &[(NodeId, SimTime)] {
        &self.crash_schedule
    }

    /// Schedules powering `node` back on at `at`; it gets a fresh
    /// `on_start` call (its Rust state is whatever it was — nodes that
    /// model reboots must reset themselves in `on_start`).
    pub fn schedule_power_on(&mut self, node: NodeId, at: SimTime) {
        self.queue.push(at, EventKind::Control(ControlAction::PowerOn(node)));
    }

    /// Pauses `node` from `from` until `from + duration` — a
    /// *performance failure* (paper §4.4's failure model includes them):
    /// the machine is alive but makes no progress; its frames and timers
    /// are delivered late rather than lost. This is exactly the failure
    /// mode that makes timeout-based detection "wrong" and fencing
    /// necessary: the paused primary will resume and keep acting as the
    /// service unless its power is cut.
    ///
    /// ```
    /// use netsim::{Simulator, SimTime, SimDuration};
    /// # struct N;
    /// # impl netsim::Node for N {
    /// #   fn on_frame(&mut self, _p: netsim::PortId, _f: bytes::Bytes, _c: &mut netsim::Context) {}
    /// # }
    /// let mut sim = Simulator::new();
    /// let node = sim.add_node("stalls", N);
    /// sim.schedule_pause(node, SimTime::ZERO + SimDuration::from_millis(100),
    ///                    SimDuration::from_secs(1));
    /// ```
    pub fn schedule_pause(&mut self, node: NodeId, from: SimTime, duration: SimDuration) {
        self.queue.push(from, EventKind::Control(ControlAction::Pause(node, from + duration)));
    }

    /// Installs any ingress rule on `node`; the returned [`RuleId`]
    /// retrieves its counters via [`Simulator::ingress_rule_stats`].
    pub fn add_ingress_rule(&mut self, node: NodeId, rule: impl Into<IngressRule>) -> RuleId {
        let rules = &mut self.nodes[node.0].rules;
        rules.push(rule.into());
        RuleId(rules.len() - 1)
    }

    /// Installs an ingress [`DropRule`] on `node` (tap-omission faults).
    pub fn add_ingress_drop(&mut self, node: NodeId, rule: DropRule) -> RuleId {
        self.add_ingress_rule(node, rule)
    }

    /// Installs an ingress [`DelayRule`] on `node` (reordering faults).
    pub fn add_ingress_delay(&mut self, node: NodeId, rule: DelayRule) -> RuleId {
        self.add_ingress_rule(node, rule)
    }

    /// Installs an ingress [`DuplicateRule`] on `node`.
    pub fn add_ingress_duplicate(&mut self, node: NodeId, rule: DuplicateRule) -> RuleId {
        self.add_ingress_rule(node, rule)
    }

    /// Counters of one ingress rule on `node`.
    ///
    /// # Panics
    ///
    /// Panics if `rule` was not returned for this `node`.
    pub fn ingress_rule_stats(&self, node: NodeId, rule: RuleId) -> RuleStats {
        self.nodes[node.0].rules[rule.0].stats()
    }

    /// Total frames dropped so far by `node`'s ingress drop rules.
    pub fn ingress_dropped(&self, node: NodeId) -> u64 {
        self.nodes[node.0]
            .rules
            .iter()
            .filter_map(|r| match r {
                IngressRule::Drop(d) => Some(d.dropped()),
                _ => None,
            })
            .sum()
    }

    /// Number of events pending in the queue. A simulator with zero
    /// pending events is *wedged*: nothing will ever happen again
    /// without outside intervention.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Statistics for a link.
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.links[link.0].stats
    }

    /// Replaces the link spec (e.g. to degrade a link mid-run).
    pub fn set_link_spec(&mut self, link: LinkId, spec: LinkSpec) {
        self.links[link.0].spec = spec;
    }

    /// Installs a probe observing every frame accepted for transmission.
    pub fn set_probe(&mut self, probe: impl FnMut(ProbeEvent<'_>) + 'static) {
        self.probe = Some(Box::new(probe));
    }

    /// Counters and (optionally) the frame log.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (to enable frame recording).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Runs a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.trace.events_processed += 1;
        // A paused node (performance failure) neither processes nor
        // loses its events: they are deferred until the pause ends, like
        // a machine stalled in a long GC pause or an SMI. Control events
        // (power) act on the hardware and are never deferred.
        if let Some(node) = event_target(&kind) {
            let until = self.nodes[node.0].paused_until;
            if until > self.now {
                self.queue.push(until, kind);
                return true;
            }
        }
        match kind {
            EventKind::Start { node } => {
                if self.nodes[node.0].alive {
                    self.dispatch(node, |n, ctx| n.on_start(ctx));
                }
            }
            EventKind::Timer { node, token } => {
                if self.nodes[node.0].alive {
                    self.dispatch(node, |n, ctx| n.on_timer(token, ctx));
                }
            }
            EventKind::Frame { node, port, frame } => {
                if !self.nodes[node.0].alive {
                    self.trace.frames_to_dead_node += 1;
                } else {
                    match self.ingress_decide(node, &frame) {
                        IngressAction::Drop => {
                            self.trace.frames_dropped_ingress += 1;
                            self.recorder.count(Counter::IngressDrops, 1);
                            self.trace_fault(FaultKind::Drop);
                        }
                        IngressAction::Delay(d) => {
                            self.trace.frames_delayed_ingress += 1;
                            self.recorder.count(Counter::IngressDelays, 1);
                            self.trace_fault(FaultKind::Delay);
                            self.queue
                                .push(self.now + d, EventKind::InjectedFrame { node, port, frame });
                        }
                        IngressAction::Duplicate(d) => {
                            self.trace.frames_duplicated_ingress += 1;
                            self.recorder.count(Counter::IngressDuplicates, 1);
                            self.trace_fault(FaultKind::Duplicate);
                            self.queue.push(
                                self.now + d,
                                EventKind::InjectedFrame { node, port, frame: frame.clone() },
                            );
                            self.trace.frames_delivered += 1;
                            self.dispatch(node, |n, ctx| n.on_frame(port, frame, ctx));
                        }
                        IngressAction::Deliver => {
                            self.trace.frames_delivered += 1;
                            self.dispatch(node, |n, ctx| n.on_frame(port, frame, ctx));
                        }
                    }
                }
            }
            EventKind::InjectedFrame { node, port, frame } => {
                if !self.nodes[node.0].alive {
                    self.trace.frames_to_dead_node += 1;
                } else {
                    self.trace.frames_delivered += 1;
                    self.dispatch(node, |n, ctx| n.on_frame(port, frame, ctx));
                }
            }
            EventKind::Control(action) => self.apply_control(action),
        }
        true
    }

    /// Runs until the queue is exhausted or `max_events` have fired.
    /// Returns the number of events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Processes every event scheduled at or before `deadline`, then sets
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs every ingress rule over the frame (all of them, so each
    /// keeps counting) and combines their verdicts: drop beats delay
    /// beats duplicate beats deliver; concurrent delays take the
    /// longest hold.
    fn ingress_decide(&mut self, node: NodeId, frame: &Bytes) -> IngressAction {
        let slot = &mut self.nodes[node.0];
        if slot.rules.is_empty() {
            return IngressAction::Deliver;
        }
        let mut verdict = IngressAction::Deliver;
        for rule in &mut slot.rules {
            match (rule.decide(frame, self.now, &mut self.rng), &mut verdict) {
                (IngressAction::Drop, v) => *v = IngressAction::Drop,
                (IngressAction::Delay(d), IngressAction::Delay(held)) => *held = (*held).max(d),
                (IngressAction::Delay(_), IngressAction::Drop) => {}
                (IngressAction::Delay(d), v) => *v = IngressAction::Delay(d),
                (IngressAction::Duplicate(d), v @ IngressAction::Deliver) => {
                    *v = IngressAction::Duplicate(d)
                }
                (IngressAction::Duplicate(_) | IngressAction::Deliver, _) => {}
            }
        }
        verdict
    }

    fn dispatch(&mut self, id: NodeId, call: impl FnOnce(&mut dyn Node, &mut Context)) {
        let mut node = self.nodes[id.0].node.take().expect("re-entrant dispatch");
        let mut ctx = match self.scratch.take() {
            Some(mut c) => {
                c.rearm(self.now, id, self.rng);
                c
            }
            None => Context::new(self.now, id, self.rng),
        };
        call(node.as_mut(), &mut ctx);
        self.rng = ctx.rng;
        self.nodes[id.0].node = Some(node);
        self.apply_effects(id, &mut ctx);
        self.scratch = Some(ctx);
    }

    fn apply_effects(&mut self, id: NodeId, ctx: &mut Context) {
        for (port, frame) in ctx.frames.drain(..) {
            self.transmit(id, port, frame);
        }
        for (at, token) in ctx.timers.drain(..) {
            self.queue.push(at, EventKind::Timer { node: id, token });
        }
        for action in ctx.control.drain(..) {
            self.queue.push(self.now, EventKind::Control(action));
        }
    }

    fn apply_control(&mut self, action: ControlAction) {
        match action {
            ControlAction::PowerOff(node) => {
                self.nodes[node.0].alive = false;
                self.trace_power(node, PowerKind::Crash);
            }
            ControlAction::Pause(node, until) => {
                self.nodes[node.0].paused_until = until;
                self.trace_power(node, PowerKind::Pause);
            }
            ControlAction::PowerOn(node) => {
                if !self.nodes[node.0].alive {
                    self.nodes[node.0].alive = true;
                    self.queue.push(self.now, EventKind::Start { node });
                    self.trace_power(node, PowerKind::PowerOn);
                }
            }
        }
    }

    fn trace_fault(&self, kind: FaultKind) {
        self.recorder.trace(self.now.as_nanos(), &TraceEvent::FaultRule { kind });
    }

    fn trace_power(&self, node: NodeId, what: PowerKind) {
        self.recorder.trace(
            self.now.as_nanos(),
            &TraceEvent::NodePower { node: Cow::Owned(self.nodes[node.0].name.clone()), what },
        );
    }

    fn transmit(&mut self, from: NodeId, port: PortId, frame: Bytes) {
        let Some((link_id, end)) = self.nodes[from.0].ports.get(port.0).copied().flatten() else {
            self.trace.frames_unwired += 1;
            return;
        };
        let link = &mut self.links[link_id.0];
        let (to, to_port) = link.ends[1 - end];
        let dir = if end == 0 { &mut link.stats.a_to_b } else { &mut link.stats.b_to_a };

        // Loss model decides before the frame occupies the wire (a frame
        // corrupted on the wire still consumed air time; modelling it as
        // pre-drop keeps throughput slightly optimistic but simple).
        let lost = match link.spec.loss {
            LossModel::None => false,
            LossModel::Rate(p) => self.rng.chance(p),
            LossModel::GilbertElliott { p_enter, p_exit, loss } => {
                // Advance this direction's two-state Markov chain, then
                // draw the (state-conditional) loss.
                let bad = &mut link.ge_bad[end];
                *bad = if *bad { !self.rng.chance(p_exit) } else { self.rng.chance(p_enter) };
                *bad && self.rng.chance(loss)
            }
        };
        if lost {
            dir.dropped += 1;
            self.trace.frames_lost_on_link += 1;
            self.recorder.count(Counter::LinkLossDrops, 1);
            return;
        }

        // Bounded transmit queue: if the serialization backlog already
        // exceeds the configured depth, tail-drop (congestion loss).
        if let Some(depth) = link.spec.max_queue {
            let backlog =
                link.busy_until[end].checked_duration_since(self.now).unwrap_or(SimDuration::ZERO);
            if backlog > depth {
                dir.queue_drops += 1;
                self.trace.frames_lost_on_link += 1;
                self.recorder.count(Counter::LinkQueueDrops, 1);
                return;
            }
        }
        let start = self.now.max(link.busy_until[end]);
        let departure = start + link.spec.serialization_time_dir(frame.len(), end);
        link.busy_until[end] = departure;
        self.recorder.gauge_max(
            Gauge::LinkQueueDepth,
            departure.checked_duration_since(self.now).unwrap_or(SimDuration::ZERO).as_nanos(),
        );
        let mut arrival = departure + link.spec.latency;
        if !link.spec.jitter.is_zero() {
            arrival +=
                SimDuration::from_nanos(self.rng.next_below(link.spec.jitter.as_nanos() + 1));
        }
        dir.frames += 1;
        dir.bytes += frame.len() as u64;

        if let Some(probe) = self.probe.as_mut() {
            probe(ProbeEvent { time: departure, link: link_id, from, to, frame: &frame });
        }
        self.trace.record_frame(FrameRecord {
            time: departure,
            link: link_id,
            from,
            to,
            len: frame.len(),
        });
        self.queue.push(arrival, EventKind::Frame { node: to, port: to_port, frame });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends `count` frames of `len` bytes on start, counts what it gets.
    struct Blaster {
        count: usize,
        len: usize,
        received: Vec<(SimTime, usize)>,
    }

    impl Blaster {
        fn new(count: usize, len: usize) -> Self {
            Blaster { count, len, received: Vec::new() }
        }
    }

    impl Node for Blaster {
        fn on_start(&mut self, ctx: &mut Context) {
            for _ in 0..self.count {
                ctx.send_frame(PortId(0), Bytes::from(vec![0u8; self.len]));
            }
        }
        fn on_frame(&mut self, _port: PortId, frame: Bytes, ctx: &mut Context) {
            self.received.push((ctx.now(), frame.len()));
        }
    }

    struct Sink {
        received: Vec<(SimTime, usize)>,
    }

    impl Node for Sink {
        fn on_frame(&mut self, _port: PortId, frame: Bytes, ctx: &mut Context) {
            self.received.push((ctx.now(), frame.len()));
        }
    }

    fn pair(spec: LinkSpec) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Blaster::new(0, 0));
        let b = sim.add_node("b", Sink { received: Vec::new() });
        sim.connect(a, PortId(0), b, PortId(0), spec);
        (sim, a, b)
    }

    #[test]
    fn latency_only_delivery() {
        let (mut sim, a, b) = pair(LinkSpec::ideal().with_latency(SimDuration::from_millis(3)));
        sim.node_mut::<Blaster>(a).count = 1;
        sim.node_mut::<Blaster>(a).len = 100;
        sim.run_until_idle(1000);
        let rx = &sim.node_ref::<Sink>(b).received;
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].0, SimTime::ZERO + SimDuration::from_millis(3));
    }

    #[test]
    fn bandwidth_serializes_fifo() {
        // 2 frames of 1230B (+20B overhead = 1250B = 10_000 bits) at
        // 1 Mbit/s: 10ms each, so arrivals at 10ms and 20ms (zero latency).
        let spec = LinkSpec::ideal().with_bandwidth_bps(1_000_000);
        let (mut sim, a, b) = pair(spec);
        sim.node_mut::<Blaster>(a).count = 2;
        sim.node_mut::<Blaster>(a).len = 1230;
        sim.run_until_idle(1000);
        let rx = &sim.node_ref::<Sink>(b).received;
        assert_eq!(rx.len(), 2);
        assert_eq!(rx[0].0, SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(rx[1].0, SimTime::ZERO + SimDuration::from_millis(20));
    }

    #[test]
    fn directions_do_not_contend() {
        // Full-duplex: a->b and b->a transmissions at the same instant
        // each take their own serialization slot.
        struct PingPong {
            got: Vec<SimTime>,
        }
        impl Node for PingPong {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.send_frame(PortId(0), Bytes::from(vec![0; 1230]));
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, ctx: &mut Context) {
                self.got.push(ctx.now());
            }
        }
        let mut sim = Simulator::new();
        let a = sim.add_node("a", PingPong { got: vec![] });
        let b = sim.add_node("b", PingPong { got: vec![] });
        sim.connect(a, PortId(0), b, PortId(0), LinkSpec::ideal().with_bandwidth_bps(1_000_000));
        sim.run_until_idle(100);
        assert_eq!(
            sim.node_ref::<PingPong>(a).got,
            vec![SimTime::ZERO + SimDuration::from_millis(10)]
        );
        assert_eq!(
            sim.node_ref::<PingPong>(b).got,
            vec![SimTime::ZERO + SimDuration::from_millis(10)]
        );
    }

    #[test]
    fn crash_stops_delivery_and_timers() {
        struct Ticker {
            ticks: u32,
        }
        impl Node for Ticker {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer_after(SimDuration::from_millis(10), 0);
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, _ctx: &mut Context) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut Context) {
                self.ticks += 1;
                ctx.set_timer_after(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Simulator::new();
        let t = sim.add_node("ticker", Ticker { ticks: 0 });
        sim.schedule_crash(t, SimTime::ZERO + SimDuration::from_millis(55));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.node_ref::<Ticker>(t).ticks, 5);
        assert!(!sim.is_alive(t));
    }

    #[test]
    fn power_on_restarts_node() {
        struct Boots {
            boots: u32,
        }
        impl Node for Boots {
            fn on_start(&mut self, _ctx: &mut Context) {
                self.boots += 1;
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, _ctx: &mut Context) {}
        }
        let mut sim = Simulator::new();
        let n = sim.add_node("boots", Boots { boots: 0 });
        sim.schedule_crash(n, SimTime::ZERO + SimDuration::from_millis(10));
        sim.schedule_power_on(n, SimTime::ZERO + SimDuration::from_millis(20));
        sim.run_for(SimDuration::from_millis(30));
        assert_eq!(sim.node_ref::<Boots>(n).boots, 2);
        assert!(sim.is_alive(n));
    }

    #[test]
    fn frames_to_dead_node_counted() {
        let (mut sim, a, b) = pair(LinkSpec::ideal().with_latency(SimDuration::from_millis(5)));
        sim.node_mut::<Blaster>(a).count = 3;
        sim.node_mut::<Blaster>(a).len = 64;
        sim.schedule_crash(b, SimTime::ZERO + SimDuration::from_millis(1));
        sim.run_until_idle(100);
        assert_eq!(sim.node_ref::<Sink>(b).received.len(), 0);
        assert_eq!(sim.trace().frames_to_dead_node, 3);
    }

    #[test]
    fn loss_rate_drops_deterministically() {
        let run = |seed| {
            let mut sim = Simulator::with_seed(seed);
            let a = sim.add_node("a", Blaster::new(1000, 64));
            let b = sim.add_node("b", Sink { received: vec![] });
            let l = sim.connect(
                a,
                PortId(0),
                b,
                PortId(0),
                LinkSpec::ideal().with_loss(LossModel::Rate(0.3)),
            );
            sim.run_until_idle(10_000);
            (sim.node_ref::<Sink>(b).received.len(), sim.link_stats(l).a_to_b.dropped)
        };
        let (rx1, drop1) = run(7);
        let (rx2, drop2) = run(7);
        assert_eq!((rx1, drop1), (rx2, drop2));
        assert_eq!(rx1 as u64 + drop1, 1000);
        assert!((200..400).contains(&drop1), "30% loss dropped {drop1}/1000");
    }

    #[test]
    fn gilbert_elliott_loss_is_bursty_and_deterministic() {
        let run = |seed| {
            let mut sim = Simulator::with_seed(seed);
            let a = sim.add_node("a", Blaster::new(5000, 64));
            let b = sim.add_node("b", Sink { received: vec![] });
            let l = sim.connect(
                a,
                PortId(0),
                b,
                PortId(0),
                LinkSpec::ideal().with_loss(LossModel::GilbertElliott {
                    p_enter: 0.02,
                    p_exit: 0.25,
                    loss: 1.0,
                }),
            );
            sim.run_until_idle(100_000);
            (sim.node_ref::<Sink>(b).received.len(), sim.link_stats(l).a_to_b.dropped)
        };
        let (rx1, drop1) = run(42);
        let (rx2, drop2) = run(42);
        assert_eq!((rx1, drop1), (rx2, drop2), "same seed must replay identically");
        assert_eq!(rx1 as u64 + drop1, 5000);
        // Stationary bad-state fraction = p_enter/(p_enter+p_exit) ≈ 7.4%,
        // all of it lost (loss = 1.0). Allow a wide deterministic band.
        assert!((150..800).contains(&drop1), "GE dropped {drop1}/5000");
    }

    #[test]
    fn gilbert_elliott_state_is_per_direction() {
        // A one-way blast must leave the reverse direction's chain alone:
        // drops only ever appear in a_to_b.
        let mut sim = Simulator::with_seed(9);
        let a = sim.add_node("a", Blaster::new(1000, 64));
        let b = sim.add_node("b", Sink { received: vec![] });
        let l = sim.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkSpec::ideal().with_loss(LossModel::GilbertElliott {
                p_enter: 0.05,
                p_exit: 0.3,
                loss: 1.0,
            }),
        );
        sim.run_until_idle(100_000);
        assert!(sim.link_stats(l).a_to_b.dropped > 0);
        assert_eq!(sim.link_stats(l).b_to_a.dropped, 0);
    }

    #[test]
    fn ingress_drop_rule_applies() {
        let (mut sim, a, b) = pair(LinkSpec::ideal());
        sim.node_mut::<Blaster>(a).count = 10;
        sim.node_mut::<Blaster>(a).len = 64;
        sim.add_ingress_drop(b, DropRule::window(3, 2, |_| true));
        sim.run_until_idle(100);
        assert_eq!(sim.node_ref::<Sink>(b).received.len(), 8);
        assert_eq!(sim.ingress_dropped(b), 2);
        assert_eq!(sim.trace().frames_dropped_ingress, 2);
    }

    #[test]
    fn ingress_delay_rule_defers_delivery() {
        let (mut sim, a, b) = pair(LinkSpec::ideal().with_latency(SimDuration::from_millis(1)));
        sim.node_mut::<Blaster>(a).count = 3;
        sim.node_mut::<Blaster>(a).len = 64;
        // Delay only the second frame by 10ms: it arrives after the third
        // (reordering), nothing is lost.
        let rule = DelayRule::by(SimDuration::from_millis(10), |_| true).window(1, 1);
        let id = sim.add_ingress_delay(b, rule);
        sim.run_until_idle(100);
        let rx = &sim.node_ref::<Sink>(b).received;
        assert_eq!(rx.len(), 3, "delay must never lose a frame");
        assert_eq!(rx[0].0, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(rx[1].0, SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(rx[2].0, SimTime::ZERO + SimDuration::from_millis(11), "held frame lands late");
        assert_eq!(sim.ingress_rule_stats(b, id), RuleStats { matched: 3, fired: 1 });
        assert_eq!(sim.trace().frames_delayed_ingress, 1);
        assert_eq!(sim.ingress_dropped(b), 0);
    }

    #[test]
    fn ingress_duplicate_rule_delivers_twice() {
        let (mut sim, a, b) = pair(LinkSpec::ideal());
        sim.node_mut::<Blaster>(a).count = 2;
        sim.node_mut::<Blaster>(a).len = 64;
        let rule = DuplicateRule::after(SimDuration::from_millis(5), |_| true).window(0, 1);
        let id = sim.add_ingress_duplicate(b, rule);
        sim.run_until_idle(100);
        let rx = &sim.node_ref::<Sink>(b).received;
        assert_eq!(rx.len(), 3, "one original duplicated once");
        assert_eq!(sim.ingress_rule_stats(b, id), RuleStats { matched: 2, fired: 1 });
        assert_eq!(sim.trace().frames_duplicated_ingress, 1);
        // The copy bypasses ingress rules: it is not re-duplicated even
        // with an unbounded rule.
        let (mut sim2, a2, b2) = pair(LinkSpec::ideal());
        sim2.node_mut::<Blaster>(a2).count = 1;
        sim2.node_mut::<Blaster>(a2).len = 64;
        sim2.add_ingress_duplicate(b2, DuplicateRule::after(SimDuration::from_millis(5), |_| true));
        sim2.run_until_idle(100);
        assert_eq!(sim2.node_ref::<Sink>(b2).received.len(), 2);
    }

    #[test]
    fn drop_beats_delay_and_duplicate() {
        let (mut sim, a, b) = pair(LinkSpec::ideal());
        sim.node_mut::<Blaster>(a).count = 1;
        sim.node_mut::<Blaster>(a).len = 64;
        sim.add_ingress_delay(b, DelayRule::by(SimDuration::from_millis(5), |_| true));
        sim.add_ingress_drop(b, DropRule::all(|_| true));
        sim.add_ingress_duplicate(b, DuplicateRule::after(SimDuration::from_millis(5), |_| true));
        sim.run_until_idle(100);
        assert_eq!(sim.node_ref::<Sink>(b).received.len(), 0);
        assert_eq!(sim.trace().frames_dropped_ingress, 1);
    }

    #[test]
    fn crash_schedule_is_recorded() {
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Blaster::new(0, 0));
        let at = SimTime::ZERO + SimDuration::from_millis(7);
        sim.schedule_crash(a, at);
        assert_eq!(sim.crash_schedule(), &[(a, at)]);
    }

    #[test]
    fn pending_events_reaches_zero_when_idle() {
        let (mut sim, a, _b) = pair(LinkSpec::ideal());
        sim.node_mut::<Blaster>(a).count = 1;
        sim.node_mut::<Blaster>(a).len = 64;
        assert!(sim.pending_events() > 0);
        sim.run_until_idle(100);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn unwired_port_counted() {
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Blaster::new(1, 64));
        sim.run_until_idle(10);
        assert_eq!(sim.trace().frames_unwired, 1);
        let _ = a;
    }

    #[test]
    fn probe_sees_frames() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicU64::new(0));
        let c2 = count.clone();
        let (mut sim, a, _b) = pair(LinkSpec::ideal());
        sim.node_mut::<Blaster>(a).count = 4;
        sim.node_mut::<Blaster>(a).len = 64;
        sim.set_probe(move |ev| {
            assert_eq!(ev.frame.len(), 64);
            c2.fetch_add(1, Ordering::Relaxed);
        });
        sim.run_until_idle(100);
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn frame_recording() {
        let (mut sim, a, _b) = pair(LinkSpec::ideal());
        sim.node_mut::<Blaster>(a).count = 2;
        sim.node_mut::<Blaster>(a).len = 70;
        sim.trace_mut().set_recording(true);
        sim.run_until_idle(100);
        assert_eq!(sim.trace().frames.len(), 2);
        assert!(sim.trace().frames.iter().all(|r| r.len == 70));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new();
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn pause_defers_but_never_loses_events() {
        struct Ticker {
            ticks: Vec<SimTime>,
            frames: Vec<SimTime>,
        }
        impl Node for Ticker {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.set_timer_after(SimDuration::from_millis(10), 0);
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, ctx: &mut Context) {
                self.frames.push(ctx.now());
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut Context) {
                self.ticks.push(ctx.now());
                ctx.set_timer_after(SimDuration::from_millis(10), 0);
            }
        }
        let mut sim = Simulator::new();
        let t = sim.add_node("ticker", Ticker { ticks: vec![], frames: vec![] });
        let b = sim.add_node("blaster", Blaster::new(0, 0));
        sim.connect(
            b,
            PortId(0),
            t,
            PortId(0),
            LinkSpec::ideal().with_latency(SimDuration::from_millis(1)),
        );
        // Pause [25ms, 60ms): ticks at 30,40,50 defer to 60.
        sim.schedule_pause(
            t,
            SimTime::ZERO + SimDuration::from_millis(25),
            SimDuration::from_millis(35),
        );
        sim.run_for(SimDuration::from_millis(100));
        let ticks: Vec<u64> =
            sim.node_ref::<Ticker>(t).ticks.iter().map(|x| x.as_nanos() / 1_000_000).collect();
        // 10, 20, then the 30ms tick deferred to 60, then 70, 80, 90, 100.
        assert_eq!(ticks, vec![10, 20, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn paused_node_receives_frames_late_not_never() {
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Blaster::new(3, 64));
        let b = sim.add_node("b", Sink { received: vec![] });
        sim.connect(
            a,
            PortId(0),
            b,
            PortId(0),
            LinkSpec::ideal().with_latency(SimDuration::from_millis(1)),
        );
        sim.schedule_pause(b, SimTime::ZERO, SimDuration::from_millis(50));
        sim.run_for(SimDuration::from_millis(100));
        let rx = &sim.node_ref::<Sink>(b).received;
        assert_eq!(rx.len(), 3, "no frame may be lost by a pause");
        assert!(rx.iter().all(|(t, _)| *t >= SimTime::ZERO + SimDuration::from_millis(50)));
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn node_ref_wrong_type_panics() {
        let (sim, a, _) = pair(LinkSpec::ideal());
        let _ = sim.node_ref::<Sink>(a);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Blaster::new(0, 0));
        let b = sim.add_node("b", Blaster::new(0, 0));
        let c = sim.add_node("c", Blaster::new(0, 0));
        sim.connect(a, PortId(0), b, PortId(0), LinkSpec::ideal());
        sim.connect(a, PortId(0), c, PortId(0), LinkSpec::ideal());
    }
}
