//! Frame-level observability: counters, optional frame log, and probes.
//!
//! The benchmark harness uses probes to classify traffic (e.g. measuring
//! the side-channel overhead claim of paper §4.3: one 128-byte ack per
//! 3 KB of client data ≈ 4.17 % extra LAN traffic) without perturbing the
//! simulation.

use crate::link::LinkId;
use crate::node::NodeId;
use crate::time::SimTime;
use bytes::Bytes;

/// One frame transmission observed by a probe.
#[derive(Debug)]
pub struct ProbeEvent<'a> {
    /// Departure time of the frame (start of propagation).
    pub time: SimTime,
    /// Link the frame traverses.
    pub link: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The raw frame.
    pub frame: &'a Bytes,
}

/// A recorded frame transmission (only when frame recording is enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRecord {
    /// Departure time.
    pub time: SimTime,
    /// Link traversed.
    pub link: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Frame length in bytes.
    pub len: usize,
}

/// Aggregate counters plus the optional frame log.
#[derive(Debug, Default)]
pub struct Trace {
    /// Total events the simulator has processed.
    pub events_processed: u64,
    /// Frames handed to a live node.
    pub frames_delivered: u64,
    /// Frames dropped by link loss models.
    pub frames_lost_on_link: u64,
    /// Frames dropped by node ingress [`crate::DropRule`]s.
    pub frames_dropped_ingress: u64,
    /// Frames held back by ingress [`crate::DelayRule`]s.
    pub frames_delayed_ingress: u64,
    /// Extra copies created by ingress [`crate::DuplicateRule`]s.
    pub frames_duplicated_ingress: u64,
    /// Frames addressed to a crashed node.
    pub frames_to_dead_node: u64,
    /// Frames emitted on an unwired port.
    pub frames_unwired: u64,
    /// The frame log, populated only when recording is on.
    pub frames: Vec<FrameRecord>,
    record: bool,
}

impl Trace {
    /// Turns per-frame recording on or off. Off by default: a 100 MB bulk
    /// run transmits ~150k frames and recording them all is only useful
    /// for targeted assertions.
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
    }

    /// Whether per-frame recording is on.
    pub fn recording(&self) -> bool {
        self.record
    }

    pub(crate) fn record_frame(&mut self, rec: FrameRecord) {
        if self.record {
            self.frames.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_gate() {
        let mut t = Trace::default();
        let rec = FrameRecord {
            time: SimTime::ZERO,
            link: LinkId(0),
            from: NodeId(0),
            to: NodeId(1),
            len: 60,
        };
        t.record_frame(rec.clone());
        assert!(t.frames.is_empty(), "recording should default to off");
        t.set_recording(true);
        assert!(t.recording());
        t.record_frame(rec.clone());
        assert_eq!(t.frames, vec![rec]);
    }
}
