//! A learning Ethernet switch with the two tapping mechanisms of §3.1.
//!
//! "Logically, an Ethernet switch replaces the broadcast medium by a
//! crossbar. This prevents a backup node from tapping the traffic of the
//! primary node" — unless one of two mechanisms is used:
//!
//! 1. **Port mirroring** ([`Switch::add_mirror`]): "some managed Ethernet
//!    switches provide an option to forward traffic flowing from/to a
//!    port to some other port."
//! 2. **Multicast flooding**: frames addressed to a *group* (multicast)
//!    MAC are never learned and always flooded, which is why mapping the
//!    service IP to a multicast MAC (see
//!    [`wire::MacAddr::multicast_for_ip`]) lets the backup tap a switched
//!    network without management support.

use crate::node::{Context, Node, PortId};
use bytes::Bytes;
use std::collections::HashMap;
use wire::{EthernetFrame, MacAddr};

/// A learning switch.
#[derive(Debug, Clone, Default)]
pub struct Switch {
    ports: usize,
    table: HashMap<MacAddr, PortId>,
    mirrors: Vec<(PortId, PortId)>,
    /// Frames flooded because the destination was unknown or a group MAC.
    pub floods: u64,
    /// Frames forwarded to a single learned port.
    pub unicast_forwards: u64,
    /// Copies produced by mirroring.
    pub mirrored: u64,
    /// Reused per-frame delivery list — on a fleet-scale LAN the switch
    /// forwards every frame, so this path must not allocate.
    delivered: Vec<PortId>,
}

impl Switch {
    /// Creates a switch with `ports` ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports < 2`.
    pub fn new(ports: usize) -> Self {
        assert!(ports >= 2, "a switch needs at least 2 ports");
        Switch { ports, ..Self::default() }
    }

    /// Mirrors all traffic ingressing or egressing `monitored` to
    /// `mirror_to` (a SPAN/monitor port).
    pub fn add_mirror(&mut self, monitored: PortId, mirror_to: PortId) {
        self.mirrors.push((monitored, mirror_to));
    }

    /// The learned MAC table (for assertions in tests).
    pub fn table(&self) -> &HashMap<MacAddr, PortId> {
        &self.table
    }

    /// Fills `out` with the delivery ports for a frame entering at
    /// `ingress` addressed to `dst`.
    fn out_ports(&mut self, ingress: PortId, dst: MacAddr, out: &mut Vec<PortId>) {
        if dst.is_multicast() {
            // Broadcast and multicast: flood. Group MACs are never learned.
            self.floods += 1;
            out.extend((0..self.ports).map(PortId).filter(|&p| p != ingress));
            return;
        }
        match self.table.get(&dst) {
            Some(&p) if p != ingress => {
                self.unicast_forwards += 1;
                out.push(p);
            }
            Some(_) => {} // destination is on the ingress segment
            None => {
                self.floods += 1;
                out.extend((0..self.ports).map(PortId).filter(|&p| p != ingress));
            }
        }
    }
}

impl Node for Switch {
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        let Ok(eth) = EthernetFrame::parse(frame.clone()) else {
            return; // runt frame: drop silently
        };
        // Learn the source unless it is a group address (the multicast
        // SME must stay unlearned or flooding — the tap — would stop).
        if !eth.src.is_multicast() {
            self.table.insert(eth.src, port);
        }
        let mut delivered = std::mem::take(&mut self.delivered);
        delivered.clear();
        self.out_ports(port, eth.dst, &mut delivered);
        for &p in &delivered {
            ctx.send_frame(p, frame.clone());
        }
        // Mirroring: copy frames touching a monitored port to its monitor
        // port, unless the frame already reaches that port normally.
        for mi in 0..self.mirrors.len() {
            let (monitored, to) = self.mirrors[mi];
            let touches = port == monitored || delivered.contains(&monitored);
            if touches && to != port && !delivered.contains(&to) {
                ctx.send_frame(to, frame.clone());
                delivered.push(to);
                self.mirrored += 1;
            }
        }
        delivered.clear();
        self.delivered = delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;
    use crate::time::SimDuration;
    use wire::EtherType;

    struct Host {
        mac: MacAddr,
        outbox: Vec<(MacAddr, Bytes)>,
        heard: Vec<EthernetFrame>,
    }

    impl Host {
        fn new(mac: MacAddr) -> Self {
            Host { mac, outbox: vec![], heard: vec![] }
        }
    }

    impl Node for Host {
        fn on_start(&mut self, ctx: &mut Context) {
            for (dst, payload) in self.outbox.drain(..) {
                let f = EthernetFrame::new(dst, self.mac, EtherType::Other(0x1234), payload);
                ctx.send_frame(PortId(0), f.encode());
            }
        }
        fn on_frame(&mut self, _port: PortId, frame: Bytes, _ctx: &mut Context) {
            if let Ok(eth) = EthernetFrame::parse(frame) {
                self.heard.push(eth);
            }
        }
    }

    /// Builds sw with hosts a,b,c on ports 0,1,2.
    fn three_hosts() -> (Simulator, crate::node::NodeId, Vec<crate::node::NodeId>) {
        let mut sim = Simulator::new();
        let sw = sim.add_node("switch", Switch::new(3));
        let hosts: Vec<_> = (0..3u32)
            .map(|i| sim.add_node(format!("h{i}"), Host::new(MacAddr::local(i))))
            .collect();
        for (i, &h) in hosts.iter().enumerate() {
            sim.connect(h, PortId(0), sw, PortId(i), LinkSpec::ideal());
        }
        (sim, sw, hosts)
    }

    #[test]
    fn unknown_unicast_floods_then_learned_unicast_does_not() {
        let (mut sim, sw, hosts) = three_hosts();
        // a -> b with b's MAC unknown: floods to b and c.
        sim.node_mut::<Host>(hosts[0]).outbox.push((MacAddr::local(1), Bytes::from_static(b"1st")));
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(sim.node_ref::<Host>(hosts[1]).heard.len(), 1);
        assert_eq!(sim.node_ref::<Host>(hosts[2]).heard.len(), 1, "unknown dst must flood");
        // b replies to a: a's MAC was learned, goes only to a. And now the
        // switch knows b too.
        sim.node_mut::<Host>(hosts[1]).outbox.push((MacAddr::local(0), Bytes::from_static(b"2nd")));
        let b = hosts[1];
        {
            // re-trigger on_start manually through a timer-less hack:
            // just call the drain logic by sending from b on next start.
        }
        // Simpler: directly emit from b using the simulator clock: power-cycle b.
        sim.schedule_crash(b, sim.now());
        sim.schedule_power_on(b, sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_millis(5));
        assert!(sim.node_ref::<Host>(hosts[0]).heard.iter().any(|f| f.payload.as_ref() == b"2nd"));
        assert!(
            !sim.node_ref::<Host>(hosts[2]).heard.iter().any(|f| f.payload.as_ref() == b"2nd"),
            "learned unicast must not reach third port — this is why a plain switch defeats tapping"
        );
        assert_eq!(sim.node_ref::<Switch>(sw).table().len(), 2);
    }

    #[test]
    fn multicast_always_floods() {
        let (mut sim, _sw, hosts) = three_hosts();
        let sme = MacAddr::multicast_for_ip(std::net::Ipv4Addr::new(10, 0, 0, 100));
        sim.node_mut::<Host>(hosts[0]).outbox.push((sme, Bytes::from_static(b"svc")));
        sim.node_mut::<Host>(hosts[0]).outbox.push((sme, Bytes::from_static(b"svc2")));
        sim.run_for(SimDuration::from_millis(5));
        // Both frames reach both other hosts — the multicast-MAC tap works
        // even though the switch had a chance to "learn".
        assert_eq!(sim.node_ref::<Host>(hosts[1]).heard.len(), 2);
        assert_eq!(sim.node_ref::<Host>(hosts[2]).heard.len(), 2);
    }

    #[test]
    fn broadcast_floods() {
        let (mut sim, _sw, hosts) = three_hosts();
        sim.node_mut::<Host>(hosts[0])
            .outbox
            .push((MacAddr::BROADCAST, Bytes::from_static(b"arp")));
        sim.run_for(SimDuration::from_millis(5));
        assert_eq!(sim.node_ref::<Host>(hosts[1]).heard.len(), 1);
        assert_eq!(sim.node_ref::<Host>(hosts[2]).heard.len(), 1);
    }

    #[test]
    fn group_source_is_not_learned() {
        let (mut sim, sw, hosts) = three_hosts();
        let sme = MacAddr::multicast_for_ip(std::net::Ipv4Addr::new(10, 0, 0, 100));
        // A frame *from* the multicast MAC (primary sends with VNIC source).
        let f = EthernetFrame::new(MacAddr::local(1), sme, EtherType::Other(0x1), Bytes::new());
        sim.node_mut::<Host>(hosts[0]).outbox.push((MacAddr::local(1), f.encode()));
        // outbox wraps payload in another frame; instead inject directly:
        sim.node_mut::<Host>(hosts[0]).outbox.clear();
        sim.run_for(SimDuration::from_millis(1));
        // Direct unit-level check of learning behaviour:
        let now = sim.now();
        let mut ctx = crate::node::Context::new(now, sw, crate::rng::SplitMix64::new(0));
        sim.node_mut::<Switch>(sw).on_frame(PortId(0), f.encode(), &mut ctx);
        assert!(!sim.node_ref::<Switch>(sw).table().contains_key(&sme));
    }

    #[test]
    fn port_mirroring_copies_both_directions() {
        let (mut sim, sw, hosts) = three_hosts();
        // Mirror port 0 (host a, "the primary") to port 2 ("the backup").
        sim.node_mut::<Switch>(sw).add_mirror(PortId(0), PortId(2));
        // Teach the switch a and b first via a broadcast each... instead
        // seed the table directly for a focused test.
        sim.node_mut::<Switch>(sw).table.insert(MacAddr::local(0), PortId(0));
        sim.node_mut::<Switch>(sw).table.insert(MacAddr::local(1), PortId(1));
        // a -> b unicast (egress of port 0): backup must get a copy.
        sim.node_mut::<Host>(hosts[0]).outbox.push((MacAddr::local(1), Bytes::from_static(b"a2b")));
        sim.run_for(SimDuration::from_millis(2));
        assert!(sim.node_ref::<Host>(hosts[2]).heard.iter().any(|f| f.payload.as_ref() == b"a2b"));
        // b -> a unicast (ingress toward port 0): backup must get a copy.
        sim.node_mut::<Host>(hosts[1]).outbox.push((MacAddr::local(0), Bytes::from_static(b"b2a")));
        sim.schedule_crash(hosts[1], sim.now());
        sim.schedule_power_on(hosts[1], sim.now() + SimDuration::from_millis(1));
        sim.run_for(SimDuration::from_millis(5));
        assert!(sim.node_ref::<Host>(hosts[2]).heard.iter().any(|f| f.payload.as_ref() == b"b2a"));
        assert!(sim.node_ref::<Switch>(sw).mirrored >= 2);
    }

    #[test]
    #[should_panic(expected = "at least 2 ports")]
    fn tiny_switch_rejected() {
        let _ = Switch::new(0);
    }
}
