//! The in-network packet logger of paper §3.2.
//!
//! "To mask such double failures, one can insert a logger into the
//! network. This logger machine logs all packets on the Ethernet in its
//! main memory for a bounded amount of time. … the backup can recover
//! all missing packets from the logger. The logger introduces a very
//! small delay but does not reduce the bandwidth."
//!
//! The logger is an inline two-port device: frames entering port 0 leave
//! port 1 (and vice versa) after a fixed store-and-forward delay, and a
//! copy is kept in a bounded ring. A replay protocol (EtherType `0x88B6`)
//! lets the backup ask for stored TCP segments of a connection and
//! sequence range; matching frames are re-emitted out of the port the
//! query arrived on.

use crate::node::{Context, Node, PortId};
use crate::time::{SimDuration, SimTime};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use wire::{EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpSegment};

/// EtherType of logger replay queries.
pub const LOGGER_ETHERTYPE: u16 = 0x88B6;

/// A replay query: "re-send stored client-side TCP segments of this
/// connection whose payload overlaps `[seq_from, seq_to)`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayQuery {
    /// IP source of the segments wanted (the client, usually).
    pub src_ip: Ipv4Addr,
    /// IP destination (the service address).
    pub dst_ip: Ipv4Addr,
    /// TCP source port.
    pub src_port: u16,
    /// TCP destination port.
    pub dst_port: u16,
    /// First sequence number wanted.
    pub seq_from: u32,
    /// One past the last sequence number wanted.
    pub seq_to: u32,
}

impl ReplayQuery {
    /// Encodes the query into a logger command frame.
    pub fn to_frame(self, src_mac: MacAddr) -> Bytes {
        let mut p = BytesMut::with_capacity(20);
        p.put_slice(&self.src_ip.octets());
        p.put_slice(&self.dst_ip.octets());
        p.put_u16(self.src_port);
        p.put_u16(self.dst_port);
        p.put_u32(self.seq_from);
        p.put_u32(self.seq_to);
        EthernetFrame::new(
            MacAddr::BROADCAST,
            src_mac,
            EtherType::Other(LOGGER_ETHERTYPE),
            p.freeze(),
        )
        .encode()
    }

    /// Decodes a query payload.
    pub fn from_payload(mut p: Bytes) -> Option<Self> {
        if p.len() < 20 {
            return None;
        }
        let src_ip = Ipv4Addr::new(p.get_u8(), p.get_u8(), p.get_u8(), p.get_u8());
        let dst_ip = Ipv4Addr::new(p.get_u8(), p.get_u8(), p.get_u8(), p.get_u8());
        Some(ReplayQuery {
            src_ip,
            dst_ip,
            src_port: p.get_u16(),
            dst_port: p.get_u16(),
            seq_from: p.get_u32(),
            seq_to: p.get_u32(),
        })
    }

    fn matches(&self, ip: &Ipv4Packet, seg: &TcpSegment) -> bool {
        if ip.src != self.src_ip
            || ip.dst != self.dst_ip
            || seg.src_port != self.src_port
            || seg.dst_port != self.dst_port
        {
            return false;
        }
        // Overlap test in wrapping sequence space (both spans < 2^31):
        // either the segment starts inside the query window, or the query
        // window starts inside the segment. SYN/FIN occupy sequence
        // space too, so a replayed range can include a lost FIN.
        let len = seg.seq_len();
        if len == 0 {
            return false;
        }
        let width = self.seq_to.wrapping_sub(self.seq_from);
        let seg_off = seg.seq.wrapping_sub(self.seq_from);
        let query_off = self.seq_from.wrapping_sub(seg.seq);
        seg_off < width || query_off < len
    }
}

/// An inline bounded-memory packet logger.
#[derive(Debug)]
pub struct PacketLogger {
    retention: SimDuration,
    capacity_bytes: usize,
    delay: SimDuration,
    ring: VecDeque<(SimTime, Bytes)>,
    ring_bytes: usize,
    /// Frames stored (pass-throughs).
    pub frames_logged: u64,
    /// Frames evicted by time or capacity.
    pub frames_evicted: u64,
    /// Frames re-emitted in response to replay queries.
    pub frames_replayed: u64,
    /// Queries received.
    pub queries: u64,
}

impl PacketLogger {
    /// Creates a logger keeping frames for `retention` or until
    /// `capacity_bytes` of payload accumulates, forwarding with `delay`.
    ///
    /// The paper sizes logger memory as max bandwidth × max failover
    /// time; 100 Mbit/s × 25 s ≈ 312 MB, comfortably "main memory".
    pub fn new(retention: SimDuration, capacity_bytes: usize, delay: SimDuration) -> Self {
        PacketLogger {
            retention,
            capacity_bytes,
            delay,
            ring: VecDeque::new(),
            ring_bytes: 0,
            frames_logged: 0,
            frames_evicted: 0,
            frames_replayed: 0,
            queries: 0,
        }
    }

    /// A logger with paper-scale defaults: 30 s retention, 512 MB,
    /// 10 µs forwarding delay.
    pub fn with_defaults() -> Self {
        Self::new(SimDuration::from_secs(30), 512 << 20, SimDuration::from_micros(10))
    }

    /// Bytes currently held.
    pub fn stored_bytes(&self) -> usize {
        self.ring_bytes
    }

    fn evict(&mut self, now: SimTime) {
        while let Some(&(t, ref f)) = self.ring.front() {
            let expired =
                now.checked_duration_since(t).map(|d| d > self.retention).unwrap_or(false);
            if expired || self.ring_bytes > self.capacity_bytes {
                self.ring_bytes -= f.len();
                self.ring.pop_front();
                self.frames_evicted += 1;
            } else {
                break;
            }
        }
    }

    fn serve_query(&mut self, query: ReplayQuery, reply_port: PortId, ctx: &mut Context) {
        self.queries += 1;
        let mut hits = Vec::new();
        for (_, raw) in &self.ring {
            let Ok(eth) = EthernetFrame::parse(raw.clone()) else { continue };
            if eth.ethertype != EtherType::Ipv4 {
                continue;
            }
            let Ok(ip) = Ipv4Packet::parse(eth.payload.clone()) else { continue };
            if ip.protocol != IpProtocol::Tcp {
                continue;
            }
            let Ok(seg) = TcpSegment::parse(ip.payload.clone(), ip.src, ip.dst) else { continue };
            if query.matches(&ip, &seg) {
                hits.push(raw.clone());
            }
        }
        for frame in hits {
            ctx.send_frame(reply_port, frame);
            self.frames_replayed += 1;
        }
    }
}

impl Node for PacketLogger {
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        // Replay query? Intercept, do not forward.
        if let Ok(eth) = EthernetFrame::parse(frame.clone()) {
            if eth.ethertype == EtherType::Other(LOGGER_ETHERTYPE) {
                if let Some(q) = ReplayQuery::from_payload(eth.payload) {
                    self.serve_query(q, port, ctx);
                }
                return;
            }
        }
        // Log and pass through with a small delay (modelled by arming a
        // timer is unnecessary: the ctx frame queue plus our configured
        // delay folds into the egress link; we keep it simple and forward
        // immediately, attributing the delay to the stored timestamp).
        let now = ctx.now();
        self.ring_bytes += frame.len();
        self.ring.push_back((now, frame.clone()));
        self.frames_logged += 1;
        self.evict(now);
        let out = PortId(1 - port.0.min(1));
        // Forwarding delay: arm a timer would lose the frame ordering;
        // instead we rely on link latency. delay field documents intent.
        let _ = self.delay;
        ctx.send_frame(out, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;
    use wire::TcpFlags;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn tcp_frame(seq: u32, payload: &'static [u8]) -> Bytes {
        let mut seg = TcpSegment::bare(5000, 80, seq, 0, TcpFlags::ACK, 1000);
        seg.payload = Bytes::from_static(payload);
        let ip = Ipv4Packet::new(CLIENT, SERVER, IpProtocol::Tcp, seg.encode(CLIENT, SERVER));
        EthernetFrame::new(MacAddr::local(2), MacAddr::local(1), EtherType::Ipv4, ip.encode())
            .encode()
    }

    struct Collector {
        sent: Vec<Bytes>,
        heard: Vec<Bytes>,
    }
    impl Node for Collector {
        fn on_start(&mut self, ctx: &mut Context) {
            for f in self.sent.drain(..) {
                ctx.send_frame(PortId(0), f);
            }
        }
        fn on_frame(&mut self, _p: PortId, f: Bytes, _c: &mut Context) {
            self.heard.push(f);
        }
    }

    fn rig(
        frames: Vec<Bytes>,
    ) -> (Simulator, crate::node::NodeId, crate::node::NodeId, crate::node::NodeId) {
        let mut sim = Simulator::new();
        let sender = sim.add_node("sender", Collector { sent: frames, heard: vec![] });
        let logger = sim.add_node("logger", PacketLogger::with_defaults());
        let sink = sim.add_node("sink", Collector { sent: vec![], heard: vec![] });
        sim.connect(sender, PortId(0), logger, PortId(0), LinkSpec::ideal());
        sim.connect(logger, PortId(1), sink, PortId(0), LinkSpec::ideal());
        (sim, sender, logger, sink)
    }

    #[test]
    fn passes_through_and_logs() {
        let (mut sim, _s, logger, sink) =
            rig(vec![tcp_frame(100, b"hello"), tcp_frame(105, b"world")]);
        sim.run_until_idle(100);
        assert_eq!(sim.node_ref::<Collector>(sink).heard.len(), 2);
        let lg = sim.node_ref::<PacketLogger>(logger);
        assert_eq!(lg.frames_logged, 2);
        assert!(lg.stored_bytes() > 0);
    }

    #[test]
    fn replay_returns_overlapping_segments_to_query_port() {
        let (mut sim, sender, _logger, sink) = rig(vec![
            tcp_frame(100, b"aaaaa"), // [100,105)
            tcp_frame(105, b"bbbbb"), // [105,110)
            tcp_frame(110, b"ccccc"), // [110,115)
        ]);
        sim.run_until_idle(100);
        // The sink asks for [104, 111): should hit all three? aaaaa ends
        // at 105 > 104 yes; bbbbb inside; ccccc starts at 110 < 111 yes.
        let q = ReplayQuery {
            src_ip: CLIENT,
            dst_ip: SERVER,
            src_port: 5000,
            dst_port: 80,
            seq_from: 104,
            seq_to: 111,
        };
        sim.node_mut::<Collector>(sink).sent = vec![q.to_frame(MacAddr::local(9))];
        sim.schedule_crash(sink, sim.now());
        sim.schedule_power_on(sink, sim.now() + SimDuration::from_millis(1));
        let heard_before = 0; // sink state survives power cycle; count fresh
        sim.node_mut::<Collector>(sink).heard.clear();
        sim.run_until_idle(100);
        let heard = &sim.node_ref::<Collector>(sink).heard;
        assert_eq!(
            heard.len() - heard_before,
            3,
            "replay must return the three overlapping frames"
        );
        // The sender (other side) must NOT receive replays.
        assert!(sim.node_ref::<Collector>(sender).heard.is_empty());
    }

    #[test]
    fn replay_respects_exact_range() {
        let (mut sim, _sender, _logger, sink) =
            rig(vec![tcp_frame(100, b"aaaaa"), tcp_frame(105, b"bbbbb"), tcp_frame(110, b"ccccc")]);
        sim.run_until_idle(100);
        let q = ReplayQuery {
            src_ip: CLIENT,
            dst_ip: SERVER,
            src_port: 5000,
            dst_port: 80,
            seq_from: 105,
            seq_to: 110,
        };
        sim.node_mut::<Collector>(sink).sent = vec![q.to_frame(MacAddr::local(9))];
        sim.node_mut::<Collector>(sink).heard.clear();
        sim.schedule_power_on(sink, sim.now()); // no-op (alive) — just reuse start? power_on only when dead
        sim.schedule_crash(sink, sim.now());
        sim.schedule_power_on(sink, sim.now() + SimDuration::from_millis(1));
        sim.run_until_idle(100);
        assert_eq!(sim.node_ref::<Collector>(sink).heard.len(), 1);
    }

    #[test]
    fn wrong_four_tuple_does_not_match() {
        let (mut sim, _sender, _logger, sink) = rig(vec![tcp_frame(100, b"aaaaa")]);
        sim.run_until_idle(100);
        let q = ReplayQuery {
            src_ip: CLIENT,
            dst_ip: SERVER,
            src_port: 5001, // wrong port
            dst_port: 80,
            seq_from: 0,
            seq_to: 1000,
        };
        sim.node_mut::<Collector>(sink).sent = vec![q.to_frame(MacAddr::local(9))];
        sim.node_mut::<Collector>(sink).heard.clear();
        sim.schedule_crash(sink, sim.now());
        sim.schedule_power_on(sink, sim.now() + SimDuration::from_millis(1));
        sim.run_until_idle(100);
        assert!(sim.node_ref::<Collector>(sink).heard.is_empty());
    }

    #[test]
    fn capacity_eviction() {
        let mut lg = PacketLogger::new(SimDuration::from_secs(3600), 300, SimDuration::ZERO);
        let mut ctx =
            Context::new(SimTime::ZERO, crate::node::NodeId(0), crate::rng::SplitMix64::new(0));
        for i in 0..10 {
            lg.on_frame(PortId(0), tcp_frame(i * 10, b"0123456789"), &mut ctx);
        }
        assert!(
            lg.stored_bytes() <= 300 + 200,
            "capacity roughly respected: {}",
            lg.stored_bytes()
        );
        assert!(lg.frames_evicted > 0);
    }

    #[test]
    fn time_eviction() {
        let mut lg = PacketLogger::new(SimDuration::from_millis(10), usize::MAX, SimDuration::ZERO);
        let mut ctx =
            Context::new(SimTime::ZERO, crate::node::NodeId(0), crate::rng::SplitMix64::new(0));
        lg.on_frame(PortId(0), tcp_frame(0, b"old"), &mut ctx);
        let later = SimTime::ZERO + SimDuration::from_millis(100);
        let mut ctx2 = Context::new(later, crate::node::NodeId(0), crate::rng::SplitMix64::new(0));
        lg.on_frame(PortId(0), tcp_frame(10, b"new"), &mut ctx2);
        assert_eq!(lg.frames_evicted, 1);
        assert_eq!(lg.ring.len(), 1);
    }

    use crate::time::SimDuration;
    use crate::time::SimTime;
}
