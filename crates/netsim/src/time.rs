//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The simulator's clock is decoupled from wall-clock time; a 100 MB bulk
//! transfer that takes 64 simulated seconds completes in well under a
//! wall-clock second. All timing results reported by the benchmark
//! harness are in this virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self` (debug builds; saturates in
    /// release) — virtual time never runs backwards.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating checked difference; `None` if `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let u = t + SimDuration::from_millis(5);
        assert_eq!((u - t).as_millis(), 5);
        assert_eq!(u.duration_since(SimTime::ZERO).as_millis(), 15);
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
        assert_eq!(SimDuration::from_millis(6) * 3, SimDuration::from_millis(18));
    }

    #[test]
    fn checked_difference() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_nanos(4)));
        assert_eq!(a.checked_duration_since(b), None);
    }

    #[test]
    fn saturation_at_extremes() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_micros(9).to_string(), "9.000us");
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimTime::from_nanos(1_500_000_000).to_string(), "t=1.500000s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
