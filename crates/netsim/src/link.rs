//! Point-to-point links: latency, bandwidth serialization, and loss.
//!
//! A link connects two node ports. Each direction has an independent
//! transmit queue: a frame departs when the transmitter is free (FIFO,
//! modelling the NIC serializing bits at line rate) and arrives one
//! propagation delay later. This reproduces the window-limited TCP
//! throughput regime the paper's testbed operated in (see DESIGN.md §2).

use crate::time::{SimDuration, SimTime};

/// Identifies a link within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// How a link loses frames.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// Deliver everything.
    #[default]
    None,
    /// Drop each frame independently with this probability, using the
    /// simulator's deterministic RNG.
    Rate(f64),
    /// Two-state Gilbert–Elliott burst loss: each direction is either
    /// *good* (lossless) or *bad* (dropping with `loss`), transitioning
    /// per frame with the given probabilities. Models the correlated
    /// loss bursts of congested WAN paths, where consecutive frames die
    /// together — the regime where go-back-N recovery collapses and
    /// SACK pays off.
    GilbertElliott {
        /// Per-frame probability of entering the bad state.
        p_enter: f64,
        /// Per-frame probability of leaving the bad state.
        p_exit: f64,
        /// Drop probability while in the bad state.
        loss: f64,
    },
}

/// Configuration for one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Line rate in bits per second; `None` = infinitely fast
    /// (zero serialization time).
    pub bandwidth_bps: Option<u64>,
    /// Loss model applied per frame per direction.
    pub loss: LossModel,
    /// Maximum queueing delay the transmitter may accumulate before
    /// tail-dropping (the buffer depth of the NIC/switch port, expressed
    /// in time). `None` = unbounded queue — no congestion loss ever.
    /// A finite value makes TCP's loss-driven congestion control real.
    pub max_queue: Option<SimDuration>,
    /// Extra per-frame delivery jitter, uniform in `[0, jitter]`:
    /// models cross-traffic variance and produces genuine reordering.
    pub jitter: SimDuration,
    /// Line rate of the *reverse* direction (B→A) when it differs from
    /// `bandwidth_bps` — an asymmetric path (e.g. DSL-style uplink).
    /// `None` = symmetric.
    pub reverse_bandwidth_bps: Option<u64>,
}

impl LinkSpec {
    /// The calibrated LAN defaults used throughout the experiments:
    /// 100 Mbit/s, 2.5 ms one-way per hop (client–hub–server gives the
    /// ≈10 ms RTT that reproduces the paper's absolute timings), no loss.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(2_500),
            bandwidth_bps: Some(100_000_000),
            loss: LossModel::None,
            max_queue: None,
            jitter: SimDuration::ZERO,
            reverse_bandwidth_bps: None,
        }
    }

    /// An ideal link: zero latency, infinite bandwidth, no loss. Useful
    /// in unit tests that assert pure protocol behaviour.
    pub fn ideal() -> Self {
        LinkSpec {
            latency: SimDuration::ZERO,
            bandwidth_bps: None,
            loss: LossModel::None,
            max_queue: None,
            jitter: SimDuration::ZERO,
            reverse_bandwidth_bps: None,
        }
    }

    /// Sets the one-way latency (builder style).
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the line rate in bits/s (builder style).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Sets the loss model (builder style).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Bounds the transmit queue to `depth` of serialization backlog
    /// (builder style): frames arriving when the queue is deeper are
    /// tail-dropped, giving TCP real congestion signals.
    pub fn with_max_queue(mut self, depth: SimDuration) -> Self {
        self.max_queue = Some(depth);
        self
    }

    /// Adds uniform per-frame delivery jitter in `[0, jitter]`
    /// (builder style); produces genuine frame reordering.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets a different line rate for the reverse (B→A) direction
    /// (builder style): an asymmetric path.
    pub fn with_reverse_bandwidth_bps(mut self, bps: u64) -> Self {
        self.reverse_bandwidth_bps = Some(bps);
        self
    }

    /// Time to clock `bytes` onto the wire at this link's rate.
    ///
    /// Ethernet overheads (preamble, inter-frame gap, minimum frame size)
    /// are folded in: frames shorter than 64 bytes are padded, and 20
    /// bytes of preamble+IFG are added, as on real Ethernet.
    pub fn serialization_time(&self, bytes: usize) -> SimDuration {
        Self::clock_time(bytes, self.bandwidth_bps)
    }

    /// Direction-aware serialization time: `end` is the transmitting
    /// endpoint (0 = A→B, 1 = B→A). Only differs from
    /// [`LinkSpec::serialization_time`] on asymmetric links.
    pub fn serialization_time_dir(&self, bytes: usize, end: usize) -> SimDuration {
        let bps = if end == 1 {
            self.reverse_bandwidth_bps.or(self.bandwidth_bps)
        } else {
            self.bandwidth_bps
        };
        Self::clock_time(bytes, bps)
    }

    fn clock_time(bytes: usize, bandwidth_bps: Option<u64>) -> SimDuration {
        match bandwidth_bps {
            None => SimDuration::ZERO,
            Some(bps) => {
                let on_wire = bytes.max(64) + 20;
                let bits = (on_wire as u64) * 8;
                // ns = bits / (bits/s) * 1e9, computed without overflow
                // for any realistic frame size.
                SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / bps)
            }
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::lan()
    }
}

/// Named link presets covering the scenario space beyond the paper's
/// 10/100 Mbit LAN. Each maps to a [`LinkSpec`] via [`LinkProfile::spec`];
/// the name round-trips ([`LinkProfile::from_name`]) so chaos plans and
/// bench tables can serialize the choice and stay replayable.
///
/// Latencies are per hop: the standard client–switch–server topology
/// crosses two links each way, so the RTT is 4× the value here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LinkProfile {
    /// The calibrated 100 Mbit LAN of the paper's testbed.
    #[default]
    Lan,
    /// High bandwidth-delay product WAN: 80 ms RTT at 50 Mbit/s
    /// (BDP ≈ 500 KB) with a shallow 20 ms queue (≈ a quarter of the
    /// BDP), so a loss backs the window off *below* the BDP and the
    /// controller's regrowth speed — not the receive window — sets
    /// goodput.
    WanHighBdp,
    /// Bufferbloat: modest rate, very deep queue. RTT inflates under
    /// load instead of dropping, the regime BBR's model handles and
    /// loss-based controllers do not.
    Bufferbloat,
    /// Delivery jitter large enough to genuinely reorder frames,
    /// triggering spurious duplicate ACKs.
    Reordering,
    /// Asymmetric path: fast forward direction, 5 Mbit/s reverse — ACK
    /// clocking is throttled by the return path.
    Asymmetric,
    /// Correlated burst loss (Gilbert–Elliott) on a mid-rate WAN path:
    /// bursts take out whole windows, where go-back-N recovery is at
    /// its worst.
    WanBurstLoss,
}

impl LinkProfile {
    /// Every profile, in serialization order.
    pub const ALL: [LinkProfile; 6] = [
        LinkProfile::Lan,
        LinkProfile::WanHighBdp,
        LinkProfile::Bufferbloat,
        LinkProfile::Reordering,
        LinkProfile::Asymmetric,
        LinkProfile::WanBurstLoss,
    ];

    /// The profile's [`LinkSpec`].
    pub fn spec(self) -> LinkSpec {
        match self {
            LinkProfile::Lan => LinkSpec::lan(),
            LinkProfile::WanHighBdp => LinkSpec::lan()
                .with_latency(SimDuration::from_millis(20))
                .with_bandwidth_bps(50_000_000)
                .with_max_queue(SimDuration::from_millis(20)),
            LinkProfile::Bufferbloat => LinkSpec::lan()
                .with_latency(SimDuration::from_millis(5))
                .with_bandwidth_bps(20_000_000)
                .with_max_queue(SimDuration::from_millis(400)),
            LinkProfile::Reordering => LinkSpec::lan()
                .with_latency(SimDuration::from_millis(15))
                .with_bandwidth_bps(50_000_000)
                .with_jitter(SimDuration::from_millis(8)),
            LinkProfile::Asymmetric => LinkSpec::lan()
                .with_latency(SimDuration::from_millis(10))
                .with_bandwidth_bps(80_000_000)
                .with_reverse_bandwidth_bps(5_000_000),
            LinkProfile::WanBurstLoss => LinkSpec::lan()
                .with_latency(SimDuration::from_millis(25))
                .with_bandwidth_bps(30_000_000)
                .with_loss(LossModel::GilbertElliott { p_enter: 0.003, p_exit: 0.2, loss: 0.6 }),
        }
    }

    /// Stable serialization name.
    pub const fn name(self) -> &'static str {
        match self {
            LinkProfile::Lan => "lan",
            LinkProfile::WanHighBdp => "wan_high_bdp",
            LinkProfile::Bufferbloat => "bufferbloat",
            LinkProfile::Reordering => "reordering",
            LinkProfile::Asymmetric => "asymmetric",
            LinkProfile::WanBurstLoss => "wan_burst_loss",
        }
    }

    /// Parses a [`LinkProfile::name`] back.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Per-direction transmitter state and statistics.
#[derive(Debug, Clone, Default)]
pub struct Direction {
    /// The instant the transmitter becomes free.
    pub busy_until: SimTime,
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Bytes accepted for transmission (payload sizes as given).
    pub bytes: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
    /// Frames tail-dropped by the bounded transmit queue.
    pub queue_drops: u64,
}

/// Statistics for one link, both directions.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Direction A→B (A is the first endpoint passed to `connect`).
    pub a_to_b: Direction,
    /// Direction B→A.
    pub b_to_a: Direction,
}

impl LinkStats {
    /// Total frames delivered in both directions.
    pub fn total_frames(&self) -> u64 {
        self.a_to_b.frames + self.b_to_a.frames
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.a_to_b.bytes + self.b_to_a.bytes
    }

    /// Total drops in both directions.
    pub fn total_dropped(&self) -> u64 {
        self.a_to_b.dropped + self.b_to_a.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_at_100mbit() {
        let spec = LinkSpec::lan();
        // 1500-byte frame + 20B overhead = 1520B = 12160 bits @ 100Mb/s = 121.6us
        assert_eq!(spec.serialization_time(1500), SimDuration::from_nanos(121_600));
    }

    #[test]
    fn minimum_frame_size_enforced() {
        let spec = LinkSpec::lan();
        // Anything under 64B costs the same as 64B (+20B overhead).
        assert_eq!(spec.serialization_time(1), spec.serialization_time(64));
        assert_eq!(spec.serialization_time(64), SimDuration::from_nanos(6_720));
    }

    #[test]
    fn ideal_link_serializes_instantly() {
        assert_eq!(LinkSpec::ideal().serialization_time(100_000), SimDuration::ZERO);
    }

    #[test]
    fn builder_chain() {
        let spec = LinkSpec::ideal()
            .with_latency(SimDuration::from_millis(1))
            .with_bandwidth_bps(10_000_000)
            .with_loss(LossModel::Rate(0.25));
        assert_eq!(spec.latency, SimDuration::from_millis(1));
        assert_eq!(spec.bandwidth_bps, Some(10_000_000));
        assert_eq!(spec.loss, LossModel::Rate(0.25));
    }

    #[test]
    fn asymmetric_serialization_per_direction() {
        let spec = LinkSpec::lan().with_reverse_bandwidth_bps(10_000_000);
        // Forward keeps the LAN rate; reverse is 10x slower.
        assert_eq!(spec.serialization_time_dir(1500, 0), spec.serialization_time(1500));
        assert_eq!(
            spec.serialization_time_dir(1500, 1).as_nanos(),
            spec.serialization_time(1500).as_nanos() * 10
        );
        // Symmetric links ignore the direction.
        let sym = LinkSpec::lan();
        assert_eq!(sym.serialization_time_dir(1500, 1), sym.serialization_time(1500));
    }

    #[test]
    fn profile_names_roundtrip() {
        for p in LinkProfile::ALL {
            assert_eq!(LinkProfile::from_name(p.name()), Some(p));
        }
        assert_eq!(LinkProfile::from_name("dialup"), None);
        assert_eq!(LinkProfile::default(), LinkProfile::Lan);
        assert_eq!(LinkProfile::Lan.spec(), LinkSpec::lan());
    }

    #[test]
    fn profiles_are_distinct() {
        let specs: Vec<LinkSpec> = LinkProfile::ALL.iter().map(|p| p.spec()).collect();
        for i in 0..specs.len() {
            for j in i + 1..specs.len() {
                assert_ne!(specs[i], specs[j], "{i} vs {j}");
            }
        }
        assert!(matches!(LinkProfile::WanBurstLoss.spec().loss, LossModel::GilbertElliott { .. }));
    }

    #[test]
    fn stats_aggregate() {
        let mut s = LinkStats::default();
        s.a_to_b.frames = 3;
        s.a_to_b.bytes = 300;
        s.b_to_a.frames = 2;
        s.b_to_a.bytes = 150;
        s.b_to_a.dropped = 1;
        assert_eq!(s.total_frames(), 5);
        assert_eq!(s.total_bytes(), 450);
        assert_eq!(s.total_dropped(), 1);
    }
}
