//! A half-duplex, shared-medium Ethernet hub.
//!
//! The paper's testbed used a 10/100 Mbit *hub*: one collision domain,
//! every frame occupies the whole medium, and §6 notes "using an
//! Ethernet switch will lead to a higher throughput". [`crate::Hub`]
//! repeats frames without modelling that contention (each port link
//! serializes independently — effectively a switched-like fabric that
//! happens to flood); this node models the shared medium: frames are
//! repeated strictly one at a time at the medium's line rate, so data
//! and ACKs of the same connection — and the ST-TCP side channel —
//! compete for air time. Collisions are approximated by FIFO queueing
//! (CSMA/CD resolves contention; persistent stations eventually
//! transmit, and with our small station counts capture effects are
//! negligible).

use crate::link::LinkSpec;
use crate::node::{Context, Node, PortId};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use std::collections::VecDeque;

const TOK_DRAIN: u64 = 0x5AED;

/// A shared-medium hub: one frame on the wire at a time.
#[derive(Debug)]
pub struct SharedHub {
    ports: usize,
    medium_bps: u64,
    queue: VecDeque<(PortId, Bytes)>,
    in_flight: Option<(PortId, Bytes)>,
    busy_until: SimTime,
    /// Frames repeated.
    pub frames_repeated: u64,
    /// Peak queue depth observed (contention indicator).
    pub peak_queue: usize,
}

impl SharedHub {
    /// A hub with `ports` ports sharing a `medium_bps` medium.
    ///
    /// # Panics
    ///
    /// Panics if `ports < 2` or `medium_bps == 0`.
    pub fn new(ports: usize, medium_bps: u64) -> Self {
        assert!(ports >= 2, "a hub needs at least 2 ports");
        assert!(medium_bps > 0, "medium must have bandwidth");
        SharedHub {
            ports,
            medium_bps,
            queue: VecDeque::new(),
            in_flight: None,
            busy_until: SimTime::ZERO,
            frames_repeated: 0,
            peak_queue: 0,
        }
    }

    /// The classic 10 Mbit shared Ethernet.
    pub fn ten_mbit(ports: usize) -> Self {
        Self::new(ports, 10_000_000)
    }

    fn air_time(&self, len: usize) -> SimDuration {
        // Reuse the link model's framing overhead accounting.
        LinkSpec::ideal().with_bandwidth_bps(self.medium_bps).serialization_time(len)
    }

    /// Starts transmitting the next queued frame if the medium is idle.
    fn start_next(&mut self, ctx: &mut Context) {
        if self.in_flight.is_some() {
            return; // medium busy; completion timer already armed
        }
        let Some((ingress, frame)) = self.queue.pop_front() else {
            return;
        };
        // The frame occupies the medium for its air time; receivers
        // complete reception (and we repeat it to every other port) at
        // the end of that interval.
        let air = self.air_time(frame.len());
        self.busy_until = ctx.now() + air;
        self.in_flight = Some((ingress, frame));
        ctx.set_timer_at(self.busy_until, TOK_DRAIN);
    }
}

impl Node for SharedHub {
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut Context) {
        self.queue.push_back((port, frame));
        self.peak_queue = self.peak_queue.max(self.queue.len());
        self.start_next(ctx);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context) {
        if token != TOK_DRAIN || ctx.now() < self.busy_until {
            return;
        }
        if let Some((ingress, frame)) = self.in_flight.take() {
            for p in 0..self.ports {
                if p != ingress.0 {
                    ctx.send_frame(PortId(p), frame.clone());
                }
            }
            self.frames_repeated += 1;
        }
        self.start_next(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use crate::sim::Simulator;

    struct Talker {
        burst: usize,
        len: usize,
        heard: Vec<SimTime>,
    }

    impl Node for Talker {
        fn on_start(&mut self, ctx: &mut Context) {
            for _ in 0..self.burst {
                ctx.send_frame(PortId(0), Bytes::from(vec![0u8; self.len]));
            }
        }
        fn on_frame(&mut self, _p: PortId, _f: Bytes, ctx: &mut Context) {
            self.heard.push(ctx.now());
        }
    }

    #[test]
    fn medium_serializes_one_frame_at_a_time() {
        let mut sim = Simulator::new();
        // 1230B + 20B overhead = 10_000 bits; at 1 Mbit/s = 10 ms each.
        let hub = sim.add_node("shub", SharedHub::new(3, 1_000_000));
        let a = sim.add_node("a", Talker { burst: 3, len: 1230, heard: vec![] });
        let b = sim.add_node("b", Talker { burst: 0, len: 0, heard: vec![] });
        let c = sim.add_node("c", Talker { burst: 0, len: 0, heard: vec![] });
        sim.connect(a, PortId(0), hub, PortId(0), LinkSpec::ideal());
        sim.connect(b, PortId(0), hub, PortId(1), LinkSpec::ideal());
        sim.connect(c, PortId(0), hub, PortId(2), LinkSpec::ideal());
        sim.run_for(SimDuration::from_secs(1));
        let heard = &sim.node_ref::<Talker>(b).heard;
        assert_eq!(heard.len(), 3);
        // Reception completes one air time after transmission starts,
        // then arrivals pace at the 10 ms air time.
        assert_eq!(heard[0], SimTime::ZERO + SimDuration::from_millis(10));
        assert_eq!(heard[1].duration_since(heard[0]), SimDuration::from_millis(10));
        assert_eq!(heard[2].duration_since(heard[1]), SimDuration::from_millis(10));
        // Both listeners hear every frame at the same instant.
        assert_eq!(heard, &sim.node_ref::<Talker>(c).heard);
        assert_eq!(sim.node_ref::<SharedHub>(hub).frames_repeated, 3);
        assert!(sim.node_ref::<SharedHub>(hub).peak_queue >= 2);
    }

    #[test]
    fn contention_between_stations_shares_the_medium() {
        let mut sim = Simulator::new();
        let hub = sim.add_node("shub", SharedHub::new(3, 1_000_000));
        let a = sim.add_node("a", Talker { burst: 2, len: 1230, heard: vec![] });
        let b = sim.add_node("b", Talker { burst: 2, len: 1230, heard: vec![] });
        let c = sim.add_node("c", Talker { burst: 0, len: 0, heard: vec![] });
        sim.connect(a, PortId(0), hub, PortId(0), LinkSpec::ideal());
        sim.connect(b, PortId(0), hub, PortId(1), LinkSpec::ideal());
        sim.connect(c, PortId(0), hub, PortId(2), LinkSpec::ideal());
        sim.run_for(SimDuration::from_secs(1));
        // Four frames total over a shared medium: the last arrives at
        // 40 ms, not 20 ms (as two independent links would allow).
        let heard = &sim.node_ref::<Talker>(c).heard;
        assert_eq!(heard.len(), 4);
        assert_eq!(heard[3], SimTime::ZERO + SimDuration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "at least 2 ports")]
    fn tiny_hub_rejected() {
        let _ = SharedHub::new(1, 1);
    }
}
