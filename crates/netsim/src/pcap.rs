//! Classic libpcap capture files from simulation traffic.
//!
//! [`PcapRecorder`] plugs into [`crate::Simulator::set_probe`] (or is
//! fed manually) and serializes frames in the venerable pcap format
//! (magic `0xa1b2c3d4`, microsecond timestamps, LINKTYPE_ETHERNET), so
//! any simulated exchange — including an ST-TCP failover — opens
//! directly in Wireshark/tcpdump.
//!
//! # Example
//!
//! ```
//! use netsim::pcap::PcapRecorder;
//! use netsim::SimTime;
//! use bytes::Bytes;
//!
//! let mut rec = PcapRecorder::new();
//! rec.record(SimTime::from_nanos(1_500), &Bytes::from_static(&[0u8; 60]));
//! let file = rec.to_bytes();
//! assert_eq!(&file[..4], &0xa1b2c3d4u32.to_le_bytes());
//! ```

use crate::time::SimTime;
use bytes::Bytes;
use std::cell::RefCell;
use std::io;
use std::path::Path;
use std::rc::Rc;

const MAGIC: u32 = 0xa1b2_c3d4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
const LINKTYPE_ETHERNET: u32 = 1;
const SNAPLEN: u32 = 65535;

/// One captured frame.
#[derive(Debug, Clone)]
struct Record {
    at: SimTime,
    frame: Bytes,
}

/// Accumulates frames and renders a pcap file.
#[derive(Debug, Default)]
pub struct PcapRecorder {
    records: Vec<Record>,
    /// Stop recording once this many frames are held (0 = unlimited).
    pub limit: usize,
}

impl PcapRecorder {
    /// An unlimited recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that keeps at most `limit` frames (earliest wins).
    pub fn with_limit(limit: usize) -> Self {
        PcapRecorder { records: Vec::new(), limit }
    }

    /// Records one frame observed at `at`.
    pub fn record(&mut self, at: SimTime, frame: &Bytes) {
        if self.limit > 0 && self.records.len() >= self.limit {
            return;
        }
        self.records.push(Record { at, frame: frame.clone() });
    }

    /// Number of frames held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the pcap file into memory.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(24 + self.records.iter().map(|r| 16 + r.frame.len()).sum::<usize>());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        out.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        out.extend_from_slice(&SNAPLEN.to_le_bytes());
        out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        for rec in &self.records {
            let ns = rec.at.as_nanos();
            let secs = (ns / 1_000_000_000) as u32;
            let usecs = ((ns % 1_000_000_000) / 1_000) as u32;
            let caplen = rec.frame.len().min(SNAPLEN as usize) as u32;
            out.extend_from_slice(&secs.to_le_bytes());
            out.extend_from_slice(&usecs.to_le_bytes());
            out.extend_from_slice(&caplen.to_le_bytes());
            out.extend_from_slice(&(rec.frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&rec.frame[..caplen as usize]);
        }
        out
    }

    /// Writes the pcap file to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }
}

/// A shareable recorder handle suitable for
/// [`crate::Simulator::set_probe`], which needs a `'static` closure.
///
/// ```no_run
/// use netsim::pcap::SharedPcap;
/// use netsim::Simulator;
///
/// let mut sim = Simulator::new();
/// let pcap = SharedPcap::new();
/// let probe = pcap.clone();
/// sim.set_probe(move |ev| probe.record(ev.time, ev.frame));
/// // ... run the simulation ...
/// pcap.save("run.pcap").unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedPcap(Rc<RefCell<PcapRecorder>>);

impl SharedPcap {
    /// Creates an unlimited shared recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one frame.
    pub fn record(&self, at: SimTime, frame: &Bytes) {
        self.0.borrow_mut().record(at, frame);
    }

    /// Frames held so far.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Renders the file into memory.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.borrow().to_bytes()
    }

    /// Writes the pcap file to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.0.borrow().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_header_is_valid_pcap() {
        let rec = PcapRecorder::new();
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), MAGIC);
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(bytes[6..8].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE_ETHERNET);
    }

    #[test]
    fn records_roundtrip_structurally() {
        let mut rec = PcapRecorder::new();
        rec.record(SimTime::from_nanos(1_234_567_890), &Bytes::from_static(&[0xAA; 80]));
        rec.record(SimTime::from_nanos(2_000_000_000), &Bytes::from_static(&[0xBB; 60]));
        let b = rec.to_bytes();
        // First record at offset 24.
        let secs = u32::from_le_bytes(b[24..28].try_into().unwrap());
        let usecs = u32::from_le_bytes(b[28..32].try_into().unwrap());
        let caplen = u32::from_le_bytes(b[32..36].try_into().unwrap());
        assert_eq!(secs, 1);
        assert_eq!(usecs, 234_567);
        assert_eq!(caplen, 80);
        assert_eq!(&b[40..44], &[0xAA; 4]);
        // Second record follows immediately.
        let second = 40 + 80;
        let secs2 = u32::from_le_bytes(b[second..second + 4].try_into().unwrap());
        assert_eq!(secs2, 2);
        assert_eq!(b.len(), 24 + 16 + 80 + 16 + 60);
    }

    #[test]
    fn limit_caps_recording() {
        let mut rec = PcapRecorder::with_limit(2);
        for _ in 0..5 {
            rec.record(SimTime::ZERO, &Bytes::from_static(&[0; 60]));
        }
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn shared_recorder_via_probe() {
        use crate::link::LinkSpec;
        use crate::node::{Context, Node, PortId};
        use crate::sim::Simulator;

        struct Shout;
        impl Node for Shout {
            fn on_start(&mut self, ctx: &mut Context) {
                ctx.send_frame(PortId(0), Bytes::from_static(&[0x42; 64]));
            }
            fn on_frame(&mut self, _p: PortId, _f: Bytes, _c: &mut Context) {}
        }
        let mut sim = Simulator::new();
        let a = sim.add_node("a", Shout);
        let b = sim.add_node("b", Shout);
        sim.connect(a, PortId(0), b, PortId(0), LinkSpec::lan());
        let pcap = SharedPcap::new();
        let probe = pcap.clone();
        sim.set_probe(move |ev| probe.record(ev.time, ev.frame));
        sim.run_until_idle(100);
        assert_eq!(pcap.len(), 2, "both nodes' frames captured");
        assert!(pcap.to_bytes().len() > 24);
    }
}
