//! Flight recorder: structured protocol event tracing.
//!
//! Counters and marks (the rest of this crate) answer *how often* and
//! *when first*; a post-mortem needs *the story* — the ordered sequence
//! of semantic protocol events that led to a takeover or a violated
//! invariant. This module provides that layer:
//!
//! * [`TraceEvent`] — one semantic event: a TCB state transition, a
//!   shadow-ISN resync, suppression toggling, a side-channel message,
//!   suspicion/fencing/promotion, a fault-rule activation, a wire
//!   summary with connection and sequence-range attribution.
//! * [`FlightRecorder`] — a bounded ring buffer of [`TracedEvent`]s
//!   (drop-oldest, with a dropped-events counter), fed through the
//!   [`Recorder::trace`] hook. The no-op default recorder keeps the
//!   un-traced cost at one virtual call per event.
//! * [`TraceExport`] — an immutable copy of the ring with a pinned
//!   single-line JSON format (`sttcp-trace-v1`) that round-trips via
//!   [`TraceExport::from_json`].
//! * [`render_timeline`] / [`render_sequence`] / [`render_chrome`] —
//!   the three post-mortem views the `sttcp-trace` CLI exposes.
//!
//! Events carry virtual-time nanosecond timestamps and a global
//! monotone sequence number assigned at record time. The simulator is
//! single-threaded, so the sequence order is the causal order — in
//! particular, per-connection event order is exact.

use crate::{Recorder, SharedRecorder};
use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

/// Format tag embedded in every exported trace.
pub const TRACE_FORMAT: &str = "sttcp-trace-v1";

/// Default [`FlightRecorder`] capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Which simulated node recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Actor {
    /// The client node.
    Client,
    /// The primary server.
    Primary,
    /// The backup server.
    Backup,
    /// The network fabric (simulator-level events: faults, power).
    Net,
    /// Anything else (tests, standalone stacks).
    Other,
}

impl Actor {
    /// Every actor, in lane order for rendering.
    pub const ALL: &'static [Actor] =
        &[Actor::Client, Actor::Net, Actor::Primary, Actor::Backup, Actor::Other];

    /// The stable snake_case name used in trace exports.
    pub const fn name(self) -> &'static str {
        match self {
            Actor::Client => "client",
            Actor::Primary => "primary",
            Actor::Backup => "backup",
            Actor::Net => "net",
            Actor::Other => "other",
        }
    }

    fn from_name(s: &str) -> Option<Actor> {
        Actor::ALL.iter().copied().find(|a| a.name() == s)
    }
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A connection identified by its unordered endpoint pair.
///
/// TCBs on different nodes see the same connection with `local` and
/// `remote` swapped; canonicalizing to a sorted pair lets events from
/// the client, the primary, and the backup's shadow all attribute to
/// the same connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceConn {
    /// The lower endpoint (by `(ip, port)` order).
    pub lo_ip: Ipv4Addr,
    /// The lower endpoint's port.
    pub lo_port: u16,
    /// The higher endpoint.
    pub hi_ip: Ipv4Addr,
    /// The higher endpoint's port.
    pub hi_port: u16,
}

impl TraceConn {
    /// Canonicalizes an endpoint pair (order of arguments is irrelevant).
    pub fn new(a: (Ipv4Addr, u16), b: (Ipv4Addr, u16)) -> Self {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        TraceConn { lo_ip: lo.0, lo_port: lo.1, hi_ip: hi.0, hi_port: hi.1 }
    }

    /// Parses the [`fmt::Display`] form (`"a:p<->b:q"`); endpoint order
    /// is irrelevant, as in [`TraceConn::new`].
    pub fn parse(s: &str) -> Option<TraceConn> {
        let (a, b) = s.split_once("<->")?;
        let ep = |e: &str| -> Option<(Ipv4Addr, u16)> {
            let (ip, port) = e.rsplit_once(':')?;
            Some((ip.parse().ok()?, port.parse().ok()?))
        };
        Some(TraceConn::new(ep(a)?, ep(b)?))
    }
}

impl fmt::Display for TraceConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}<->{}:{}", self.lo_ip, self.lo_port, self.hi_ip, self.hi_port)
    }
}

macro_rules! named_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $str:literal,)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// The stable snake_case name used in trace exports.
            pub const fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $str,)+
                }
            }

            fn from_name(s: &str) -> Option<$name> {
                match s {
                    $($str => Some($name::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

named_enum! {
    /// The kind of a side-channel message (§4.3 sync protocol).
    SideMsgKind {
        /// Primary liveness heartbeat.
        Heartbeat => "heartbeat",
        /// Backup cumulative acknowledgment (`LastByteAcked`).
        BackupAck => "backup_ack",
        /// Backup request for a missed segment range.
        MissingReq => "missing_req",
        /// Primary reply carrying retained bytes.
        MissingData => "missing_data",
        /// Primary refusal of a missing-segment request.
        MissingNack => "missing_nack",
        /// Cluster heartbeat carrying the rank-ordered topology.
        ClusterHb => "cluster_hb",
        /// Batched per-connection cumulative acks from one backup.
        AckBatch => "ack_batch",
        /// Planned-migration drain announcement.
        Drain => "drain",
        /// Successor's readiness acknowledgment of a drain.
        DrainReady => "drain_ready",
        /// VIP ownership transfer concluding a planned migration.
        Handover => "handover",
        /// Primary→backup congestion-state mirror (cwnd/ssthresh).
        CongSync => "cong_sync",
    }
}

named_enum! {
    /// A phase transition of a planned migration (drain → handover).
    MigrationPhase {
        /// The primary announced a drain to its designated successor.
        DrainStarted => "drain_started",
        /// The successor reported shadow-consistency (safe to fence).
        SuccessorReady => "successor_ready",
        /// The primary fenced itself and the successor owns the VIP.
        HandedOver => "handed_over",
    }
}

named_enum! {
    /// The kind of an injected ingress fault rule that fired.
    FaultKind {
        /// Frame dropped (tap omission).
        Drop => "drop",
        /// Frame delivery deferred (reordering).
        Delay => "delay",
        /// Frame delivered twice.
        Duplicate => "duplicate",
    }
}

named_enum! {
    /// A node power/performance transition scheduled by the simulator.
    PowerKind {
        /// Fail-stop power-off (§4.4 crash).
        Crash => "crash",
        /// Power restored (node reboots via `on_start`).
        PowerOn => "power_on",
        /// Performance failure: alive but making no progress.
        Pause => "pause",
    }
}

/// One semantic protocol event. See the module docs for the taxonomy.
///
/// Variants use `Copy` fields and `Cow<'static, str>` names so that
/// constructing an event at a hook site allocates nothing; owned
/// strings appear only when a trace is parsed back from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A TCB moved between TCP states.
    TcpState {
        /// The connection.
        conn: TraceConn,
        /// State before the transition.
        from: Cow<'static, str>,
        /// State after the transition.
        to: Cow<'static, str>,
    },
    /// A shadow TCB adopted the primary's ISN (§4.1).
    ShadowResync {
        /// The connection.
        conn: TraceConn,
        /// The adopted initial sequence number.
        iss: u32,
    },
    /// Egress suppression for an IP was enabled or lifted (§4.2 / §5).
    Suppression {
        /// The suppressed (or released) IP.
        ip: Ipv4Addr,
        /// `true` when suppression was enabled.
        on: bool,
    },
    /// A retransmission timeout fired.
    RtoFired {
        /// The connection.
        conn: TraceConn,
        /// Consecutive backoffs applied after this timeout.
        backoff: u32,
        /// The new timeout value, in nanoseconds.
        rto_ns: u64,
    },
    /// A side-channel message was sent.
    SideSend {
        /// Message kind.
        msg: SideMsgKind,
        /// The connection, for per-connection messages.
        conn: Option<TraceConn>,
        /// Kind-specific sequence number (TCP seq, or heartbeat seq).
        seq: u64,
        /// Payload length for data-carrying kinds.
        len: u32,
    },
    /// A side-channel message was received.
    SideRecv {
        /// Message kind.
        msg: SideMsgKind,
        /// The connection, for per-connection messages.
        conn: Option<TraceConn>,
        /// Kind-specific sequence number (TCP seq, or heartbeat seq).
        seq: u64,
        /// Payload length for data-carrying kinds.
        len: u32,
    },
    /// The backup suspected the primary dead (§4.4 detection).
    Suspected {
        /// How long the primary had been silent, in nanoseconds.
        silent_ns: u64,
    },
    /// The backup requested power fencing of the primary (§4.4).
    Fence {
        /// The power-switch outlet addressed.
        outlet: u32,
    },
    /// The backup promoted itself (lifted VIP suppression, §5).
    Promoted,
    /// First post-takeover data byte left for the client.
    FirstByte {
        /// The connection carrying the byte.
        conn: TraceConn,
    },
    /// The primary declared the backup dead (non-fault-tolerant mode).
    BackupDead {
        /// How long the backup had been silent, in nanoseconds.
        silent_ns: u64,
    },
    /// An injected ingress fault rule fired.
    FaultRule {
        /// What the rule did to the frame.
        kind: FaultKind,
    },
    /// A node's power/progress state changed.
    NodePower {
        /// The simulator's display name for the node.
        node: Cow<'static, str>,
        /// The transition.
        what: PowerKind,
    },
    /// A planned migration advanced one phase (cluster subsystem).
    PlannedMigration {
        /// The phase reached.
        phase: MigrationPhase,
        /// Topology epoch the migration establishes.
        epoch: u32,
    },
    /// A congestion controller changed phase (e.g. slow start →
    /// avoidance, startup → probe-bw).
    CongPhase {
        /// The connection.
        conn: TraceConn,
        /// The controller algorithm ("reno", "cubic", "bbr").
        algo: Cow<'static, str>,
        /// Phase before the transition.
        from: Cow<'static, str>,
        /// Phase after the transition.
        to: Cow<'static, str>,
        /// Congestion window (bytes) after the transition.
        cwnd: u32,
    },
    /// Wire summary: one TCP segment emitted by a stack.
    WireData {
        /// The connection.
        conn: TraceConn,
        /// First sequence number of the segment.
        seq: u32,
        /// Payload length (0 for pure control segments).
        len: u32,
        /// Raw TCP flag bits (FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10).
        flags: u8,
    },
}

impl TraceEvent {
    /// The stable snake_case kind tag used in trace exports.
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TcpState { .. } => "tcp_state",
            TraceEvent::ShadowResync { .. } => "shadow_resync",
            TraceEvent::Suppression { .. } => "suppression",
            TraceEvent::RtoFired { .. } => "rto_fired",
            TraceEvent::SideSend { .. } => "side_send",
            TraceEvent::SideRecv { .. } => "side_recv",
            TraceEvent::Suspected { .. } => "suspected",
            TraceEvent::Fence { .. } => "fence",
            TraceEvent::Promoted => "promoted",
            TraceEvent::FirstByte { .. } => "first_byte",
            TraceEvent::BackupDead { .. } => "backup_dead",
            TraceEvent::FaultRule { .. } => "fault_rule",
            TraceEvent::NodePower { .. } => "node_power",
            TraceEvent::PlannedMigration { .. } => "planned_migration",
            TraceEvent::CongPhase { .. } => "cong_phase",
            TraceEvent::WireData { .. } => "wire_data",
        }
    }

    /// The connection the event is attributed to, if any.
    pub fn conn(&self) -> Option<TraceConn> {
        match self {
            TraceEvent::TcpState { conn, .. }
            | TraceEvent::ShadowResync { conn, .. }
            | TraceEvent::RtoFired { conn, .. }
            | TraceEvent::FirstByte { conn }
            | TraceEvent::CongPhase { conn, .. }
            | TraceEvent::WireData { conn, .. } => Some(*conn),
            TraceEvent::SideSend { conn, .. } | TraceEvent::SideRecv { conn, .. } => *conn,
            _ => None,
        }
    }

    /// One-line human-readable description (no timestamp, no actor).
    pub fn describe(&self) -> String {
        match self {
            TraceEvent::TcpState { conn, from, to } => {
                format!("tcp {from} -> {to}  [{conn}]")
            }
            TraceEvent::ShadowResync { conn, iss } => {
                format!("shadow resync iss={iss}  [{conn}]")
            }
            TraceEvent::Suppression { ip, on } => {
                format!("suppression {} for {ip}", if *on { "ON" } else { "OFF" })
            }
            TraceEvent::RtoFired { conn, backoff, rto_ns } => {
                format!("rto fired backoff={backoff} next={:.0}ms  [{conn}]", ns_ms(*rto_ns))
            }
            TraceEvent::SideSend { msg, conn, seq, len } => {
                format!("side send {}{}", msg.name(), side_detail(*conn, *seq, *len))
            }
            TraceEvent::SideRecv { msg, conn, seq, len } => {
                format!("side recv {}{}", msg.name(), side_detail(*conn, *seq, *len))
            }
            TraceEvent::Suspected { silent_ns } => {
                format!("SUSPECTED primary dead after {:.3}ms of silence", ns_ms(*silent_ns))
            }
            TraceEvent::Fence { outlet } => format!("FENCE requested (outlet {outlet})"),
            TraceEvent::Promoted => "PROMOTED: VIP suppression lifted".to_string(),
            TraceEvent::FirstByte { conn } => {
                format!("FIRST BYTE after takeover  [{conn}]")
            }
            TraceEvent::BackupDead { silent_ns } => {
                format!("backup dead after {:.3}ms of silence (retention off)", ns_ms(*silent_ns))
            }
            TraceEvent::FaultRule { kind } => format!("fault rule fired: {}", kind.name()),
            TraceEvent::NodePower { node, what } => format!("power: {} {}", what.name(), node),
            TraceEvent::PlannedMigration { phase, epoch } => {
                format!("MIGRATION {} (epoch {epoch})", phase.name())
            }
            TraceEvent::CongPhase { conn, algo, from, to, cwnd } => {
                format!("cc {algo} {from} -> {to} cwnd={cwnd}  [{conn}]")
            }
            TraceEvent::WireData { conn, seq, len, flags } => {
                format!("wire {} seq={seq} len={len}  [{conn}]", flag_str(*flags))
            }
        }
    }
}

fn ns_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn side_detail(conn: Option<TraceConn>, seq: u64, len: u32) -> String {
    let mut s = format!(" seq={seq}");
    if len > 0 {
        s.push_str(&format!(" len={len}"));
    }
    if let Some(c) = conn {
        s.push_str(&format!("  [{c}]"));
    }
    s
}

/// Renders raw TCP flag bits as the classic letter string (`S`, `SA`,
/// `PA`, `F`, `R`…), or `.` for a bare segment.
pub fn flag_str(flags: u8) -> String {
    let mut s = String::new();
    for (bit, ch) in [(0x02u8, 'S'), (0x01, 'F'), (0x04, 'R'), (0x08, 'P'), (0x10, 'A')] {
        if flags & bit != 0 {
            s.push(ch);
        }
    }
    if s.is_empty() {
        s.push('.');
    }
    s
}

/// One recorded event: global sequence number, virtual-time timestamp,
/// recording actor, and the event itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedEvent {
    /// Global monotone sequence number (assigned at record time; the
    /// total order of a single-threaded simulation).
    pub seq: u64,
    /// Virtual-time nanoseconds.
    pub t_ns: u64,
    /// Which node recorded the event.
    pub actor: Actor,
    /// The event.
    pub event: TraceEvent,
}

struct Ring {
    events: VecDeque<TracedEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// Bounded in-memory ring of trace events (drop-oldest).
///
/// Shared as an `Arc` across every node of a scenario via
/// [`for_actor`]; interior mutability is a `Mutex` (uncontended in the
/// single-threaded simulator, and correct if a future embedding records
/// from several threads).
pub struct FlightRecorder {
    inner: Mutex<Ring>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ring = self.inner.lock().expect("flight recorder poisoned");
        f.debug_struct("FlightRecorder")
            .field("len", &ring.events.len())
            .field("capacity", &ring.capacity)
            .field("dropped", &ring.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn record(&self, actor: Actor, t_ns: u64, event: &TraceEvent) {
        let mut ring = self.inner.lock().expect("flight recorder poisoned");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.events.push_back(TracedEvent { seq, t_ns, actor, event: event.clone() });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight recorder poisoned").events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far by the drop-oldest policy.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight recorder poisoned").dropped
    }

    /// An immutable copy of everything currently held.
    pub fn export(&self) -> TraceExport {
        let ring = self.inner.lock().expect("flight recorder poisoned");
        TraceExport { dropped: ring.dropped, events: ring.events.iter().cloned().collect() }
    }

    /// The newest `n` events (older retained events count as dropped in
    /// the export, so `dropped + events.len()` stays the total recorded).
    pub fn tail(&self, n: usize) -> TraceExport {
        let ring = self.inner.lock().expect("flight recorder poisoned");
        let skip = ring.events.len().saturating_sub(n);
        TraceExport {
            dropped: ring.dropped + skip as u64,
            events: ring.events.iter().skip(skip).cloned().collect(),
        }
    }
}

/// A [`Recorder`] that forwards metrics to an inner recorder and trace
/// events — tagged with a fixed [`Actor`] — to a shared
/// [`FlightRecorder`]. Built by [`for_actor`].
#[derive(Debug)]
pub struct ActorRecorder {
    actor: Actor,
    metrics: SharedRecorder,
    flight: Arc<FlightRecorder>,
}

impl Recorder for ActorRecorder {
    fn count(&self, c: crate::Counter, n: u64) {
        self.metrics.count(c, n);
    }

    fn gauge_max(&self, g: crate::Gauge, v: u64) {
        self.metrics.gauge_max(g, v);
    }

    fn mark_first(&self, m: crate::Mark, t_ns: u64) {
        self.metrics.mark_first(m, t_ns);
    }

    fn mark_latest(&self, m: crate::Mark, t_ns: u64) {
        self.metrics.mark_latest(m, t_ns);
    }

    fn trace(&self, t_ns: u64, ev: &TraceEvent) {
        self.flight.record(self.actor, t_ns, ev);
    }
}

/// Wraps a metrics recorder so that trace events flow into `flight`
/// attributed to `actor`. Pass [`crate::nop()`] as `metrics` to trace
/// without counting.
pub fn for_actor(
    actor: Actor,
    metrics: SharedRecorder,
    flight: Arc<FlightRecorder>,
) -> SharedRecorder {
    Arc::new(ActorRecorder { actor, metrics, flight })
}

/// Immutable export of a [`FlightRecorder`], with the pinned
/// `sttcp-trace-v1` JSON round-trip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceExport {
    /// Events evicted before this export was taken.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TracedEvent>,
}

impl TraceExport {
    /// Distinct connections, in first-appearance order.
    pub fn conns(&self) -> Vec<TraceConn> {
        let mut out: Vec<TraceConn> = Vec::new();
        for e in &self.events {
            if let Some(c) = e.event.conn() {
                if !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Serializes as a single-line JSON object:
    /// `{"format":"sttcp-trace-v1","dropped":N,"events":[...]}`.
    ///
    /// Field order is fixed per event kind, so equal exports serialize
    /// to byte-identical strings (the determinism tests rely on it).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 96);
        s.push_str("{\"format\":\"");
        s.push_str(TRACE_FORMAT);
        s.push_str("\",\"dropped\":");
        s.push_str(&self.dropped.to_string());
        s.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_event(&mut s, e);
        }
        s.push_str("]}");
        s
    }

    /// Parses a `sttcp-trace-v1` export.
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] on malformed JSON, a wrong format
    /// tag, or an unknown event kind / actor.
    pub fn from_json(s: &str) -> Result<TraceExport, TraceParseError> {
        let v = JVal::parse(s)?;
        let format = v.get("format").and_then(JVal::as_str).unwrap_or("");
        if format != TRACE_FORMAT {
            return Err(TraceParseError(format!(
                "expected format {TRACE_FORMAT:?}, got {format:?}"
            )));
        }
        let dropped = v.get("dropped").and_then(JVal::as_u64).unwrap_or(0);
        let mut events = Vec::new();
        if let Some(JVal::Arr(items)) = v.get("events") {
            for item in items {
                events.push(parse_event(item)?);
            }
        }
        Ok(TraceExport { dropped, events })
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_event(out: &mut String, e: &TracedEvent) {
    let kv_num = |out: &mut String, k: &str, v: u64| {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    };
    let kv_str = |out: &mut String, k: &str, v: &str| {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        json_str(out, v);
    };
    out.push_str("{\"s\":");
    out.push_str(&e.seq.to_string());
    kv_num(out, "t", e.t_ns);
    kv_str(out, "a", e.actor.name());
    kv_str(out, "ev", e.event.kind());
    match &e.event {
        TraceEvent::TcpState { conn, from, to } => {
            kv_str(out, "conn", &conn.to_string());
            kv_str(out, "from", from);
            kv_str(out, "to", to);
        }
        TraceEvent::ShadowResync { conn, iss } => {
            kv_str(out, "conn", &conn.to_string());
            kv_num(out, "iss", u64::from(*iss));
        }
        TraceEvent::Suppression { ip, on } => {
            kv_str(out, "ip", &ip.to_string());
            out.push_str(",\"on\":");
            out.push_str(if *on { "true" } else { "false" });
        }
        TraceEvent::RtoFired { conn, backoff, rto_ns } => {
            kv_str(out, "conn", &conn.to_string());
            kv_num(out, "backoff", u64::from(*backoff));
            kv_num(out, "rto_ns", *rto_ns);
        }
        TraceEvent::SideSend { msg, conn, seq, len }
        | TraceEvent::SideRecv { msg, conn, seq, len } => {
            kv_str(out, "msg", msg.name());
            if let Some(c) = conn {
                kv_str(out, "conn", &c.to_string());
            }
            kv_num(out, "seq", *seq);
            kv_num(out, "len", u64::from(*len));
        }
        TraceEvent::Suspected { silent_ns } | TraceEvent::BackupDead { silent_ns } => {
            kv_num(out, "silent_ns", *silent_ns);
        }
        TraceEvent::Fence { outlet } => kv_num(out, "outlet", u64::from(*outlet)),
        TraceEvent::Promoted => {}
        TraceEvent::FirstByte { conn } => kv_str(out, "conn", &conn.to_string()),
        TraceEvent::FaultRule { kind } => kv_str(out, "kind", kind.name()),
        TraceEvent::NodePower { node, what } => {
            kv_str(out, "node", node);
            kv_str(out, "what", what.name());
        }
        TraceEvent::PlannedMigration { phase, epoch } => {
            kv_str(out, "phase", phase.name());
            kv_num(out, "epoch", u64::from(*epoch));
        }
        TraceEvent::CongPhase { conn, algo, from, to, cwnd } => {
            kv_str(out, "conn", &conn.to_string());
            kv_str(out, "algo", algo);
            kv_str(out, "from", from);
            kv_str(out, "to", to);
            kv_num(out, "cwnd", u64::from(*cwnd));
        }
        TraceEvent::WireData { conn, seq, len, flags } => {
            kv_str(out, "conn", &conn.to_string());
            kv_num(out, "seq", u64::from(*seq));
            kv_num(out, "len", u64::from(*len));
            kv_num(out, "flags", u64::from(*flags));
        }
    }
    out.push('}');
}

/// Error from [`TraceExport::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError(String);

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.0)
    }
}

impl std::error::Error for TraceParseError {}

// ------------------------------------------------- minimal JSON reader
//
// This crate deliberately depends on nothing, so the round-trip parser
// is a ~100-line recursive-descent reader over the subset the writer
// above emits (objects, arrays, strings, unsigned integers, booleans).

#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Num(u64),
    Bool(bool),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn parse(s: &str) -> Result<JVal, TraceParseError> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(TraceParseError(format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            JVal::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), TraceParseError> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(TraceParseError(format!("expected {:?} at byte {}", ch as char, *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JVal, TraceParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JVal::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                entries.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JVal::Obj(entries));
                    }
                    _ => return Err(TraceParseError(format!("bad object at byte {}", *pos))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JVal::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JVal::Arr(items));
                    }
                    _ => return Err(TraceParseError(format!("bad array at byte {}", *pos))),
                }
            }
        }
        Some(b'"') => Ok(JVal::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JVal::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JVal::Bool(false))
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ascii");
            text.parse()
                .map(JVal::Num)
                .map_err(|_| TraceParseError(format!("number out of range at byte {start}")))
        }
        _ => Err(TraceParseError(format!("unexpected byte {}", *pos))),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, TraceParseError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(TraceParseError(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| TraceParseError("bad \\u escape".into()))?;
                        *pos += 4;
                        out.push(hex);
                    }
                    _ => return Err(TraceParseError("bad escape".into())),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: re-decode from the byte before.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && b[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&b[start..end])
                    .map_err(|_| TraceParseError("bad utf8".into()))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
    Err(TraceParseError("unterminated string".into()))
}

fn parse_event(v: &JVal) -> Result<TracedEvent, TraceParseError> {
    let err = |what: &str| TraceParseError(format!("event missing/invalid {what}"));
    let seq = v.get("s").and_then(JVal::as_u64).ok_or_else(|| err("s"))?;
    let t_ns = v.get("t").and_then(JVal::as_u64).ok_or_else(|| err("t"))?;
    let actor =
        v.get("a").and_then(JVal::as_str).and_then(Actor::from_name).ok_or_else(|| err("actor"))?;
    let kind = v.get("ev").and_then(JVal::as_str).ok_or_else(|| err("ev"))?;
    let conn = |key: &str| -> Result<TraceConn, TraceParseError> {
        v.get(key).and_then(JVal::as_str).and_then(TraceConn::parse).ok_or_else(|| err("conn"))
    };
    let opt_conn = |key: &str| -> Option<TraceConn> {
        v.get(key).and_then(JVal::as_str).and_then(TraceConn::parse)
    };
    let num = |key: &str| -> Result<u64, TraceParseError> {
        v.get(key).and_then(JVal::as_u64).ok_or_else(|| err(key))
    };
    let string = |key: &str| -> Result<String, TraceParseError> {
        v.get(key).and_then(JVal::as_str).map(str::to_string).ok_or_else(|| err(key))
    };
    let event = match kind {
        "tcp_state" => TraceEvent::TcpState {
            conn: conn("conn")?,
            from: Cow::Owned(string("from")?),
            to: Cow::Owned(string("to")?),
        },
        "shadow_resync" => {
            TraceEvent::ShadowResync { conn: conn("conn")?, iss: num("iss")? as u32 }
        }
        "suppression" => TraceEvent::Suppression {
            ip: string("ip")?.parse().map_err(|_| err("ip"))?,
            on: v.get("on").and_then(JVal::as_bool).ok_or_else(|| err("on"))?,
        },
        "rto_fired" => TraceEvent::RtoFired {
            conn: conn("conn")?,
            backoff: num("backoff")? as u32,
            rto_ns: num("rto_ns")?,
        },
        "side_send" | "side_recv" => {
            let msg = v
                .get("msg")
                .and_then(JVal::as_str)
                .and_then(SideMsgKind::from_name)
                .ok_or_else(|| err("msg"))?;
            let (c, seq_n, len) = (opt_conn("conn"), num("seq")?, num("len")? as u32);
            if kind == "side_send" {
                TraceEvent::SideSend { msg, conn: c, seq: seq_n, len }
            } else {
                TraceEvent::SideRecv { msg, conn: c, seq: seq_n, len }
            }
        }
        "suspected" => TraceEvent::Suspected { silent_ns: num("silent_ns")? },
        "fence" => TraceEvent::Fence { outlet: num("outlet")? as u32 },
        "promoted" => TraceEvent::Promoted,
        "first_byte" => TraceEvent::FirstByte { conn: conn("conn")? },
        "backup_dead" => TraceEvent::BackupDead { silent_ns: num("silent_ns")? },
        "fault_rule" => TraceEvent::FaultRule {
            kind: v
                .get("kind")
                .and_then(JVal::as_str)
                .and_then(FaultKind::from_name)
                .ok_or_else(|| err("kind"))?,
        },
        "node_power" => TraceEvent::NodePower {
            node: Cow::Owned(string("node")?),
            what: v
                .get("what")
                .and_then(JVal::as_str)
                .and_then(PowerKind::from_name)
                .ok_or_else(|| err("what"))?,
        },
        "planned_migration" => TraceEvent::PlannedMigration {
            phase: v
                .get("phase")
                .and_then(JVal::as_str)
                .and_then(MigrationPhase::from_name)
                .ok_or_else(|| err("phase"))?,
            epoch: num("epoch")? as u32,
        },
        "cong_phase" => TraceEvent::CongPhase {
            conn: conn("conn")?,
            algo: Cow::Owned(string("algo")?),
            from: Cow::Owned(string("from")?),
            to: Cow::Owned(string("to")?),
            cwnd: num("cwnd")? as u32,
        },
        "wire_data" => TraceEvent::WireData {
            conn: conn("conn")?,
            seq: num("seq")? as u32,
            len: num("len")? as u32,
            flags: num("flags")? as u8,
        },
        other => return Err(TraceParseError(format!("unknown event kind {other:?}"))),
    };
    Ok(TracedEvent { seq, t_ns, actor, event })
}

// ----------------------------------------------------------- renderers

/// The takeover phase instants extracted from a trace, aligned with
/// [`crate::TakeoverBreakdown`]: the `suspected`/`promoted`/`first
/// byte` events are recorded at the same call sites (and with the same
/// virtual-time clock) as the corresponding marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePhases {
    /// When the backup suspected the primary dead.
    pub suspected_ns: u64,
    /// Primary silence preceding suspicion (the detection phase).
    pub detection_ns: u64,
    /// When fencing was requested, if it was.
    pub fenced_ns: Option<u64>,
    /// When the backup lifted VIP suppression.
    pub promoted_ns: u64,
    /// When the first post-takeover data byte left for the client.
    pub first_byte_ns: Option<u64>,
}

impl TimelinePhases {
    /// Extracts the phases if the trace contains a takeover.
    pub fn from_export(export: &TraceExport) -> Option<TimelinePhases> {
        let mut suspected = None;
        let mut detection = 0;
        let mut fenced = None;
        let mut promoted = None;
        let mut first_byte = None;
        for e in &export.events {
            match e.event {
                TraceEvent::Suspected { silent_ns } if suspected.is_none() => {
                    suspected = Some(e.t_ns);
                    detection = silent_ns;
                }
                TraceEvent::Fence { .. } if fenced.is_none() => fenced = Some(e.t_ns),
                TraceEvent::Promoted if promoted.is_none() => promoted = Some(e.t_ns),
                TraceEvent::FirstByte { .. } if first_byte.is_none() => first_byte = Some(e.t_ns),
                _ => {}
            }
        }
        Some(TimelinePhases {
            suspected_ns: suspected?,
            detection_ns: detection,
            fenced_ns: fenced,
            promoted_ns: promoted?,
            first_byte_ns: first_byte,
        })
    }

    /// Promotion latency: suspicion → suppression lifted.
    pub fn promotion_ns(&self) -> u64 {
        self.promoted_ns.saturating_sub(self.suspected_ns)
    }

    /// Suspicion → first post-takeover byte, if one was sent.
    pub fn first_byte_latency_ns(&self) -> Option<u64> {
        Some(self.first_byte_ns?.saturating_sub(self.suspected_ns))
    }
}

/// Renders the human-readable failover timeline: every event, one per
/// line, followed by the detection → fencing → promotion → first-byte
/// phase summary when the trace contains a takeover.
pub fn render_timeline(export: &TraceExport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "flight recorder: {} events ({} dropped)\n",
        export.events.len(),
        export.dropped
    ));
    s.push_str("     t(ms)  actor    event\n");
    for e in &export.events {
        s.push_str(&format!(
            "{:>10.3}  {:<8} {}\n",
            ns_ms(e.t_ns),
            e.actor.name(),
            e.event.describe()
        ));
    }
    if let Some(p) = TimelinePhases::from_export(export) {
        s.push('\n');
        s.push_str("takeover phases:\n");
        s.push_str(&format!(
            "  detection   {:>9.3} ms  (suspected t={:.3} ms)\n",
            ns_ms(p.detection_ns),
            ns_ms(p.suspected_ns)
        ));
        if let Some(f) = p.fenced_ns {
            s.push_str(&format!(
                "  fencing req {:>9.3} ms  (t={:.3} ms)\n",
                ns_ms(f.saturating_sub(p.suspected_ns)),
                ns_ms(f)
            ));
        }
        s.push_str(&format!(
            "  promotion   {:>9.3} ms  (unsuppressed t={:.3} ms)\n",
            ns_ms(p.promotion_ns()),
            ns_ms(p.promoted_ns)
        ));
        match p.first_byte_ns {
            Some(fb) => s.push_str(&format!(
                "  first byte  {:>9.3} ms  (t={:.3} ms)\n",
                ns_ms(p.first_byte_latency_ns().unwrap_or(0)),
                ns_ms(fb)
            )),
            None => s.push_str("  first byte        n/a  (no post-takeover data)\n"),
        }
    }
    s
}

/// Renders a per-connection text sequence diagram with one lane per
/// actor. `conn = None` keeps connection-less events (heartbeats,
/// suspicion, power) and every connection; `Some(c)` filters to events
/// attributed to `c` plus the connection-less ones.
pub fn render_sequence(export: &TraceExport, conn: Option<TraceConn>) -> String {
    const LANES: [Actor; 4] = [Actor::Client, Actor::Net, Actor::Primary, Actor::Backup];
    const W: usize = 11;
    let mut s = String::new();
    match conn {
        Some(c) => s.push_str(&format!("sequence for {c}\n")),
        None => s.push_str("sequence (all connections)\n"),
    }
    s.push_str(&format!("{:>10}  ", "t(ms)"));
    for lane in LANES {
        s.push_str(&format!("{:^W$}", lane.name()));
    }
    s.push('\n');
    for e in &export.events {
        if let (Some(want), Some(have)) = (conn, e.event.conn()) {
            if want != have {
                continue;
            }
        }
        s.push_str(&format!("{:>10.3}  ", ns_ms(e.t_ns)));
        let pos = LANES.iter().position(|&l| l == e.actor).unwrap_or(1);
        for (i, _) in LANES.iter().enumerate() {
            if i == pos {
                s.push_str(&format!("{:^W$}", marker(&e.event)));
            } else {
                s.push_str(&format!("{:^W$}", "|"));
            }
        }
        s.push_str("  ");
        s.push_str(&e.event.describe());
        s.push('\n');
    }
    s
}

fn marker(e: &TraceEvent) -> &'static str {
    match e {
        TraceEvent::SideSend { .. } => ">--side-->",
        TraceEvent::SideRecv { .. } => "<--side--<",
        TraceEvent::WireData { .. } => "~~wire~~",
        TraceEvent::Suspected { .. } => "!!",
        TraceEvent::Fence { .. } => "FENCE",
        TraceEvent::Promoted => "PROMOTE",
        TraceEvent::FirstByte { .. } => "FIRST",
        _ => "*",
    }
}

/// Renders Chrome `trace_event` JSON (open in `chrome://tracing` or
/// Perfetto): one instant event per trace event, one thread per actor.
pub fn render_chrome(export: &TraceExport) -> String {
    let mut s = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &mut String, item: String| {
        if !std::mem::take(&mut first) {
            s.push(',');
        }
        s.push_str(&item);
    };
    for (tid, actor) in Actor::ALL.iter().enumerate() {
        if export.events.iter().any(|e| e.actor == *actor) {
            push(
                &mut s,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    actor.name()
                ),
            );
        }
    }
    for e in &export.events {
        let tid = Actor::ALL.iter().position(|a| *a == e.actor).unwrap_or(0);
        let mut detail = String::new();
        json_str(&mut detail, &e.event.describe());
        push(
            &mut s,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"detail\":{detail}}}}}",
                e.event.kind(),
                format_us(e.t_ns),
            ),
        );
    }
    s.push_str("]}");
    s
}

/// Nanoseconds → microseconds with sub-µs precision, formatted without
/// float noise (chrome `ts` fields are microseconds).
fn format_us(t_ns: u64) -> String {
    let us = t_ns / 1_000;
    let frac = t_ns % 1_000;
    if frac == 0 {
        us.to_string()
    } else {
        format!("{us}.{frac:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

    fn conn() -> TraceConn {
        TraceConn::new((IP_B, 80), (IP_A, 40000))
    }

    #[test]
    fn trace_conn_canonicalizes_and_parses() {
        let a = TraceConn::new((IP_A, 40000), (IP_B, 80));
        let b = TraceConn::new((IP_B, 80), (IP_A, 40000));
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "10.0.0.1:40000<->10.0.0.100:80");
        assert_eq!(TraceConn::parse(&a.to_string()), Some(a));
        assert_eq!(TraceConn::parse("nonsense"), None);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(Actor::Net, i * 10, &TraceEvent::Promoted);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let exp = fr.export();
        assert_eq!(exp.dropped, 2);
        // The newest three survive, with their original seq numbers.
        assert_eq!(exp.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(exp.events.iter().map(|e| e.t_ns).collect::<Vec<_>>(), vec![20, 30, 40]);
    }

    #[test]
    fn tail_counts_skipped_as_dropped() {
        let fr = FlightRecorder::new(10);
        for i in 0..6u64 {
            fr.record(Actor::Backup, i, &TraceEvent::Promoted);
        }
        let tail = fr.tail(2);
        assert_eq!(tail.events.len(), 2);
        assert_eq!(tail.dropped, 4);
        assert_eq!(tail.events[0].seq, 4);
        let all = fr.tail(100);
        assert_eq!(all.events.len(), 6);
        assert_eq!(all.dropped, 0);
    }

    #[test]
    fn nop_recorder_ignores_trace() {
        let r = crate::nop();
        r.trace(5, &TraceEvent::Promoted);
    }

    #[test]
    fn actor_recorder_tags_and_forwards() {
        let sink = Arc::new(crate::ObsSink::new());
        let flight = Arc::new(FlightRecorder::new(16));
        let r = for_actor(Actor::Backup, sink.clone(), flight.clone());
        r.count(crate::Counter::HeartbeatsSent, 2);
        r.trace(99, &TraceEvent::Suspected { silent_ns: 7 });
        assert_eq!(sink.counter(crate::Counter::HeartbeatsSent), 2);
        let exp = flight.export();
        assert_eq!(exp.events.len(), 1);
        assert_eq!(exp.events[0].actor, Actor::Backup);
        assert_eq!(exp.events[0].t_ns, 99);
    }

    fn sample_export() -> TraceExport {
        let fr = FlightRecorder::new(64);
        fr.record(
            Actor::Client,
            1_000,
            &TraceEvent::TcpState {
                conn: conn(),
                from: "SynSent".into(),
                to: "Established".into(),
            },
        );
        fr.record(Actor::Backup, 2_000, &TraceEvent::ShadowResync { conn: conn(), iss: 1234 });
        fr.record(Actor::Backup, 2_500, &TraceEvent::Suppression { ip: IP_B, on: true });
        fr.record(
            Actor::Primary,
            3_000,
            &TraceEvent::SideSend { msg: SideMsgKind::Heartbeat, conn: None, seq: 1, len: 0 },
        );
        fr.record(
            Actor::Backup,
            3_500,
            &TraceEvent::SideRecv {
                msg: SideMsgKind::MissingData,
                conn: Some(conn()),
                seq: 777,
                len: 512,
            },
        );
        fr.record(Actor::Net, 4_000, &TraceEvent::FaultRule { kind: FaultKind::Drop });
        fr.record(
            Actor::Net,
            5_000,
            &TraceEvent::NodePower { node: "primary".into(), what: PowerKind::Crash },
        );
        fr.record(Actor::Backup, 6_000, &TraceEvent::Suspected { silent_ns: 150_000 });
        fr.record(Actor::Backup, 6_100, &TraceEvent::Fence { outlet: 1 });
        fr.record(Actor::Backup, 6_200, &TraceEvent::Promoted);
        fr.record(
            Actor::Backup,
            6_300,
            &TraceEvent::RtoFired { conn: conn(), backoff: 2, rto_ns: 800_000_000 },
        );
        fr.record(
            Actor::Backup,
            7_000,
            &TraceEvent::WireData { conn: conn(), seq: 42, len: 536, flags: 0x18 },
        );
        fr.record(Actor::Backup, 7_000, &TraceEvent::FirstByte { conn: conn() });
        fr.record(Actor::Primary, 8_000, &TraceEvent::BackupDead { silent_ns: 9 });
        fr.record(
            Actor::Primary,
            8_500,
            &TraceEvent::SideSend { msg: SideMsgKind::ClusterHb, conn: None, seq: 3, len: 3 },
        );
        fr.record(
            Actor::Primary,
            8_600,
            &TraceEvent::PlannedMigration { phase: MigrationPhase::DrainStarted, epoch: 2 },
        );
        fr.record(
            Actor::Primary,
            8_700,
            &TraceEvent::CongPhase {
                conn: conn(),
                algo: "bbr".into(),
                from: "startup".into(),
                to: "probe_bw".into(),
                cwnd: 29_200,
            },
        );
        fr.export()
    }

    #[test]
    fn export_json_round_trips_byte_identical() {
        let exp = sample_export();
        let json = exp.to_json();
        assert!(json.starts_with("{\"format\":\"sttcp-trace-v1\",\"dropped\":0,\"events\":["));
        let back = TraceExport::from_json(&json).expect("parse own output");
        assert_eq!(back, exp);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn golden_event_encoding() {
        let fr = FlightRecorder::new(4);
        fr.record(Actor::Backup, 1_650_000_000, &TraceEvent::Suspected { silent_ns: 150_000_000 });
        assert_eq!(
            fr.export().to_json(),
            "{\"format\":\"sttcp-trace-v1\",\"dropped\":0,\"events\":[\
             {\"s\":0,\"t\":1650000000,\"a\":\"backup\",\"ev\":\"suspected\",\
             \"silent_ns\":150000000}]}"
        );
    }

    #[test]
    fn from_json_rejects_wrong_format_and_garbage() {
        assert!(TraceExport::from_json("{\"format\":\"bogus\",\"events\":[]}").is_err());
        assert!(TraceExport::from_json("not json").is_err());
        assert!(TraceExport::from_json(
            "{\"format\":\"sttcp-trace-v1\",\"dropped\":0,\
                                        \"events\":[{\"s\":0}]}"
        )
        .is_err());
    }

    #[test]
    fn timeline_phases_align_with_events() {
        let exp = sample_export();
        let p = TimelinePhases::from_export(&exp).expect("takeover present");
        assert_eq!(p.suspected_ns, 6_000);
        assert_eq!(p.detection_ns, 150_000);
        assert_eq!(p.fenced_ns, Some(6_100));
        assert_eq!(p.promoted_ns, 6_200);
        assert_eq!(p.promotion_ns(), 200);
        assert_eq!(p.first_byte_ns, Some(7_000));
        assert_eq!(p.first_byte_latency_ns(), Some(1_000));
    }

    #[test]
    fn renderers_smoke() {
        let exp = sample_export();
        let tl = render_timeline(&exp);
        assert!(tl.contains("SUSPECTED"));
        assert!(tl.contains("takeover phases:"));
        let seq = render_sequence(&exp, Some(conn()));
        assert!(seq.contains("10.0.0.1:40000<->10.0.0.100:80"));
        let seq_all = render_sequence(&exp, None);
        assert!(seq_all.contains("heartbeat"));
        let chrome = render_chrome(&exp);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.ends_with("]}"));
    }

    #[test]
    fn conns_lists_first_seen_order() {
        let exp = sample_export();
        assert_eq!(exp.conns(), vec![conn()]);
    }

    #[test]
    fn flag_rendering() {
        assert_eq!(flag_str(0x02), "S");
        assert_eq!(flag_str(0x12), "SA");
        assert_eq!(flag_str(0x18), "PA");
        assert_eq!(flag_str(0x11), "FA");
        assert_eq!(flag_str(0), ".");
    }
}
