//! Deterministic observability for the ST-TCP reproduction.
//!
//! The paper's evaluation (§6) hinges on per-mechanism numbers: takeover
//! latency split into detection vs. promotion, retention-buffer occupancy
//! against the `LastByteAcked` bound (§4.2), side-channel ack/heartbeat
//! cadence (§4.3). This crate is the sink those numbers flow into.
//!
//! # Design
//!
//! * [`Recorder`] is the instrumentation trait. Every method has a no-op
//!   default body, so the cost of an un-instrumented run is one virtual
//!   call per event — no allocation, no branching on feature flags, and
//!   (critically for the simulator) no change in behavior or event order
//!   whether or not recording is on.
//! * [`ObsSink`] is the recording implementation: fixed arrays of
//!   [`AtomicU64`] indexed by the [`Counter`]/[`Gauge`]/[`Mark`] enums.
//!   Atomics (relaxed) keep the sink `Sync` so one `Arc<ObsSink>` can be
//!   cloned into every node of a simulation — or shared across chaos
//!   worker threads — without interior-mutability gymnastics.
//! * [`Snapshot`] is the exported view: only non-zero counters/gauges and
//!   set marks, in declaration order, with a dependency-free JSON writer
//!   ([`Snapshot::to_json`]) whose format is pinned by a golden test.
//! * [`TakeoverBreakdown`] derives the paper's headline latency split
//!   from the phase marks.
//!
//! Timestamps are raw `u64` nanoseconds of virtual time; this crate
//! deliberately depends on nothing (not even `netsim`) so every layer of
//! the workspace can record into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

pub use trace::{
    for_actor, render_chrome, render_sequence, render_timeline, Actor, FlightRecorder,
    MigrationPhase, TimelinePhases, TraceConn, TraceEvent, TraceExport, TracedEvent,
    DEFAULT_TRACE_CAPACITY, TRACE_FORMAT,
};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "this mark was never recorded".
const UNSET: u64 = u64::MAX;

macro_rules! obs_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $str:literal,)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration (and therefore export) order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// The stable snake_case name used in JSON snapshots.
            pub const fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $str,)+
                }
            }
        }
    };
}

obs_enum! {
    /// Monotonic event counters, one per instrumented mechanism.
    Counter {
        /// TCP retransmission timeouts that fired (go-back-N restarts).
        TcpRtoFired => "tcp_rto_fired",
        /// Fast retransmits triggered by duplicate ACKs.
        TcpFastRetransmits => "tcp_fast_retransmits",
        /// Zero-window probes sent.
        TcpWindowProbes => "tcp_window_probes",
        /// Times a sender entered a zero-window stall.
        TcpWindowStalls => "tcp_window_stalls",
        /// Egress segments dropped by ST-TCP suppression (§4.2).
        SegsSuppressed => "segs_suppressed",
        /// Backup acknowledgments sent over the side channel (§4.3).
        BackupAcksSent => "backup_acks_sent",
        /// Backup acknowledgments received by the primary.
        BackupAcksReceived => "backup_acks_received",
        /// Missing-segment requests sent by the backup.
        MissingReqsSent => "missing_reqs_sent",
        /// Missing-segment requests the primary served with data.
        MissingRepliesServed => "missing_replies_served",
        /// Missing-segment requests the primary NACKed.
        MissingNacks => "missing_nacks",
        /// Heartbeats sent by the primary.
        HeartbeatsSent => "heartbeats_sent",
        /// Heartbeats received by the backup.
        HeartbeatsReceived => "heartbeats_received",
        /// Shadow-connection ISN resyncs from tapped SYN/ACKs (§4.1).
        ShadowIsnResyncs => "shadow_isn_resyncs",
        /// Range queries served by the in-network packet logger (§3.2).
        LoggerQueries => "logger_queries",
        /// Bootstrap (full-history) queries served by the logger.
        BootstrapQueries => "bootstrap_queries",
        /// Frames dropped because a link's serialization queue was full.
        LinkQueueDrops => "link_queue_drops",
        /// Frames dropped by a link's probabilistic loss model.
        LinkLossDrops => "link_loss_drops",
        /// Frames dropped by an injected ingress fault rule.
        IngressDrops => "ingress_drops",
        /// Frames delayed by an injected ingress fault rule.
        IngressDelays => "ingress_delays",
        /// Frames duplicated by an injected ingress fault rule.
        IngressDuplicates => "ingress_duplicates",
        /// Batched (multiplexed) ack messages sent by cluster backups.
        AckBatchesSent => "ack_batches_sent",
        /// Per-connection ack entries carried inside those batches.
        AckBatchEntries => "ack_batch_entries",
        /// Catch-up replay rounds a lagging backup went through before
        /// reaching promotion eligibility.
        CatchupReplays => "catchup_replays",
        /// Planned migrations completed (drain → handover).
        PlannedMigrations => "planned_migrations",
        /// SACK blocks attached to outgoing ACKs (RFC 2018 receiver side).
        SackBlocksSent => "sack_blocks_sent",
        /// Retransmissions that skipped SACKed ranges instead of
        /// resending the whole window (scoreboard-driven recovery).
        SelectiveRetransmits => "selective_retransmits",
        /// Congestion-state mirror messages sent over the side channel.
        CongSyncsSent => "cong_syncs_sent",
    }
}

obs_enum! {
    /// High-water-mark gauges (the recorded value is the maximum seen).
    Gauge {
        /// Peak send-buffer occupancy in bytes, across all connections.
        SendBufHighWater => "send_buf_high_water",
        /// Peak receive-buffer occupancy in bytes, across all connections.
        RecvBufHighWater => "recv_buf_high_water",
        /// Peak retention-buffer occupancy in bytes (§4.2 bound).
        RetentionHighWater => "retention_high_water",
        /// Peak per-link queue backlog, in nanoseconds of serialization.
        LinkQueueDepth => "link_queue_depth_ns",
        /// This node's promotion rank in the cluster topology, plus one
        /// (1 = primary, 2 = first backup, …; a max-gauge cannot hold 0).
        PromotionRank => "promotion_rank",
        /// Peak catch-up lag in bytes: how far a backup's shadow trailed
        /// the primary's cumulative ack before reaching eligibility.
        CatchupLagBytes => "catchup_lag_bytes",
        /// Peak congestion window in bytes, across all connections.
        CwndBytes => "cwnd_bytes",
    }
}

obs_enum! {
    /// Phase timestamps (virtual-time nanoseconds).
    Mark {
        /// Latest instant the backup heard from the primary (kept fresh).
        LastPrimaryHeard => "last_primary_heard",
        /// First instant the backup suspected the primary dead (§4.4).
        SuspectedPrimaryDead => "suspected_primary_dead",
        /// First instant a power-fencing request was issued (§4.4).
        FenceRequested => "fence_requested",
        /// First instant VIP egress suppression was lifted (§5 takeover).
        TakeoverUnsuppressed => "takeover_unsuppressed",
        /// First data byte emitted to the client after takeover.
        FirstByteAfterTakeover => "first_byte_after_takeover",
    }
}

/// Instrumentation sink. All methods default to no-ops, so the
/// un-instrumented cost is a single virtual call at each hook point.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// Adds `n` to counter `c`.
    fn count(&self, c: Counter, n: u64) {
        let _ = (c, n);
    }
    /// Raises gauge `g` to `v` if `v` exceeds the recorded maximum.
    fn gauge_max(&self, g: Gauge, v: u64) {
        let _ = (g, v);
    }
    /// Records `t_ns` for mark `m` only if the mark is still unset.
    fn mark_first(&self, m: Mark, t_ns: u64) {
        let _ = (m, t_ns);
    }
    /// Records `t_ns` for mark `m`, overwriting any earlier value.
    fn mark_latest(&self, m: Mark, t_ns: u64) {
        let _ = (m, t_ns);
    }
    /// Records one structured [`TraceEvent`] at virtual time `t_ns`.
    ///
    /// Defaulted to a no-op (and ignored by [`ObsSink`], which only
    /// aggregates); trace events are retained by wrapping a recorder
    /// with [`trace::for_actor`], which routes them into a shared
    /// [`FlightRecorder`] ring.
    fn trace(&self, t_ns: u64, ev: &TraceEvent) {
        let _ = (t_ns, ev);
    }
}

/// Shared handle to a recorder; cloned into every instrumented layer.
pub type SharedRecorder = Arc<dyn Recorder>;

/// The do-nothing recorder used when observability is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopRecorder;

impl Recorder for NopRecorder {}

/// A fresh [`SharedRecorder`] that records nothing.
pub fn nop() -> SharedRecorder {
    Arc::new(NopRecorder)
}

/// Recording sink: fixed atomic arrays indexed by the enums.
///
/// Relaxed atomics are exact in the single-threaded simulator and still
/// safe if a future embedding records from several threads (counters may
/// then interleave, but each increment lands).
#[derive(Default)]
pub struct ObsSink {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    marks: Marks,
}

struct Marks([AtomicU64; Mark::ALL.len()]);

impl Default for Marks {
    fn default() -> Self {
        Marks(std::array::from_fn(|_| AtomicU64::new(UNSET)))
    }
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsSink").finish_non_exhaustive()
    }
}

impl ObsSink {
    /// A fresh, all-zero sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Current value of one gauge (its maximum so far).
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Value of one mark, if it was ever recorded.
    pub fn mark(&self, m: Mark) -> Option<u64> {
        match self.marks.0[m as usize].load(Ordering::Relaxed) {
            UNSET => None,
            t => Some(t),
        }
    }

    /// An immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c, self.counter(c)))
                .filter(|&(_, v)| v != 0)
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g, self.gauge(g)))
                .filter(|&(_, v)| v != 0)
                .collect(),
            marks_ns: Mark::ALL.iter().filter_map(|&m| self.mark(m).map(|t| (m, t))).collect(),
        }
    }
}

impl Recorder for ObsSink {
    fn count(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn gauge_max(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].fetch_max(v, Ordering::Relaxed);
    }

    fn mark_first(&self, m: Mark, t_ns: u64) {
        let _ = self.marks.0[m as usize].compare_exchange(
            UNSET,
            t_ns,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    fn mark_latest(&self, m: Mark, t_ns: u64) {
        self.marks.0[m as usize].store(t_ns, Ordering::Relaxed);
    }
}

/// Point-in-time export of an [`ObsSink`]: non-zero counters and gauges
/// plus set marks, in enum declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Non-zero counters.
    pub counters: Vec<(Counter, u64)>,
    /// Non-zero gauges (high-water maxima).
    pub gauges: Vec<(Gauge, u64)>,
    /// Set marks, in virtual-time nanoseconds.
    pub marks_ns: Vec<(Mark, u64)>,
}

/// Format tag embedded in every exported snapshot.
pub const SNAPSHOT_FORMAT: &str = "sttcp-obs-v1";

impl Snapshot {
    /// Looks up a counter or gauge by its snake_case name; absent means
    /// zero, so oracles can probe uniformly.
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| c.name() == name)
            .map(|&(_, v)| v)
            .or_else(|| self.gauges.iter().find(|(g, _)| g.name() == name).map(|&(_, v)| v))
            .unwrap_or(0)
    }

    /// Looks up a mark by name.
    pub fn mark(&self, m: Mark) -> Option<u64> {
        self.marks_ns.iter().find(|&&(mm, _)| mm == m).map(|&(_, t)| t)
    }

    /// Serializes the snapshot as a single-line JSON object:
    /// `{"format":"sttcp-obs-v1","counters":{...},"gauges":{...},"marks_ns":{...}}`.
    ///
    /// Key order is the enum declaration order, so equal snapshots
    /// serialize to byte-identical strings (golden-tested).
    pub fn to_json(&self) -> String {
        fn obj(out: &mut String, key: &str, entries: impl Iterator<Item = (&'static str, u64)>) {
            out.push('"');
            out.push_str(key);
            out.push_str("\":{");
            for (i, (name, v)) in entries.enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(name);
                out.push_str("\":");
                out.push_str(&v.to_string());
            }
            out.push('}');
        }
        let mut s = String::new();
        s.push_str("{\"format\":\"");
        s.push_str(SNAPSHOT_FORMAT);
        s.push_str("\",");
        obj(&mut s, "counters", self.counters.iter().map(|&(c, v)| (c.name(), v)));
        s.push(',');
        obj(&mut s, "gauges", self.gauges.iter().map(|&(g, v)| (g.name(), v)));
        s.push(',');
        obj(&mut s, "marks_ns", self.marks_ns.iter().map(|&(m, v)| (m.name(), v)));
        s.push('}');
        s
    }
}

/// The paper's headline takeover-latency split (Table 2, Fig. 5),
/// derived from the phase marks of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TakeoverBreakdown {
    /// Last instant the backup heard from the primary.
    pub last_primary_heard_ns: u64,
    /// When the backup declared the primary dead.
    pub suspected_ns: u64,
    /// When power fencing was requested (absent without a power switch).
    pub fenced_ns: Option<u64>,
    /// When VIP egress suppression was lifted.
    pub unsuppressed_ns: u64,
    /// When the first post-takeover data byte left for the client
    /// (absent if the run ended before any such byte).
    pub first_byte_ns: Option<u64>,
}

impl TakeoverBreakdown {
    /// Builds the breakdown if the run actually took over (all of
    /// last-heard, suspicion, and unsuppress marks are present).
    pub fn from_snapshot(snap: &Snapshot) -> Option<Self> {
        Some(TakeoverBreakdown {
            last_primary_heard_ns: snap.mark(Mark::LastPrimaryHeard)?,
            suspected_ns: snap.mark(Mark::SuspectedPrimaryDead)?,
            fenced_ns: snap.mark(Mark::FenceRequested),
            unsuppressed_ns: snap.mark(Mark::TakeoverUnsuppressed)?,
            first_byte_ns: snap.mark(Mark::FirstByteAfterTakeover),
        })
    }

    /// Detection latency: silence heard → primary declared dead.
    pub fn detection_ns(&self) -> u64 {
        self.suspected_ns.saturating_sub(self.last_primary_heard_ns)
    }

    /// Promotion latency: suspicion → suppression lifted (zero for the
    /// active-backup policy without fencing, by design).
    pub fn promotion_ns(&self) -> u64 {
        self.unsuppressed_ns.saturating_sub(self.suspected_ns)
    }

    /// Suspicion → first data byte reaches the wire, if one did.
    pub fn first_byte_latency_ns(&self) -> Option<u64> {
        Some(self.first_byte_ns?.saturating_sub(self.suspected_ns))
    }

    /// Multi-line human-readable rendering for examples and reports.
    pub fn render(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        let mut s = String::new();
        s.push_str("takeover breakdown:\n");
        s.push_str(&format!(
            "  detection   {:>9.3} ms  (last heard t={:.3} ms -> suspected t={:.3} ms)\n",
            ms(self.detection_ns()),
            ms(self.last_primary_heard_ns),
            ms(self.suspected_ns),
        ));
        if let Some(f) = self.fenced_ns {
            s.push_str(&format!(
                "  fencing req {:>9.3} ms  (t={:.3} ms)\n",
                ms(f - self.suspected_ns),
                ms(f)
            ));
        }
        s.push_str(&format!(
            "  promotion   {:>9.3} ms  (unsuppressed t={:.3} ms)\n",
            ms(self.promotion_ns()),
            ms(self.unsuppressed_ns),
        ));
        match self.first_byte_ns {
            Some(fb) => s.push_str(&format!(
                "  first byte  {:>9.3} ms  (t={:.3} ms)\n",
                ms(self.first_byte_latency_ns().unwrap_or(0)),
                ms(fb),
            )),
            None => s.push_str("  first byte        n/a  (no post-takeover data)\n"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_recorder_is_truly_inert() {
        let r = nop();
        r.count(Counter::SegsSuppressed, 5);
        r.gauge_max(Gauge::RetentionHighWater, 100);
        r.mark_first(Mark::SuspectedPrimaryDead, 7);
        // Nothing observable; this is a smoke test that the calls compile
        // and cost nothing semantically.
    }

    #[test]
    fn sink_counts_gauges_and_marks() {
        let s = ObsSink::new();
        s.count(Counter::HeartbeatsSent, 1);
        s.count(Counter::HeartbeatsSent, 2);
        assert_eq!(s.counter(Counter::HeartbeatsSent), 3);

        s.gauge_max(Gauge::RetentionHighWater, 10);
        s.gauge_max(Gauge::RetentionHighWater, 4);
        assert_eq!(s.gauge(Gauge::RetentionHighWater), 10);

        s.mark_first(Mark::SuspectedPrimaryDead, 100);
        s.mark_first(Mark::SuspectedPrimaryDead, 200);
        assert_eq!(s.mark(Mark::SuspectedPrimaryDead), Some(100));

        s.mark_latest(Mark::LastPrimaryHeard, 50);
        s.mark_latest(Mark::LastPrimaryHeard, 60);
        assert_eq!(s.mark(Mark::LastPrimaryHeard), Some(60));
    }

    #[test]
    fn snapshot_keeps_only_nonzero_in_declaration_order() {
        let s = ObsSink::new();
        s.count(Counter::SegsSuppressed, 2);
        s.count(Counter::TcpRtoFired, 1);
        let snap = s.snapshot();
        // Declaration order: TcpRtoFired before SegsSuppressed.
        assert_eq!(snap.counters, vec![(Counter::TcpRtoFired, 1), (Counter::SegsSuppressed, 2)]);
        assert!(snap.gauges.is_empty());
        assert_eq!(snap.get("segs_suppressed"), 2);
        assert_eq!(snap.get("heartbeats_sent"), 0);
    }

    #[test]
    fn golden_json_snapshot() {
        let s = ObsSink::new();
        s.count(Counter::TcpRtoFired, 3);
        s.count(Counter::SegsSuppressed, 41);
        s.count(Counter::HeartbeatsSent, 12);
        s.gauge_max(Gauge::RetentionHighWater, 8192);
        s.mark_latest(Mark::LastPrimaryHeard, 1_500_000_000);
        s.mark_first(Mark::SuspectedPrimaryDead, 1_650_000_000);
        s.mark_first(Mark::TakeoverUnsuppressed, 1_650_000_000);
        let json = s.snapshot().to_json();
        assert_eq!(
            json,
            "{\"format\":\"sttcp-obs-v1\",\
             \"counters\":{\"tcp_rto_fired\":3,\"segs_suppressed\":41,\"heartbeats_sent\":12},\
             \"gauges\":{\"retention_high_water\":8192},\
             \"marks_ns\":{\"last_primary_heard\":1500000000,\
             \"suspected_primary_dead\":1650000000,\
             \"takeover_unsuppressed\":1650000000}}"
        );
    }

    #[test]
    fn empty_snapshot_json() {
        let snap = ObsSink::new().snapshot();
        assert_eq!(
            snap.to_json(),
            "{\"format\":\"sttcp-obs-v1\",\"counters\":{},\"gauges\":{},\"marks_ns\":{}}"
        );
    }

    #[test]
    fn takeover_breakdown_from_marks() {
        let s = ObsSink::new();
        assert!(TakeoverBreakdown::from_snapshot(&s.snapshot()).is_none());
        s.mark_latest(Mark::LastPrimaryHeard, 1_000_000_000);
        s.mark_first(Mark::SuspectedPrimaryDead, 1_160_000_000);
        s.mark_first(Mark::TakeoverUnsuppressed, 1_160_000_000);
        s.mark_first(Mark::FirstByteAfterTakeover, 1_170_000_000);
        let bd = TakeoverBreakdown::from_snapshot(&s.snapshot()).expect("took over");
        assert_eq!(bd.detection_ns(), 160_000_000);
        assert_eq!(bd.promotion_ns(), 0);
        assert_eq!(bd.first_byte_latency_ns(), Some(10_000_000));
        assert!(bd.fenced_ns.is_none());
        let text = bd.render();
        assert!(text.contains("detection"));
        assert!(text.contains("160.000 ms"));
    }
}
