//! TCP Reno congestion control (RFC 2581/5681).
//!
//! Slow start, congestion avoidance, fast retransmit / fast recovery,
//! and restart-after-idle. The evaluation LAN is never congestion-limited
//! (the ≈17 KB receive window binds first), but congestion control still
//! shapes the Interactive application's response latency: each burst
//! after an idle period restarts from the initial window, which is why a
//! 10 KB reply costs ≈2 round trips rather than one.

use netsim::SimDuration;

/// Why the sender entered recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Open,
    FastRecovery,
}

/// Reno congestion state for one connection.
#[derive(Debug, Clone)]
pub struct Congestion {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    phase: Phase,
    dup_acks: u32,
    initial_cwnd: u32,
    /// Retransmissions triggered by three duplicate ACKs.
    pub fast_retransmits: u64,
    /// Retransmissions triggered by the RTO timer.
    pub timeout_retransmits: u64,
}

impl Congestion {
    /// Creates Reno state: initial window of 2 MSS; ssthresh starts
    /// "arbitrarily high" (RFC 5681 §3.1) so slow start runs until the
    /// first loss or the flow-control window binds.
    pub fn new(mss: u32) -> Self {
        let initial_cwnd = 2 * mss;
        Congestion {
            mss,
            cwnd: initial_cwnd,
            ssthresh: u32::MAX,
            phase: Phase::Open,
            dup_acks: 0,
            initial_cwnd,
            fast_retransmits: 0,
            timeout_retransmits: 0,
        }
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    /// Consecutive duplicate ACKs seen.
    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// True while in fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.phase == Phase::FastRecovery
    }

    /// An ACK advanced `snd_una` (`flight` = bytes in flight before it).
    pub fn on_new_ack(&mut self, flight: u32) {
        self.dup_acks = 0;
        match self.phase {
            Phase::FastRecovery => {
                // Deflate back to ssthresh.
                self.cwnd = self.ssthresh;
                self.phase = Phase::Open;
            }
            Phase::Open => {
                if self.cwnd < self.ssthresh {
                    self.cwnd = self.cwnd.saturating_add(self.mss); // slow start
                } else {
                    // Congestion avoidance: ~1 MSS per RTT.
                    let inc = (u64::from(self.mss) * u64::from(self.mss)
                        / u64::from(self.cwnd.max(1)))
                    .max(1);
                    self.cwnd = self.cwnd.saturating_add(inc as u32);
                }
            }
        }
        let _ = flight;
    }

    /// A duplicate ACK arrived. Returns `true` when the third duplicate
    /// triggers a fast retransmit.
    pub fn on_dup_ack(&mut self, flight: u32) -> bool {
        self.dup_acks += 1;
        match self.phase {
            Phase::Open if self.dup_acks == 3 => {
                self.ssthresh = (flight / 2).max(2 * self.mss);
                self.cwnd = self.ssthresh + 3 * self.mss;
                self.phase = Phase::FastRecovery;
                self.fast_retransmits += 1;
                true
            }
            Phase::FastRecovery => {
                // Window inflation: each dup ACK signals a departed segment.
                self.cwnd = self.cwnd.saturating_add(self.mss);
                false
            }
            _ => false,
        }
    }

    /// The retransmission timer fired.
    pub fn on_timeout(&mut self, flight: u32) {
        self.ssthresh = (flight / 2).max(2 * self.mss);
        self.cwnd = self.mss; // loss window (RFC 5681 §3.1)
        self.phase = Phase::Open;
        self.dup_acks = 0;
        self.timeout_retransmits += 1;
    }

    /// The connection was idle longer than one RTO: restart from the
    /// initial window (RFC 2581 §4.1) — Linux behaviour the Interactive
    /// workload timing depends on.
    pub fn on_idle_restart(&mut self) {
        self.cwnd = self.initial_cwnd;
        self.phase = Phase::Open;
        self.dup_acks = 0;
    }

    /// Whether `idle` (time since last send) warrants a restart given
    /// the current RTO.
    pub fn idle_restart_due(idle: SimDuration, rto: SimDuration) -> bool {
        idle > rto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn starts_with_two_segments() {
        let c = Congestion::new(MSS);
        assert_eq!(c.cwnd(), 2 * MSS);
        assert!(!c.in_fast_recovery());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = Congestion::new(MSS);
        // One RTT's worth of ACKs: 2 ACKs (one per segment) -> cwnd 4 MSS.
        c.on_new_ack(2 * MSS);
        c.on_new_ack(2 * MSS);
        assert_eq!(c.cwnd(), 4 * MSS);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut c = Congestion::new(MSS);
        // A timeout sets a finite ssthresh; grow back into avoidance.
        c.on_timeout(64 * 1024);
        while c.cwnd() < c.ssthresh() {
            c.on_new_ack(c.cwnd());
        }
        let w = c.cwnd();
        // cwnd/MSS ACKs ≈ one RTT ≈ +1 MSS.
        let acks = w / MSS;
        for _ in 0..acks {
            c.on_new_ack(w);
        }
        let grown = c.cwnd() - w;
        assert!((MSS - 100..=MSS + 100).contains(&grown), "grew {grown}, expected ≈MSS");
    }

    #[test]
    fn triple_dup_ack_enters_fast_recovery() {
        let mut c = Congestion::new(MSS);
        let flight = 10 * MSS;
        assert!(!c.on_dup_ack(flight));
        assert!(!c.on_dup_ack(flight));
        assert!(c.on_dup_ack(flight), "third dup ACK must trigger fast retransmit");
        assert!(c.in_fast_recovery());
        assert_eq!(c.ssthresh(), 5 * MSS);
        assert_eq!(c.cwnd(), 5 * MSS + 3 * MSS);
        assert_eq!(c.fast_retransmits, 1);
        // Additional dup ACKs inflate.
        c.on_dup_ack(flight);
        assert_eq!(c.cwnd(), 9 * MSS);
        // New ACK deflates to ssthresh.
        c.on_new_ack(flight);
        assert_eq!(c.cwnd(), 5 * MSS);
        assert!(!c.in_fast_recovery());
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut c = Congestion::new(MSS);
        for _ in 0..20 {
            c.on_new_ack(4 * MSS);
        }
        c.on_timeout(8 * MSS);
        assert_eq!(c.cwnd(), MSS);
        assert_eq!(c.ssthresh(), 4 * MSS);
        assert_eq!(c.timeout_retransmits, 1);
    }

    #[test]
    fn idle_restart_returns_to_initial() {
        let mut c = Congestion::new(MSS);
        for _ in 0..10 {
            c.on_new_ack(4 * MSS);
        }
        assert!(c.cwnd() > 2 * MSS);
        c.on_idle_restart();
        assert_eq!(c.cwnd(), 2 * MSS);
    }

    #[test]
    fn idle_restart_predicate() {
        let rto = SimDuration::from_millis(200);
        assert!(!Congestion::idle_restart_due(SimDuration::from_millis(100), rto));
        assert!(!Congestion::idle_restart_due(SimDuration::from_millis(200), rto));
        assert!(Congestion::idle_restart_due(SimDuration::from_millis(201), rto));
    }

    #[test]
    fn dup_acks_below_three_do_nothing() {
        let mut c = Congestion::new(MSS);
        let before = c.cwnd();
        c.on_dup_ack(5 * MSS);
        c.on_dup_ack(5 * MSS);
        assert_eq!(c.cwnd(), before);
        assert_eq!(c.dup_acks(), 2);
        c.on_new_ack(5 * MSS);
        assert_eq!(c.dup_acks(), 0);
    }
}
