//! Retransmission-timeout estimation (RFC 6298) with Linux bounds.
//!
//! The paper's failover analysis (§6.2) hinges on this machinery: "In
//! Linux, the RTO is computed using the round trip time (RTT) and is
//! increased by a factor of two with every retransmission. The lower and
//! upper bound for the RTO in Linux are 200 ms and 2 min respectively."
//! The Table 2 failover times are largely *where the exponential backoff
//! schedule happens to land* relative to the failure-detection delay, so
//! this estimator reproduces those bounds exactly.

use netsim::SimDuration;

/// SRTT/RTTVAR smoothing and exponential backoff.
///
/// ```
/// use tcpstack::rto::RtoEstimator;
/// use netsim::SimDuration;
///
/// let mut rto = RtoEstimator::new();
/// rto.on_sample(SimDuration::from_millis(10)); // LAN round trip
/// assert_eq!(rto.rto(), SimDuration::from_millis(200)); // Linux floor
/// rto.backoff();
/// rto.backoff();
/// assert_eq!(rto.rto(), SimDuration::from_millis(800)); // x2 per loss
/// ```
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    base_rto: SimDuration,
    backoff_shift: u32,
    min: SimDuration,
    max: SimDuration,
}

impl RtoEstimator {
    /// Linux lower bound: 200 ms.
    pub const LINUX_MIN: SimDuration = SimDuration::from_millis(200);
    /// Linux upper bound: 2 minutes.
    pub const LINUX_MAX: SimDuration = SimDuration::from_secs(120);
    /// Initial RTO before any sample (RFC 6298: 1 s).
    pub const INITIAL: SimDuration = SimDuration::from_secs(1);

    /// Creates an estimator with the Linux bounds.
    pub fn new() -> Self {
        Self::with_bounds(Self::LINUX_MIN, Self::LINUX_MAX)
    }

    /// Creates an estimator with custom bounds (tests use tighter ones).
    pub fn with_bounds(min: SimDuration, max: SimDuration) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            base_rto: Self::INITIAL.max(min),
            backoff_shift: 0,
            min,
            max,
        }
    }

    /// Feeds one RTT sample (never from a retransmitted segment — Karn's
    /// algorithm — the TCB enforces that).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - RTT|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar * 3 / 4 + err / 4;
                // SRTT = 7/8 SRTT + 1/8 RTT
                self.srtt = Some(srtt * 7 / 8 + rtt / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        // RTO = SRTT + max(G, 4*RTTVAR); clock granularity G folded into min.
        self.base_rto = (srtt + self.rttvar * 4).max(self.min).min(self.max);
    }

    /// The current timeout: base RTO with the backoff applied, clamped.
    pub fn rto(&self) -> SimDuration {
        self.base_rto.saturating_mul(1u64 << self.backoff_shift.min(32)).max(self.min).min(self.max)
    }

    /// Doubles the timeout (a retransmission fired); returns the new
    /// consecutive-backoff count (what trace events report).
    pub fn backoff(&mut self) -> u32 {
        if self.backoff_shift < 32 {
            self.backoff_shift += 1;
        }
        self.backoff_shift
    }

    /// Clears the backoff after an ACK of new data.
    pub fn reset_backoff(&mut self) {
        self.backoff_shift = 0;
    }

    /// The smoothed RTT, if any sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Number of consecutive backoffs applied.
    pub fn backoff_count(&self) -> u32 {
        self.backoff_shift
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let e = RtoEstimator::new();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn lan_rtt_clamps_to_linux_floor() {
        // A 10 ms LAN RTT computes RTO ≈ 10 + 4*5 = 30 ms, below the
        // 200 ms Linux floor — the floor is what the client actually
        // waits during failover.
        let mut e = RtoEstimator::new();
        for _ in 0..10 {
            e.on_sample(SimDuration::from_millis(10));
        }
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn backoff_schedule_matches_linux() {
        // 200ms, 400, 800, 1.6s, 3.2, 6.4, 12.8, 25.6, 51.2, 102.4, 120 (cap)
        let mut e = RtoEstimator::new();
        e.on_sample(SimDuration::from_millis(10));
        let mut schedule = Vec::new();
        for _ in 0..11 {
            schedule.push(e.rto().as_millis());
            e.backoff();
        }
        assert_eq!(
            schedule,
            vec![200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400, 120000]
        );
    }

    #[test]
    fn reset_backoff_restores_base() {
        let mut e = RtoEstimator::new();
        e.on_sample(SimDuration::from_millis(10));
        for _ in 0..5 {
            e.backoff();
        }
        assert!(e.rto() > SimDuration::from_secs(1));
        e.reset_backoff();
        assert_eq!(e.rto(), SimDuration::from_millis(200));
        assert_eq!(e.backoff_count(), 0);
    }

    #[test]
    fn variance_raises_rto() {
        let mut e =
            RtoEstimator::with_bounds(SimDuration::from_millis(1), SimDuration::from_secs(120));
        e.on_sample(SimDuration::from_millis(100));
        let stable = e.rto();
        // A wildly different sample inflates RTTVAR.
        e.on_sample(SimDuration::from_millis(500));
        assert!(e.rto() > stable);
    }

    #[test]
    fn smoothing_converges() {
        let mut e =
            RtoEstimator::with_bounds(SimDuration::from_millis(1), SimDuration::from_secs(120));
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().unwrap().as_millis();
        assert!((48..=52).contains(&srtt), "srtt {srtt}ms should converge to 50ms");
        // With zero variance, RTO converges toward SRTT.
        assert!(e.rto().as_millis() <= 60);
    }

    #[test]
    fn backoff_saturates_at_cap() {
        let mut e = RtoEstimator::new();
        e.on_sample(SimDuration::from_millis(10));
        for _ in 0..100 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(120));
    }
}
