//! Configuration types for connections and stacks.

use crate::congestion::CongestionAlgo;
use netsim::SimDuration;
use std::fmt;
use std::net::Ipv4Addr;
use wire::MacAddr;

/// The four-tuple identifying a TCP connection, from the perspective of
/// one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Quad {
    /// Local IP address (for ST-TCP service connections: the virtual
    /// service IP, not the machine's own address).
    pub local_ip: Ipv4Addr,
    /// Local TCP port.
    pub local_port: u16,
    /// Remote IP address.
    pub remote_ip: Ipv4Addr,
    /// Remote TCP port.
    pub remote_port: u16,
}

impl Quad {
    /// Builds a quad.
    pub fn new(local_ip: Ipv4Addr, local_port: u16, remote_ip: Ipv4Addr, remote_port: u16) -> Self {
        Quad { local_ip, local_port, remote_ip, remote_port }
    }

    /// This connection as a canonical (endpoint-order-independent)
    /// trace identifier, so events recorded by the client, the primary,
    /// and the backup's shadow all attribute to the same connection.
    pub fn trace_conn(&self) -> obs::TraceConn {
        obs::TraceConn::new((self.local_ip, self.local_port), (self.remote_ip, self.remote_port))
    }

    /// The same connection seen from the other end.
    #[must_use]
    pub fn flipped(&self) -> Quad {
        Quad {
            local_ip: self.remote_ip,
            local_port: self.remote_port,
            remote_ip: self.local_ip,
            remote_port: self.local_port,
        }
    }
}

impl fmt::Display for Quad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} <-> {}:{}",
            self.local_ip, self.local_port, self.remote_ip, self.remote_port
        )
    }
}

/// Per-connection TCP tuning.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size advertised and used (default 1460, Ethernet).
    pub mss: u16,
    /// Send buffer capacity in bytes.
    pub send_buf: usize,
    /// Receive buffer capacity in bytes (the *first* buffer). The
    /// default is 12×MSS: an MSS-aligned, even segment count per window
    /// keeps the delayed-ACK clock clean (a non-aligned window leaves a
    /// runt segment unacknowledged for the delayed-ACK timeout each
    /// cycle, costing ~7% of window-limited throughput in a
    /// phase-dependent way).
    pub recv_buf: usize,
    /// ST-TCP second-buffer capacity; 0 = standard TCP. The paper doubles
    /// the receive allocation, i.e. sets this equal to `recv_buf`.
    pub retention_buf: usize,
    /// Delayed-ACK timeout; `SimDuration::ZERO` acks every segment.
    pub delayed_ack: SimDuration,
    /// Minimum retransmission timeout (Linux: 200 ms).
    pub rto_min: SimDuration,
    /// Maximum retransmission timeout (Linux: 2 min).
    pub rto_max: SimDuration,
    /// TIME_WAIT hold time.
    pub time_wait: SimDuration,
    /// Restart the congestion window after an idle period > RTO
    /// (RFC 2581 §4.1). On in Linux.
    pub idle_restart: bool,
    /// ST-TCP backup shadow semantics: resynchronize the ISN from the
    /// client's handshake ACK and tolerate ACKs ahead of `snd_nxt`
    /// (the primary's transmissions the shadow has not made yet).
    pub shadow: bool,
    /// RFC 1323 window scaling: the shift this endpoint requests in its
    /// SYN. `None` disables the option. In effect only when both sides
    /// offer it. Required for receive buffers beyond 65 535 bytes
    /// (modern-LAN experiments).
    pub window_scale: Option<u8>,
    /// Congestion-control algorithm for connections using this config.
    /// The default (Reno) reproduces the paper-era stack bit-for-bit.
    pub congestion: CongestionAlgo,
    /// RFC 2018 selective acknowledgment: generate SACK blocks on
    /// out-of-order receive and drive recovery from the sender
    /// scoreboard. Off by default (the paper-era stack is go-back-N;
    /// the determinism digests pin that wire behaviour).
    pub sack: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 32 * 1024,
            recv_buf: 12 * 1460,
            retention_buf: 0,
            delayed_ack: SimDuration::from_millis(40),
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(120),
            time_wait: SimDuration::from_secs(60),
            idle_restart: true,
            shadow: false,
            window_scale: None,
            congestion: CongestionAlgo::Reno,
            sack: false,
        }
    }
}

impl TcpConfig {
    /// The ST-TCP *primary* profile: retention buffer equal to the
    /// receive buffer ("double the space", paper §4.2).
    pub fn st_tcp_primary() -> Self {
        let mut c = Self::default();
        c.retention_buf = c.recv_buf;
        c
    }

    /// The ST-TCP *backup* profile: shadow semantics on.
    pub fn st_tcp_backup() -> Self {
        TcpConfig { shadow: true, ..Self::default() }
    }
}

/// Interface + stack configuration for one host.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Hardware address of the NIC.
    pub mac: MacAddr,
    /// The host's own IP address.
    pub ip: Ipv4Addr,
    /// Additional accepted IPs — the virtual service IP(s) of a VNIC.
    pub extra_ips: Vec<Ipv4Addr>,
    /// Prefix length of the local subnet (e.g. 24).
    pub netmask_bits: u8,
    /// Default gateway for off-subnet destinations.
    pub gateway: Option<Ipv4Addr>,
    /// Extra unicast/multicast MACs accepted by the NIC filter (the
    /// multicast `SME`/`GME` of the tapping architecture).
    pub accept_macs: Vec<MacAddr>,
    /// Accept every frame regardless of destination MAC (hub tapping).
    pub promiscuous: bool,
    /// Static ARP entries, consulted before the dynamic cache — the
    /// paper's `SVI -> SME` / `GVI -> GME` mappings.
    pub static_arp: Vec<(Ipv4Addr, MacAddr)>,
    /// Learn IP→MAC mappings from the source addresses of received IP
    /// frames (lets a tapping backup address the client immediately on
    /// takeover without ARPing).
    pub learn_from_ip: bool,
    /// Seed for initial-sequence-number generation; give the primary and
    /// backup different seeds so the ISN resynchronization of §4.1 is
    /// actually exercised.
    pub isn_seed: u64,
    /// IPs whose egress is suppressed (the backup lists the service VIP;
    /// takeover removes it).
    pub suppressed_ips: Vec<Ipv4Addr>,
    /// TCP defaults applied to new connections.
    pub tcp: TcpConfig,
}

impl StackConfig {
    /// A plain host: `ip` on a /24, no tapping, no suppression.
    pub fn host(mac: MacAddr, ip: Ipv4Addr) -> Self {
        StackConfig {
            mac,
            ip,
            extra_ips: Vec::new(),
            netmask_bits: 24,
            gateway: None,
            accept_macs: Vec::new(),
            promiscuous: false,
            static_arp: Vec::new(),
            learn_from_ip: false,
            isn_seed: 1,
            suppressed_ips: Vec::new(),
            tcp: TcpConfig::default(),
        }
    }

    /// True when `dst` is on this host's subnet.
    pub fn on_subnet(&self, dst: Ipv4Addr) -> bool {
        let bits = u32::from(self.netmask_bits.min(32));
        let mask = if bits == 0 { 0 } else { u32::MAX << (32 - bits) };
        (u32::from(self.ip) & mask) == (u32::from(dst) & mask)
    }

    /// All IPs this stack answers for.
    pub fn all_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        std::iter::once(self.ip).chain(self.extra_ips.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_flip_is_involution() {
        let q = Quad::new(Ipv4Addr::new(1, 2, 3, 4), 80, Ipv4Addr::new(5, 6, 7, 8), 4242);
        assert_eq!(q.flipped().flipped(), q);
        assert_eq!(q.flipped().local_port, 4242);
    }

    #[test]
    fn st_tcp_profiles() {
        let p = TcpConfig::st_tcp_primary();
        assert_eq!(p.retention_buf, p.recv_buf);
        assert!(!p.shadow);
        let b = TcpConfig::st_tcp_backup();
        assert!(b.shadow);
        assert_eq!(b.retention_buf, 0);
    }

    #[test]
    fn subnet_membership() {
        let cfg = StackConfig::host(MacAddr::local(1), Ipv4Addr::new(10, 0, 0, 5));
        assert!(cfg.on_subnet(Ipv4Addr::new(10, 0, 0, 200)));
        assert!(!cfg.on_subnet(Ipv4Addr::new(10, 0, 1, 200)));
    }

    #[test]
    fn all_ips_includes_vnics() {
        let mut cfg = StackConfig::host(MacAddr::local(1), Ipv4Addr::new(10, 0, 0, 5));
        cfg.extra_ips.push(Ipv4Addr::new(10, 0, 0, 100));
        let ips: Vec<_> = cfg.all_ips().collect();
        assert_eq!(ips, vec![Ipv4Addr::new(10, 0, 0, 5), Ipv4Addr::new(10, 0, 0, 100)]);
    }

    #[test]
    fn quad_display() {
        let q = Quad::new(Ipv4Addr::new(1, 1, 1, 1), 80, Ipv4Addr::new(2, 2, 2, 2), 99);
        assert_eq!(q.to_string(), "1.1.1.1:80 <-> 2.2.2.2:99");
    }
}
